"""Compatibility shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables legacy
editable installs (``pip install -e . --no-use-pep517``) on offline machines
that cannot build PEP 517 wheels.
"""

from setuptools import setup

setup()
