#!/usr/bin/env python3
"""Inter-cell communication over the ivshmem shared-memory channel.

Partitioning does not mean the cells cannot cooperate: Jailhouse provides the
``ivshmem`` device (shared memory window plus doorbell interrupt) for
controlled communication. This example sends messages from the root cell to
the FreeRTOS cell and back, and shows that the traffic flows through the
channel while memory isolation between the cells stays intact.

Run with::

    python examples/intercell_communication.py
"""

from __future__ import annotations

from repro.core.sut import JailhouseSUT, SutConfig
from repro.errors import IsolationViolationError


def main() -> None:
    sut = JailhouseSUT(SutConfig(seed=7))
    sut.setup()
    sut.perform_cell_lifecycle()

    channel = sut.hypervisor.ivshmem_channels[0]
    root_name = sut.config.root_cell_name
    inmate_name = sut.config.inmate_cell_name
    print(f"ivshmem channel: {channel.name} (doorbell IRQ {channel.doorbell_irq})")
    print()

    # Root -> FreeRTOS: the doorbell wakes the cell, which drains the message
    # into its local 'rx' queue.
    print("sending 5 commands from the root cell ...")
    for index in range(5):
        channel.send(root_name, f"set-speed {40 + index}".encode())
    sut.run(1.0)
    rx = sut.freertos.queues["rx"]
    print(f"  FreeRTOS 'rx' queue received: {rx.received} messages")

    # FreeRTOS -> root: the sender task pushes telemetry continuously.
    print("running the workload; the FreeRTOS sender task emits telemetry ...")
    sut.run(3.0)
    pending = channel.pending(root_name)
    print(f"  messages waiting for the root cell: {pending}")
    sample = channel.receive(root_name)
    if sample is not None:
        print(f"  first telemetry message: {sample.payload!r} "
              f"(sequence {sample.sequence})")

    # Isolation is still enforced: the FreeRTOS cell cannot touch root memory
    # outside the shared window.
    print()
    print("checking that isolation still holds outside the shared window ...")
    freertos_cell = sut.hypervisor.cell_by_name(inmate_name)
    try:
        freertos_cell.memory_map.translate(0x4000_0000)   # root cell RAM
    except IsolationViolationError as error:
        print(f"  stage-2 fault, as expected: {error}")
    shared = freertos_cell.memory_map.find_by_name("ivshmem")
    print(f"  shared window is reachable: guest 0x{shared.virt_start:08x} -> "
          f"host 0x{shared.translate(shared.virt_start):08x}")

    print()
    print(f"channel statistics: dropped={channel.dropped}, "
          f"pending-to-root={channel.pending(root_name)}, "
          f"pending-to-inmate={channel.pending(inmate_name)}")


if __name__ == "__main__":
    main()
