#!/usr/bin/env python3
"""Quickstart: boot the paper's testbed and watch it run fault-free.

Boots the simulated Banana Pi, enables the Jailhouse-like hypervisor, creates
and starts the FreeRTOS non-root cell through the ``jailhouse`` CLI (exactly
the procedure the paper's testbed uses), runs the mixed-criticality workload
for a few seconds, and prints the serial console plus a board/cell summary.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.sut import JailhouseSUT, SutConfig


def main() -> None:
    sut = JailhouseSUT(SutConfig(seed=2022))

    print("=== booting the board and enabling the hypervisor ===")
    sut.setup()
    print(sut.board.describe())
    print()

    print("=== creating, loading and starting the FreeRTOS cell ===")
    management = sut.perform_cell_lifecycle()
    print(f"cell create succeeded: {management.create_succeeded}")
    print(f"cell start  succeeded: {management.start_succeeded}")
    print()
    print(sut.hypervisor.cell_list())
    print()

    print("=== running the workload for 10 simulated seconds ===")
    sut.run(10.0)

    print()
    print("=== serial console (last 25 lines) ===")
    for record in sut.board.uart.records[-25:]:
        print(f"[{record.timestamp:7.3f}] {record.source:>15}: {record.text}")

    print()
    print("=== summary ===")
    evidence = sut.evidence(0.0, sut.now)
    for cell_name, report in evidence.availability.items():
        print(f"  {report.describe()}")
    freertos = sut.freertos
    print(f"  FreeRTOS tasks: {len(freertos.tasks)}, "
          f"context switches: {freertos.context_switches}, "
          f"LED blinks: {sut.board.led.blink_count}")
    print(f"  hypervisor entries: "
          f"{ {name: stats.calls for name, stats in sut.hypervisor.handlers.stats.items()} }")
    print(f"  outcome of this golden run: no faults injected, "
          f"panicked={evidence.observation.panicked}")


if __name__ == "__main__":
    main()
