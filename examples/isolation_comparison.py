#!/usr/bin/env python3
"""Compare isolation across hypervisor designs under identical fault load.

The paper motivates static partitioning hypervisors (Jailhouse, Bao, PikeOS,
VOSYSmonitor) as the way to consolidate mixed-criticality functions safely.
This example runs the same medium-intensity campaign against three systems:

* the Jailhouse model assessed by the paper,
* a Bao-like baseline whose containment policy never lets a guest fault
  propagate beyond its cell, and
* a no-partitioning baseline where any unhandled fault takes everything down,

and prints per-system outcome distributions plus the isolation metrics the
SEooC assessment uses.

Run with::

    python examples/isolation_comparison.py [num_tests_per_system]
"""

from __future__ import annotations

import sys

from repro.core.analysis import outcome_distribution
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig, PartRef
from repro.core.report import format_comparison
from repro.safety.metrics import compare_metrics, compute_isolation_metrics

#: The SUT variants, by registry name (see ``repro-fi list``); a
#: ``Campaign`` accepts the key directly and resolves it for us.
SYSTEMS = ("jailhouse", "bao-like", "no-isolation")


def main(num_tests: int = 15) -> None:
    distributions = {}
    metrics = {}
    for name in SYSTEMS:
        # One declarative config per system: identical injection load, only
        # the SUT differs, so outcome deltas are attributable to containment.
        config = CampaignConfig(
            name=f"comparison-{name}",
            targets=[PartRef("nonroot-trap")],
            scenarios=["steady-state"],
            intensity="medium",
            tests=num_tests,
            duration=30.0,
            base_seed=4000,
            sut=PartRef(name),
        )
        plan = config.compile()
        print(f"running {len(plan)} tests against {name!r} ...")
        result = Campaign(plan, sut_factory=config.sut_factory()).run()
        records = result.to_records()
        distributions[name] = outcome_distribution(records)
        metrics[name] = compute_isolation_metrics(records)

    print()
    print(format_comparison(distributions,
                            title="Outcome distribution per system"))
    print()
    print("Isolation metrics (used by the SEooC assessment)")
    print(compare_metrics(metrics))
    print()
    print("Reading: the Bao-like containment policy converts the whole-system")
    print("panic parks observed on Jailhouse into contained cell failures,")
    print("while removing partitioning altogether makes every unhandled fault")
    print("a common-cause failure.")


if __name__ == "__main__":
    tests = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    main(tests)
