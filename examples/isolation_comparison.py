#!/usr/bin/env python3
"""Compare isolation across hypervisor designs under identical fault load.

The paper motivates static partitioning hypervisors (Jailhouse, Bao, PikeOS,
VOSYSmonitor) as the way to consolidate mixed-criticality functions safely.
This example runs the same medium-intensity campaign against three systems:

* the Jailhouse model assessed by the paper,
* a Bao-like baseline whose containment policy never lets a guest fault
  propagate beyond its cell, and
* a no-partitioning baseline where any unhandled fault takes everything down,

and prints per-system outcome distributions plus the isolation metrics the
SEooC assessment uses.

Run with::

    python examples/isolation_comparison.py [num_tests_per_system]
"""

from __future__ import annotations

import sys

from repro.baselines import bao_sut_factory, no_isolation_sut_factory
from repro.core.analysis import outcome_distribution
from repro.core.campaign import Campaign
from repro.core.experiment import default_sut_factory
from repro.core.plan import IntensityLevel, build_intensity_plan
from repro.core.report import format_comparison
from repro.core.targets import InjectionTarget
from repro.safety.metrics import compare_metrics, compute_isolation_metrics


SYSTEMS = {
    "jailhouse": default_sut_factory,
    "bao-like": bao_sut_factory,
    "no-isolation": no_isolation_sut_factory,
}


def main(num_tests: int = 15) -> None:
    distributions = {}
    metrics = {}
    for name, factory in SYSTEMS.items():
        plan = build_intensity_plan(
            IntensityLevel.MEDIUM,
            InjectionTarget.nonroot_cpu_trap(),
            num_tests=num_tests,
            duration=30.0,
            base_seed=4000,
            name=f"comparison-{name}",
        )
        print(f"running {len(plan)} tests against {name!r} ...")
        result = Campaign(plan, sut_factory=factory).run()
        records = result.to_records()
        distributions[name] = outcome_distribution(records)
        metrics[name] = compute_isolation_metrics(records)

    print()
    print(format_comparison(distributions,
                            title="Outcome distribution per system"))
    print()
    print("Isolation metrics (used by the SEooC assessment)")
    print(compare_metrics(metrics))
    print()
    print("Reading: the Bao-like containment policy converts the whole-system")
    print("panic parks observed on Jailhouse into contained cell failures,")
    print("while removing partitioning altogether makes every unhandled fault")
    print("a common-cause failure.")


if __name__ == "__main__":
    tests = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    main(tests)
