#!/usr/bin/env python3
"""Produce ISO 26262 SEooC certification evidence from fault-injection campaigns.

This is the paper's end goal: use fault injection to assess whether the
hypervisor's isolation assumptions hold well enough to treat it as a Safety
Element out of Context. The example runs three small campaigns (the Figure-3
steady-state campaign plus the two high-intensity management campaigns),
computes isolation metrics and a failure-mode table, evaluates the assumptions
of use, and prints the combined evidence report.

Run with::

    python examples/seooc_assessment.py
"""

from __future__ import annotations

from repro.core.campaign import Campaign
from repro.core.plan import (
    paper_figure3_plan,
    paper_high_intensity_nonroot_plan,
    paper_high_intensity_root_plan,
)
from repro.core.report import format_distribution
from repro.core.analysis import outcome_distribution
from repro.safety.evidence import build_evidence_report
from repro.safety.seooc import SeoocAssessment


def run_campaigns():
    campaigns = {
        "fig3-medium-nonroot-trap": paper_figure3_plan(num_tests=25, duration=30.0),
        "high-intensity-root": paper_high_intensity_root_plan(num_tests=10,
                                                              duration=15.0),
        "high-intensity-nonroot": paper_high_intensity_nonroot_plan(num_tests=10,
                                                                    duration=10.0),
    }
    records_by_campaign = {}
    for name, plan in campaigns.items():
        print(f"running campaign {name!r} ({len(plan)} tests) ...")
        result = Campaign(plan).run()
        records = result.to_records()
        records_by_campaign[name] = records
        print(format_distribution(outcome_distribution(records), title=name))
        print()
    return records_by_campaign


def main() -> None:
    records_by_campaign = run_campaigns()
    assessment = SeoocAssessment()
    report = build_evidence_report(
        records_by_campaign,
        assessment=assessment,
        remarks=[
            "campaign sizes reduced for the example; see benchmarks/ for "
            "paper-scale campaigns",
            "the inconsistent-state and panic-park findings below are exactly "
            "the criticalities the paper highlights as blocking certification",
        ],
    )
    print(report.render())


if __name__ == "__main__":
    main()
