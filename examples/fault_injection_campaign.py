#!/usr/bin/env python3
"""Run the paper's medium-intensity fault-injection campaign (Figure 3).

Reproduces the experiment behind Figure 3: single-register bit flips injected
once every 100 calls into ``arch_handle_trap()``, filtered to the non-root
cell's CPU, one-minute tests, outcomes classified from the serial log and the
hypervisor's events.

Run with::

    python examples/fault_injection_campaign.py [num_tests]

The default (40 tests) takes well under a minute; the paper-scale campaign in
``benchmarks/bench_fig3_medium_nonroot_trap.py`` uses more tests.
"""

from __future__ import annotations

import sys

from repro.core.campaign import Campaign
from repro.core.plan import paper_figure3_plan
from repro.core.report import format_campaign_summary, format_figure3

#: Shares reported by the paper's Figure 3 (approximate, read off the chart).
PAPER_FIGURE3 = {"correct": 0.63, "panic_park": 0.30, "cpu_park": 0.07}


def main(num_tests: int = 40) -> None:
    plan = paper_figure3_plan(num_tests=num_tests, duration=60.0, base_seed=0)
    print(plan.describe())
    print()

    campaign = Campaign(plan)
    print("profiling a golden (fault-free) run first, as the paper does ...")
    golden = campaign.golden_run(duration=10.0)
    print(f"  golden outcome: {golden.outcome.value}")
    print(f"  handler calls over {golden.duration:.0f}s: {golden.handler_calls}")
    print()

    def progress(done: int, total: int, result) -> None:
        print(f"  [{done:>3}/{total}] {result.spec_name}: "
              f"{result.outcome.value:<18} ({result.injections} injections)")

    print(f"running {num_tests} fault-injection tests ...")
    result = campaign.run(progress=progress)

    print()
    print(format_campaign_summary(result))
    print()
    print(format_figure3(result.to_records(), paper_reference=PAPER_FIGURE3))


if __name__ == "__main__":
    tests = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    main(tests)
