"""E4 — the CPU-park outcome is contained and recoverable.

Paper finding: when a critical injection triggers error code 0x24 (unhandled
trap), ``cpu_park()`` is called and the non-root cell stops working; however,
destroying the cell returns CPU core 1 and the cell's peripherals to the root
cell without any issue — "the fault has been successfully isolated and the
non-root cell has not damaged the other cells".

The bench provokes CPU parks with stack-pointer-targeted injections, then
performs ``jailhouse cell destroy`` and verifies the recovery on every run.
"""

from __future__ import annotations

from _common import save_and_print, scaled

from repro.core.experiment import Experiment, park_provoking_spec
from repro.core.outcomes import Outcome


def _run():
    results = []
    for index in range(scaled(12, minimum=5)):
        spec = park_provoking_spec(seed=5000 + index, duration=40.0)
        results.append(Experiment(spec).run())
    return results


def test_cpu_park_isolation_and_recovery(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    parked = [entry for entry in results if entry.extras.get("park_observed")]
    recovered = [entry for entry in parked
                 if entry.extras.get("destroy_returned_resources")]
    root_alive = [entry for entry in parked
                  if entry.extras.get("root_cell_alive_after_destroy")]

    lines = [
        "E4: CPU park (error 0x24) containment and recovery",
        "---------------------------------------------------",
        f"runs                                   : {len(results)}",
        f"runs reaching a CPU park               : {len(parked)}",
        f"  destroy returned CPU 1 + peripherals : {len(recovered)}",
        f"  root cell still alive after destroy  : {len(root_alive)}",
        "",
        "per-run detail:",
    ]
    for entry in results:
        lines.append(
            f"  seed {entry.seed:>5}: outcome={entry.outcome.value:<12} "
            f"park={entry.extras.get('park_observed')} "
            f"recovered={entry.extras.get('destroy_returned_resources')} "
            f"isolation={entry.extras.get('isolation_preserved')}"
        )
    save_and_print("e4_cpu_park_isolation", "\n".join(lines))

    # Shape checks: the park occurs, and whenever it occurs the recovery path
    # works and the root cell is untouched — the paper's isolation claim.
    assert len(parked) >= max(3, len(results) // 2)
    assert len(recovered) == len(parked)
    assert len(root_alive) == len(parked)
    assert all(entry.outcome is Outcome.CPU_PARK for entry in parked)
