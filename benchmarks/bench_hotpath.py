"""Hot-path performance benchmark suite.

Measures the three layers the hot-path overhaul targets and writes the
results as ``BENCH_hotpath.json`` in a stable schema so future PRs can track
the trajectory:

* **memory** — raw :class:`~repro.hw.memory.PhysicalMemory` dispatch
  throughput (aligned 1/2/4-byte fast paths, MMIO, page-straddling generic
  path), in accesses per second;
* **experiment** — single steady-state experiment latency (the unit the
  paper runs thousands of);
* **campaign** — wall-clock of a small ``jobs=1`` campaign, cold-boot vs.
  snapshot-pooled.

A ``calibration_s`` measurement (a fixed pure-Python spin loop) is recorded
alongside, so regression checks can normalise out machine-speed differences:
``--check-against BASELINE.json`` fails (exit 1) when the calibrated
single-experiment latency regressed more than ``--max-regression`` (default
2.0x) against the checked-in baseline.

Usage::

    python benchmarks/bench_hotpath.py                # full size
    python benchmarks/bench_hotpath.py --smoke        # CI-sized
    python benchmarks/bench_hotpath.py --smoke \
        --check-against benchmarks/baselines/hotpath_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.core.campaign import Campaign                     # noqa: E402
from repro.core.experiment import Experiment                 # noqa: E402
from repro.core.plan import paper_figure3_plan               # noqa: E402
from repro.hw.memory import (                                # noqa: E402
    MemoryFlags,
    MemoryRegion,
    MmioHandler,
    PhysicalMemory,
)

from _common import machine_info                             # noqa: E402

SCHEMA = "bench_hotpath/v1"

#: Pre-PR reference numbers (seed commit, same benchmark bodies, dev box):
#: kept in the output for context so every run shows the trajectory.
PRE_PR_REFERENCE = {
    "memory_read4_per_s": 287_476,
    "memory_write4_per_s": 260_605,
    "memory_fetch4_per_s": 282_555,
    "memory_mmio_read1_per_s": 481_262,
    "memory_straddle8_per_s": 277_931,
    "single_experiment_10s_s": 0.0719,
    "campaign_8x5s_jobs1_s": 0.3177,
}


class _NullMmio(MmioHandler):
    def mmio_read(self, offset: int, size: int) -> int:
        return 0x5A

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        pass


def calibrate() -> float:
    """Fixed pure-Python spin loop used to normalise machine speed."""
    start = time.perf_counter()
    total = 0
    for index in range(2_000_000):
        total += index & 0xFF
    assert total > 0
    return time.perf_counter() - start


def bench_memory(accesses: int) -> dict:
    memory = PhysicalMemory([
        MemoryRegion("sram", 0x0, 0x10000, MemoryFlags.RWX),
        MemoryRegion("uart0", 0x01C2_8000, 0x400,
                     MemoryFlags.RW | MemoryFlags.IO),
        MemoryRegion("dram", 0x4000_0000, 1 << 30, MemoryFlags.RWX),
    ])
    memory.attach_mmio("uart0", _NullMmio())
    base = 0x4000_0000
    results = {}

    start = time.perf_counter()
    for index in range(accesses):
        memory.write(base + ((index * 4) & 0xFFFF), index & 0xFFFF_FFFF, 4)
    results["write4_per_s"] = accesses / (time.perf_counter() - start)

    start = time.perf_counter()
    for index in range(accesses):
        memory.read(base + ((index * 4) & 0xFFFF), 4)
    results["read4_per_s"] = accesses / (time.perf_counter() - start)

    start = time.perf_counter()
    for index in range(accesses):
        memory.fetch(base + ((index * 4) & 0xFFFF), 4)
    results["fetch4_per_s"] = accesses / (time.perf_counter() - start)

    start = time.perf_counter()
    for index in range(accesses):
        memory.read(0x01C2_8000 + (index & 0xFF), 1)
    results["mmio_read1_per_s"] = accesses / (time.perf_counter() - start)

    straddles = max(accesses // 4, 1)
    start = time.perf_counter()
    for index in range(straddles):
        memory.read_bytes(base + 4093 + ((index * 8) & 0xFFF), 8)
    results["straddle8_per_s"] = straddles / (time.perf_counter() - start)
    return results


def bench_experiment(duration: float, repeats: int) -> dict:
    plan = paper_figure3_plan(num_tests=1, duration=duration)
    Experiment(paper_figure3_plan(num_tests=1, duration=1.0).specs[0]).run()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        Experiment(plan.specs[0]).run()
        best = min(best, time.perf_counter() - start)
    return {
        "sim_duration_s": duration,
        "wall_s": best,
        "wall_per_sim_second_s": best / (duration + 1.0),  # +settle time
    }


def bench_campaign(tests: int, duration: float, repeats: int) -> dict:
    plan = paper_figure3_plan(num_tests=tests, duration=duration)
    cold = pooled = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        cold_result = Campaign(plan).run()
        cold = min(cold, time.perf_counter() - start)
    for _ in range(repeats):
        start = time.perf_counter()
        pooled_result = Campaign(plan).run(pooling=True)
        pooled = min(pooled, time.perf_counter() - start)
    outcomes_cold = [r.outcome.value for r in cold_result.results]
    outcomes_pooled = [r.outcome.value for r in pooled_result.results]
    if outcomes_cold != outcomes_pooled:
        raise AssertionError(
            "pooled campaign diverged from cold-boot campaign: "
            f"{outcomes_cold} vs {outcomes_pooled}"
        )
    return {
        "tests": tests,
        "sim_duration_s": duration,
        "jobs": 1,
        "cold_wall_s": cold,
        "pooled_wall_s": pooled,
    }


def run_suite(smoke: bool) -> dict:
    accesses = 50_000 if smoke else 200_000
    experiment_duration = 5.0 if smoke else 10.0
    campaign_tests = 4 if smoke else 8
    campaign_duration = 2.0 if smoke else 5.0
    repeats = 2 if smoke else 3

    calibration = calibrate()
    memory = bench_memory(accesses)
    experiment = bench_experiment(experiment_duration, repeats)
    campaign = bench_campaign(campaign_tests, campaign_duration, repeats)

    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "scale": "smoke" if smoke else "full",
        "machine": machine_info(),
        "calibration_s": calibration,
        "metrics": {
            "memory": memory,
            "experiment": experiment,
            "campaign": campaign,
        },
        "pre_pr_reference": PRE_PR_REFERENCE,
    }


def check_regression(report: dict, baseline_path: Path,
                     max_regression: float) -> int:
    """Compare calibrated single-experiment latency against a baseline.

    Uses per-simulated-second latency normalised by the spin-loop
    calibration, so the check is independent of both machine speed and the
    run scale (``--smoke`` vs full).
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baseline.get("schema") != SCHEMA:
        print(f"baseline {baseline_path} has unexpected schema "
              f"{baseline.get('schema')!r}", file=sys.stderr)
        return 1
    current = (report["metrics"]["experiment"]["wall_per_sim_second_s"]
               / report["calibration_s"])
    reference = (baseline["metrics"]["experiment"]["wall_per_sim_second_s"]
                 / baseline["calibration_s"])
    ratio = current / reference
    print(f"calibrated single-experiment latency: {ratio:.2f}x baseline "
          f"(limit {max_regression:.2f}x)")
    if ratio > max_regression:
        print("REGRESSION: single-experiment latency exceeded the limit",
              file=sys.stderr)
        return 1
    return 0


def render(report: dict) -> str:
    memory = report["metrics"]["memory"]
    experiment = report["metrics"]["experiment"]
    campaign = report["metrics"]["campaign"]
    reference = report["pre_pr_reference"]
    lines = [
        f"hot-path benchmark ({report['scale']}, "
        f"calibration {report['calibration_s']*1000:.1f} ms)",
        "",
        "memory dispatch          current        pre-PR     speedup",
    ]
    pairs = [
        ("read4", memory["read4_per_s"], reference["memory_read4_per_s"]),
        ("write4", memory["write4_per_s"], reference["memory_write4_per_s"]),
        ("fetch4", memory["fetch4_per_s"], reference["memory_fetch4_per_s"]),
        ("mmio_read1", memory["mmio_read1_per_s"],
         reference["memory_mmio_read1_per_s"]),
        ("straddle8", memory["straddle8_per_s"],
         reference["memory_straddle8_per_s"]),
    ]
    for name, current, previous in pairs:
        lines.append(
            f"  {name:<20} {current:>12,.0f}/s {previous:>9,.0f}/s "
            f"{current / previous:>8.2f}x"
        )
    lines += [
        "",
        f"single experiment ({experiment['sim_duration_s']:.0f}s sim): "
        f"{experiment['wall_s']*1000:.1f} ms "
        f"({experiment['wall_per_sim_second_s']*1000:.2f} ms/sim-s)",
        f"campaign {campaign['tests']}x{campaign['sim_duration_s']:.0f}s "
        f"jobs=1: cold {campaign['cold_wall_s']*1000:.0f} ms, "
        f"pooled {campaign['pooled_wall_s']*1000:.0f} ms",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (seconds instead of minutes)")
    parser.add_argument("--output", default=None,
                        help="where to write BENCH_hotpath.json "
                             "(default: repo root, so the perf trajectory "
                             "is committed with the code)")
    parser.add_argument("--check-against", metavar="BASELINE",
                        help="baseline BENCH_hotpath.json to compare "
                             "calibrated latency against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when calibrated single-experiment latency "
                             "exceeds this multiple of the baseline")
    args = parser.parse_args(argv)

    report = run_suite(smoke=args.smoke)
    print(render(report))

    output = Path(args.output) if args.output else (
        Path(__file__).parent.parent / "BENCH_hotpath.json"
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {output}")

    if args.check_against:
        return check_regression(report, Path(args.check_against),
                                args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
