"""Prefix fast-forward benchmark: shared pre-injection snapshots.

The paper's campaigns execute an identical golden bring-up (board + Jailhouse
+ guest boot, workload warm-up) before diverging only at the injection. The
prefix fast-forward subsystem executes each distinct pre-injection prefix
once and forks every fault variant of that prefix family from its snapshot.
This benchmark measures the end-to-end effect on a fig3-style campaign
(steady-state injections into the non-root trap handler at the paper's
medium rate) whose grid runs several fault-model variants per seed — the
shape where the optimization multiplies: ``family_size x (prefix + suffix) /
(prefix + family_size x suffix)``.

Reported metrics (written as ``BENCH_prefix_fastforward.json`` at the repo
root so the perf trajectory is versioned alongside the code):

* **campaign** — wall-clock of the campaign with the cache off vs. on
  (``jobs=1``, so the speedup is pure fast-forwarding, not parallelism),
  plus the cache hit/miss counts and the parity verdict (records must be
  bit-identical either way — the run aborts if they are not);
* **snapshot** — microbenchmark of :class:`~repro.hw.memory.PhysicalMemory`
  delta snapshots: pages copied vs. reused across a snapshot/restore cycle
  of a booted deployment.

A ``calibration_s`` spin-loop is recorded alongside so the CI gate can
normalise machine speed: ``--check-against BASELINE.json`` fails when the
calibrated cached-campaign wall time regressed more than ``--max-regression``
(default 2.0x), and ``--min-speedup`` (default 3.0) fails the run when the
cache-on/cache-off ratio drops below it.

Usage::

    python benchmarks/bench_prefix_fastforward.py            # full size
    python benchmarks/bench_prefix_fastforward.py --smoke    # CI-sized
    python benchmarks/bench_prefix_fastforward.py --smoke \
        --check-against benchmarks/baselines/prefix_fastforward_baseline.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.core.config import CampaignConfig, PartRef           # noqa: E402
from repro.core.sut import JailhouseSUT, SutConfig              # noqa: E402
from repro.engine import CampaignEngine                         # noqa: E402

from _common import machine_info                                # noqa: E402

SCHEMA = "bench_prefix_fastforward/v1"


def calibrate() -> float:
    """Fixed pure-Python spin loop used to normalise machine speed."""
    start = time.perf_counter()
    total = 0
    for index in range(2_000_000):
        total += index & 0xFF
    assert total > 0
    return time.perf_counter() - start


def fig3_style_config(*, seeds: int, settle: float,
                      duration: float) -> CampaignConfig:
    """A fig3-style grid with eight fault variants per golden bring-up.

    Steady-state injections into the non-root cell's trap handler at the
    paper's medium rate (one per 100 calls), like the Figure-3 campaign; the
    fault-model axis fans each seed's bring-up out into a family of eight
    variants, which is how real rate/register-class ablations share their
    prefixes.
    """
    return CampaignConfig(
        name="prefix-ff-fig3-grid",
        description="fig3-style steady-state grid, 8 fault variants per seed",
        targets=[PartRef("nonroot-trap")],
        triggers=[PartRef("every-n-calls", {"n": 100}, tag="medium-rate")],
        fault_models=[
            PartRef("single-bit-flip", tag="sbf"),
            PartRef("multi-register-bit-flip", {"count": 2}, tag="mr2"),
            PartRef("multi-register-bit-flip", {"count": 3}, tag="mr3"),
            PartRef("multi-register-bit-flip", {"count": 4}, tag="mr4"),
            PartRef("register-class-bit-flip", {"target_class": "pc"}, tag="pc"),
            PartRef("register-class-bit-flip", {"target_class": "sp"}, tag="sp"),
            PartRef("register-class-bit-flip", {"target_class": "lr"}, tag="lr"),
            PartRef("register-class-bit-flip", {"target_class": "gpr"}, tag="gpr"),
        ],
        scenarios=["steady-state"],
        intensity="medium",
        tests=seeds,
        settle_time=settle,
        duration=duration,
    )


def records_of(result):
    return [dataclasses.asdict(record) for record in result.to_records()]


def bench_campaign(*, seeds: int, settle: float, duration: float,
                   repeats: int) -> dict:
    plan = fig3_style_config(seeds=seeds, settle=settle,
                             duration=duration).compile()
    cold = cached = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        cold_result = CampaignEngine(plan, jobs=1).run()
        cold = min(cold, time.perf_counter() - start)
    for _ in range(repeats):
        start = time.perf_counter()
        cached_result = CampaignEngine(plan, jobs=1, prefix_cache=True).run()
        cached = min(cached, time.perf_counter() - start)
    if records_of(cold_result) != records_of(cached_result):
        raise AssertionError(
            "prefix-cached campaign diverged from cold execution: the "
            "fast-forward path must be record-for-record identical"
        )
    stats = cached_result.prefix_cache_stats()
    return {
        "experiments": len(plan),
        "families": seeds,
        "family_size": len(plan) // seeds,
        "settle_s": settle,
        "sim_duration_s": duration,
        "jobs": 1,
        "cold_wall_s": cold,
        "cached_wall_s": cached,
        "speedup": cold / cached,
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "records_identical": True,
    }


def bench_snapshot(*, cycles: int) -> dict:
    """Dirty-page delta effectiveness on a booted deployment's memory.

    The guests populate a working set in DRAM (the guest models themselves
    exercise memory through the hypervisor, but sparsely — this stands in
    for a loaded cell image), then each cycle dirties a handful of pages and
    snapshots/restores the whole SUT: with delta tracking the per-cycle cost
    is O(pages touched), and ``delta_share`` shows how many page captures
    the shadow served without copying.
    """
    sut = JailhouseSUT(SutConfig(seed=7))
    sut.setup()
    sut.perform_cell_lifecycle()
    sut.run(2.0)
    memory = sut.board.memory
    dram = sut.board.dram
    working_set_pages = 512
    for page in range(working_set_pages):      # a 2 MiB resident image
        memory.write(dram.start + page * 4096, page, 4)
    resident = memory.resident_pages()

    base = sut.snapshot()                      # populate the shadow
    memory.snapshot_pages_copied = 0
    memory.snapshot_pages_reused = 0
    start = time.perf_counter()
    for cycle in range(cycles):
        sut.run(0.1)                           # advance the deployment
        for page in range(4):                  # dirty 4 of the 512 pages
            memory.write(dram.start + ((cycle + page) % working_set_pages)
                         * 4096, cycle, 4)
        sut.snapshot()
        sut.restore(base)
    elapsed = time.perf_counter() - start
    copied = memory.snapshot_pages_copied
    reused = memory.snapshot_pages_reused
    sut.teardown()
    return {
        "resident_pages": resident,
        "cycles": cycles,
        "snapshot_restore_per_s": cycles / elapsed if elapsed > 0 else 0.0,
        "pages_copied": copied,
        "pages_reused": reused,
        "delta_share": reused / (copied + reused) if copied + reused else 0.0,
    }


def run_suite(smoke: bool) -> dict:
    seeds = 2 if smoke else 4
    settle = 4.0 if smoke else 8.0
    duration = 0.5 if smoke else 1.0
    # min-of-3 even at smoke scale: the speedup gate compares two absolute
    # wall times, so a single noisy round on a busy CI runner must not be
    # able to fail it.
    repeats = 3
    cycles = 50 if smoke else 200

    calibration = calibrate()
    campaign = bench_campaign(seeds=seeds, settle=settle, duration=duration,
                              repeats=repeats)
    snapshot = bench_snapshot(cycles=cycles)

    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "scale": "smoke" if smoke else "full",
        "machine": machine_info(),
        "calibration_s": calibration,
        "metrics": {
            "campaign": campaign,
            "snapshot": snapshot,
        },
    }


def check_regression(report: dict, baseline_path: Path,
                     max_regression: float) -> int:
    """Compare the calibrated cached-campaign wall time against a baseline.

    Wall time is normalised per experiment and by the spin-loop calibration,
    so the check is independent of machine speed and run scale.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baseline.get("schema") != SCHEMA:
        print(f"baseline {baseline_path} has unexpected schema "
              f"{baseline.get('schema')!r}", file=sys.stderr)
        return 1

    def calibrated(payload: dict) -> float:
        campaign = payload["metrics"]["campaign"]
        per_experiment = campaign["cached_wall_s"] / campaign["experiments"]
        # Normalise by simulated seconds actually executed per experiment on
        # the cached path (suffix only, amortised prefix), so smoke and full
        # scales compare: suffix + prefix/family_size.
        sim_s = (campaign["sim_duration_s"]
                 + campaign["settle_s"] / campaign["family_size"])
        return per_experiment / sim_s / payload["calibration_s"]

    ratio = calibrated(report) / calibrated(baseline)
    print(f"calibrated cached-campaign latency: {ratio:.2f}x baseline "
          f"(limit {max_regression:.2f}x)")
    if ratio > max_regression:
        print("REGRESSION: cached-campaign latency exceeded the limit",
              file=sys.stderr)
        return 1
    return 0


def render(report: dict) -> str:
    campaign = report["metrics"]["campaign"]
    snapshot = report["metrics"]["snapshot"]
    return "\n".join([
        f"prefix fast-forward benchmark ({report['scale']}, "
        f"calibration {report['calibration_s']*1000:.1f} ms)",
        "",
        f"campaign: {campaign['experiments']} experiments in "
        f"{campaign['families']} prefix families of "
        f"{campaign['family_size']} "
        f"(settle {campaign['settle_s']:.0f}s + inject "
        f"{campaign['sim_duration_s']:.1f}s, jobs=1)",
        f"  cold   : {campaign['cold_wall_s']*1000:8.0f} ms",
        f"  cached : {campaign['cached_wall_s']*1000:8.0f} ms  "
        f"({campaign['cache_hits']} hits / {campaign['cache_misses']} misses)",
        f"  speedup: {campaign['speedup']:8.2f}x  (records identical: "
        f"{campaign['records_identical']})",
        "",
        f"delta snapshots: {snapshot['resident_pages']} resident pages, "
        f"{snapshot['snapshot_restore_per_s']:.0f} snapshot+restore cycles/s, "
        f"{snapshot['delta_share']:.1%} of page captures served by reuse",
    ])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (seconds instead of minutes)")
    parser.add_argument("--output", default=None,
                        help="where to write BENCH_prefix_fastforward.json "
                             "(default: repo root, so the perf trajectory "
                             "is committed with the code)")
    parser.add_argument("--check-against", metavar="BASELINE",
                        help="baseline BENCH_prefix_fastforward.json to "
                             "compare calibrated latency against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when calibrated cached-campaign latency "
                             "exceeds this multiple of the baseline")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail when the cache-on/cache-off campaign "
                             "speedup drops below this factor")
    args = parser.parse_args(argv)

    report = run_suite(smoke=args.smoke)
    print(render(report))

    output = (Path(args.output) if args.output
              else REPO_ROOT / "BENCH_prefix_fastforward.json")
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {output}")

    status = 0
    speedup = report["metrics"]["campaign"]["speedup"]
    if speedup < args.min_speedup:
        print(f"SPEEDUP SHORTFALL: {speedup:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        status = 1
    if args.check_against:
        status = max(status, check_regression(
            report, Path(args.check_against), args.max_regression))
    return status


if __name__ == "__main__":
    sys.exit(main())
