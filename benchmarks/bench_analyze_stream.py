"""Streaming-analysis benchmark: `repro analyze` memory and throughput.

Generates a large synthetic record store (200k records at full scale, 20k
with ``--quick``), runs the exact accumulation path behind ``repro analyze``
(:func:`repro.analysis.streaming.analyze_records` over
:meth:`RecordStore.iter_records`), and compares it against the full-load
path (``RecordStore.load()`` + the batch functions), gating on:

* **peak memory** — the streaming pass must stay far below the full-load
  pass (``--max-peak-fraction``, default 0.2), and its peak must be
  *independent of the record count*: analyzing the full store may not take
  more than double the memory of analyzing a tenth of it (bounded
  accumulators, the O(1)-memory contract of ``analysis/streaming.py``);
* **parity** — the streaming summaries must equal the full-load summaries,
  and the rendered text must be byte-identical to ``repro report``'s;
* **throughput** — the streaming pass may not be slower than
  ``--max-slowdown`` (default 3.0) times the full-load pass.

Peak memory is measured with ``tracemalloc`` (per-pass, machine
independent); the process-level ``ru_maxrss`` is recorded for context.
Results are written to ``BENCH_analyze_stream.json`` at the repo root, where
full-scale runs are committed alongside the other ``BENCH_*.json`` reports.

Usage::

    python benchmarks/bench_analyze_stream.py           # full size (200k)
    python benchmarks/bench_analyze_stream.py --quick   # CI size (20k)
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.analysis.streaming import analyze_records          # noqa: E402
from repro.core.analysis import (                             # noqa: E402
    availability_breakdown,
    management_summary,
    outcome_distribution,
    register_class_totals,
)
from repro.core.recording import ExperimentRecord, RecordStore  # noqa: E402
from repro.core.report import format_analysis, format_distribution  # noqa: E402

from _common import machine_info                              # noqa: E402

SCHEMA = "bench_analyze_stream/v1"

#: Outcome mix roughly shaped like the paper's Figure 3.
OUTCOME_CYCLE = (
    "correct", "correct", "correct", "correct", "correct", "correct",
    "panic_park", "panic_park", "panic_park",
    "cpu_park",
    "invalid_arguments",
    "inconsistent_state",
)
TARGET_CYCLE = ("arch_handle_trap", "arch_handle_hvc", "irqchip_handle_irq")


def generate_store(path: Path, count: int) -> float:
    """Write ``count`` synthetic records shaped like a real campaign's."""
    start = time.perf_counter()
    with path.open("w", encoding="utf-8") as handle:
        for index in range(count):
            outcome = OUTCOME_CYCLE[index % len(OUTCOME_CYCLE)]
            record = ExperimentRecord(
                spec_name=f"bench-{index}",
                outcome=outcome,
                rationale="synthetic benchmark record",
                injections=1 + index % 7,
                duration=60.0,
                seed=index,
                scenario="steady-state",
                target=TARGET_CYCLE[index % len(TARGET_CYCLE)],
                fault_model="single-bit-flip",
                intensity="medium",
                register_class_counts={"gp": index % 3, "special": index % 2},
                create_attempted=outcome == "invalid_arguments",
                create_succeeded=False,
            )
            handle.write(record.to_json() + "\n")
    return time.perf_counter() - start


def run_streaming(store: RecordStore):
    return analyze_records(store.iter_records(), group_key="target")


def run_full_load(store: RecordStore):
    records = store.load()
    return {
        "records": records,
        "distribution": outcome_distribution(records),
        "availability": availability_breakdown(records),
        "management": management_summary(records),
        "register_classes": register_class_totals(records),
    }


def timed(func, *args):
    start = time.perf_counter()
    value = func(*args)
    return value, time.perf_counter() - start


def traced_peak(func, *args) -> int:
    """Peak tracemalloc bytes attributable to one pass."""
    tracemalloc.start()
    try:
        func(*args)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI size (20k records) instead of 200k")
    parser.add_argument("--records", type=int, default=None,
                        help="override the record count")
    parser.add_argument("--max-peak-fraction", type=float, default=0.2,
                        help="streaming peak must stay below this fraction "
                             "of the full-load peak (default 0.2)")
    parser.add_argument("--max-growth", type=float, default=2.0,
                        help="streaming peak on the full store must stay "
                             "below this multiple of the peak on a tenth "
                             "of it (default 2.0)")
    parser.add_argument("--max-slowdown", type=float, default=3.0,
                        help="streaming wall time must stay below this "
                             "multiple of the full-load wall time")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_analyze_stream.json"))
    args = parser.parse_args(argv)

    count = args.records or (20_000 if args.quick else 200_000)
    tenth = max(count // 10, 1)
    failures = []

    with tempfile.TemporaryDirectory(prefix="bench_analyze_") as tmp:
        full_path = Path(tmp) / "full.jsonl"
        tenth_path = Path(tmp) / "tenth.jsonl"
        generation_s = generate_store(full_path, count)
        generate_store(tenth_path, tenth)
        store = RecordStore(full_path)
        tenth_store = RecordStore(tenth_path)
        print(f"generated {count} records in {generation_s:.2f}s "
              f"({full_path.stat().st_size / 1e6:.1f} MB)")

        # Throughput (untraced: tracemalloc slows parsing several-fold).
        analysis, stream_s = timed(run_streaming, store)
        loaded, load_s = timed(run_full_load, store)

        # Parity: streaming numbers must equal the full-load numbers, and
        # the text rendering must be byte-identical to `repro report`'s.
        source = str(full_path)
        if analysis.analyzer.distribution() != loaded["distribution"]:
            failures.append("streaming distribution != full-load distribution")
        if analysis.analyzer.availability() != loaded["availability"]:
            failures.append("streaming availability != full-load availability")
        if analysis.analyzer.management_summary() != loaded["management"]:
            failures.append("streaming management != full-load management")
        if analysis.analyzer.register_class_totals() != loaded["register_classes"]:
            failures.append("streaming register classes != full-load totals")
        streamed_text = format_analysis(
            analyze_records(store.iter_records()), title=f"records: {source}")
        report_text = format_distribution(loaded["distribution"],
                                          title=f"records: {source}")
        if streamed_text != report_text:
            failures.append("analyze text is not byte-identical to report")

        # Peak memory, full store vs a tenth of it vs full load.
        del loaded
        stream_peak = traced_peak(run_streaming, store)
        stream_peak_tenth = traced_peak(run_streaming, tenth_store)
        load_peak = traced_peak(run_full_load, store)

    peak_fraction = stream_peak / load_peak if load_peak else 0.0
    growth = (stream_peak / stream_peak_tenth) if stream_peak_tenth else 0.0
    slowdown = stream_s / load_s if load_s else 0.0

    if peak_fraction > args.max_peak_fraction:
        failures.append(
            f"streaming peak is {peak_fraction:.1%} of the full-load peak "
            f"(limit {args.max_peak_fraction:.0%})")
    if growth > args.max_growth:
        failures.append(
            f"streaming peak grew {growth:.2f}x from {tenth} to {count} "
            f"records (limit {args.max_growth:.1f}x): memory is not "
            f"independent of the record count")
    if slowdown > args.max_slowdown:
        failures.append(
            f"streaming pass took {slowdown:.2f}x the full-load pass "
            f"(limit {args.max_slowdown:.1f}x)")

    report = {
        "schema": SCHEMA,
        "scale": "quick" if count < 200_000 else "full",
        "machine": machine_info(),
        "records": count,
        "generation_s": round(generation_s, 4),
        "streaming": {
            "wall_s": round(stream_s, 4),
            "records_per_s": round(count / stream_s) if stream_s else None,
            "tracemalloc_peak_bytes": stream_peak,
            "tracemalloc_peak_bytes_at_tenth": stream_peak_tenth,
        },
        "full_load": {
            "wall_s": round(load_s, 4),
            "records_per_s": round(count / load_s) if load_s else None,
            "tracemalloc_peak_bytes": load_peak,
        },
        "ratios": {
            "streaming_peak_over_full_load_peak": round(peak_fraction, 5),
            "streaming_peak_growth_full_over_tenth": round(growth, 3),
            "streaming_wall_over_full_load_wall": round(slowdown, 3),
        },
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "gates": {
            "max_peak_fraction": args.max_peak_fraction,
            "max_growth": args.max_growth,
            "max_slowdown": args.max_slowdown,
            "failures": failures,
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    print(f"streaming: {stream_s:.2f}s ({count / stream_s:,.0f} records/s), "
          f"peak {stream_peak / 1e3:,.0f} kB "
          f"(tenth-size store: {stream_peak_tenth / 1e3:,.0f} kB)")
    print(f"full load: {load_s:.2f}s ({count / load_s:,.0f} records/s), "
          f"peak {load_peak / 1e6:,.1f} MB")
    print(f"streaming peak = {peak_fraction:.2%} of full-load peak, "
          f"grew {growth:.2f}x for a 10x larger store")
    print(f"report written to {args.output}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
