"""A5 (ablation) — how many tests the Figure-3 shares need to stabilize.

The paper showcases preliminary results; a certification-grade campaign needs
enough tests for the outcome shares to carry tight confidence intervals. This
ablation runs one larger medium-intensity campaign and reports the running
estimate of the correct / panic-park shares (with Wilson intervals) after
increasing numbers of tests, plus the sample size required for a ±5-point
estimate of the ~30 % panic share.
"""

from __future__ import annotations

from _common import records_of, run_campaign, save_and_print, scaled

from repro.analysis.figures import ascii_series_table
from repro.analysis.stats import required_sample_size
from repro.core.analysis import convergence_curve, outcome_distribution
from repro.core.outcomes import Outcome
from repro.core.plan import paper_figure3_plan

CHECKPOINTS = (10, 20, 40, 60, 80, 120)


def _run():
    plan = paper_figure3_plan(num_tests=scaled(60, minimum=20), duration=30.0,
                              base_seed=8000)
    return run_campaign(plan)


def test_campaign_convergence(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    records = records_of(result)

    rows = []
    for outcome in (Outcome.CORRECT, Outcome.PANIC_PARK):
        for n, fraction, low, high in convergence_curve(records, outcome, CHECKPOINTS):
            if n == 0:
                continue
            rows.append((outcome.value, n, fraction, high - low))
    table = ascii_series_table(
        rows, headers=["outcome", "tests", "running share", "CI width"]
    )
    sizing = required_sample_size(0.30, 0.05)
    report = (
        "A5: convergence of the Figure-3 shares with campaign size\n"
        + table
        + f"\n\ntests needed to estimate a 30% share within +/-5 points: {sizing}"
        + f"\n(this campaign ran {len(records)} tests of 30 s each)"
    )
    save_and_print("a5_campaign_convergence", report)

    distribution = outcome_distribution(records)
    # Shape checks: intervals tighten as the campaign grows, and the final
    # distribution keeps the Figure-3 ordering.
    correct_widths = [row[3] for row in rows if row[0] == Outcome.CORRECT.value]
    assert correct_widths[-1] <= correct_widths[0]
    assert distribution.fraction(Outcome.CORRECT) > distribution.fraction(Outcome.PANIC_PARK)
    assert 300 <= sizing <= 340
