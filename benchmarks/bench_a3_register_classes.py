"""A3 (ablation) — which register class drives each failure mode.

The paper's fault model picks a random architectural register; this ablation
restricts the bit flips to one register class at a time (general-purpose,
stack pointer, link register, program counter, status register) and shows
which class is responsible for which outcome: PC corruption drives the panic
parks, SP corruption drives the 0x24 CPU parks, and general-purpose registers
are almost always benign — the mechanism behind Figure 3's shape.
"""

from __future__ import annotations

from _common import records_of, run_campaign, save_and_print, scaled

from repro.core.analysis import outcome_distribution
from repro.core.faultmodels import RegisterClassBitFlip
from repro.core.outcomes import Outcome
from repro.core.plan import build_custom_plan
from repro.core.report import format_comparison
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls
from repro.hw.registers import RegisterClass

CLASSES = (
    RegisterClass.GENERAL_PURPOSE,
    RegisterClass.STACK_POINTER,
    RegisterClass.LINK_REGISTER,
    RegisterClass.PROGRAM_COUNTER,
    RegisterClass.STATUS,
)


def _run():
    campaigns = {}
    tests = scaled(12, minimum=5)
    for register_class in CLASSES:
        plan = build_custom_plan(
            f"class-{register_class.value}",
            InjectionTarget.nonroot_cpu_trap(),
            trigger_factory=lambda: EveryNCalls(50),
            fault_model_factory=lambda rc=register_class: RegisterClassBitFlip(rc),
            num_tests=tests,
            duration=30.0,
            base_seed=6000,
            intensity=f"class:{register_class.value}",
        )
        campaigns[register_class.value] = run_campaign(plan)
    return campaigns


def test_register_class_ablation(benchmark):
    campaigns = benchmark.pedantic(_run, rounds=1, iterations=1)
    distributions = {
        name: outcome_distribution(records_of(result))
        for name, result in campaigns.items()
    }
    report = format_comparison(
        distributions,
        title="A3: outcome shares per corrupted register class "
              "(1/50 calls, non-root trap handler)",
    )
    save_and_print("a3_register_classes", report)

    gpr = distributions[RegisterClass.GENERAL_PURPOSE.value]
    pc = distributions[RegisterClass.PROGRAM_COUNTER.value]
    sp = distributions[RegisterClass.STACK_POINTER.value]
    # Shape checks (the causal story behind Figure 3):
    # 1. general-purpose corruption is overwhelmingly benign;
    assert gpr.fraction(Outcome.CORRECT) >= 0.8
    # 2. program-counter corruption is the panic-park driver;
    assert pc.fraction(Outcome.PANIC_PARK) > gpr.fraction(Outcome.PANIC_PARK)
    assert pc.fraction(Outcome.PANIC_PARK) >= 0.3
    # 3. stack-pointer corruption is the main source of the 0x24 CPU park and
    #    parks more than it panics.
    assert sp.fraction(Outcome.CPU_PARK) >= pc.fraction(Outcome.CPU_PARK)
    assert sp.fraction(Outcome.CPU_PARK) > sp.fraction(Outcome.PANIC_PARK)
