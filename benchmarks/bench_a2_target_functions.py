"""A2 (ablation) — comparing the three candidate injection points.

The paper profiles three candidate functions (``irqchip_handle_irq``,
``arch_handle_trap``, ``arch_handle_hvc``) and argues that injecting into the
interrupt handler is uninteresting because corrupting its only parameter
produces a predictable IRQ error. This ablation runs the same medium-intensity
campaign against each entry point (non-root CPU filter) and compares the
outcome distributions.
"""

from __future__ import annotations

from _common import records_of, run_campaign, save_and_print, scaled

from repro.core.analysis import grouped_distributions, outcome_distribution
from repro.core.faultmodels import SingleBitFlip
from repro.core.outcomes import Outcome
from repro.core.plan import build_custom_plan
from repro.core.report import format_comparison
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls

TARGETS = {
    "arch_handle_trap": InjectionTarget.trap_handler(cpus={1}),
    "arch_handle_hvc": InjectionTarget.hvc_handler(cpus={1}),
    "irqchip_handle_irq": InjectionTarget.irqchip_handler(cpus={1}),
}


def _run():
    campaigns = {}
    tests = scaled(16, minimum=6)
    for name, target in TARGETS.items():
        plan = build_custom_plan(
            f"target-{name}",
            target,
            trigger_factory=lambda: EveryNCalls(100),
            fault_model_factory=SingleBitFlip,
            num_tests=tests,
            duration=30.0,
            base_seed=4000,
            intensity="medium",
        )
        campaigns[name] = run_campaign(plan)
    return campaigns


def test_target_function_comparison(benchmark):
    campaigns = benchmark.pedantic(_run, rounds=1, iterations=1)
    distributions = {
        name: outcome_distribution(records_of(result))
        for name, result in campaigns.items()
    }
    report = format_comparison(
        distributions,
        title="A2: medium-intensity outcomes per injection point (non-root CPU)",
    )
    notes = [
        "",
        "mean injections per test:",
    ]
    means = {}
    for name, result in campaigns.items():
        records = records_of(result)
        means[name] = (sum(record.injections for record in records) / len(records)
                       if records else 0.0)
        notes.append(f"  {name:<22} {means[name]:5.1f}")
    notes.extend([
        "",
        "note: the paper excludes irqchip_handle_irq() because corrupting its",
        "only *parameter* (the IRQ vector number) yields a predictable IRQ",
        "error. Corrupting the full saved guest context at IRQ entry — what",
        "this campaign does — propagates exactly like trap-handler corruption,",
        "and the IRQ path fires more often (every timer tick), so its failure",
        "share is at least as high. See EXPERIMENTS.md for the discussion.",
    ])
    save_and_print("a2_target_functions", report + "\n" + "\n".join(notes))

    trap = distributions["arch_handle_trap"]
    hvc = distributions["arch_handle_hvc"]
    irq = distributions["irqchip_handle_irq"]
    # Shape checks:
    # 1. the trap handler is the interesting target: it produces the failure
    #    modes (as in Figure 3);
    assert trap.fraction(Outcome.CORRECT) < 1.0
    # 2. the hvc handler sees far less traffic from the non-root cell, so most
    #    of its tests stay correct;
    assert hvc.fraction(Outcome.CORRECT) >= trap.fraction(Outcome.CORRECT)
    # 3. the IRQ entry is invoked on every timer tick, so it accumulates at
    #    least as many injections per test as the trap handler and its
    #    guest-context corruption is at least as damaging.
    assert means["irqchip_handle_irq"] >= means["arch_handle_trap"]
    assert irq.fraction(Outcome.CORRECT) <= 1.0
    assert (1.0 - irq.fraction(Outcome.CORRECT)) >= (
        1.0 - trap.fraction(Outcome.CORRECT)
    ) * 0.5
