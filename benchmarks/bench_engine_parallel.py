"""Engine benchmark — sequential vs. parallel campaign execution.

The paper's campaigns are embarrassingly parallel (hundreds of independent
one-minute tests per target function and intensity level), so the
:class:`~repro.engine.CampaignEngine` should scale wall-clock time down with
the number of workers while producing results identical experiment-for-
experiment to the sequential loop. This benchmark runs a medium campaign
(Figure-3 setup, 200 tests at scale 1.0) both ways, checks outcome-for-outcome
parity, and reports the speedup.

On single-core machines (and small CI runners) parallel execution cannot beat
sequential; the speedup assertion therefore only applies when the host has at
least two CPUs. Parity is asserted unconditionally.
"""

from __future__ import annotations

import os
import time

from _common import run_campaign, save_and_print, scaled

from repro.core.plan import paper_figure3_plan
from repro.engine import CampaignEngine, suggest_chunk_size

#: Keep the simulated duration short: per-test wall time is what we parallelize.
TEST_DURATION = 2.0
PARALLEL_JOBS = 4


def _build_plan():
    return paper_figure3_plan(num_tests=scaled(200, minimum=40),
                              duration=TEST_DURATION, base_seed=0)


def _timed(label, fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def test_engine_parallel_speedup_and_parity(benchmark):
    plan = _build_plan()

    sequential, seq_time = _timed("sequential", lambda: run_campaign(plan))

    def _parallel():
        # Simulated experiments run in milliseconds, so batch pool tasks;
        # real minute-long campaigns keep the default chunk_size=1.
        return CampaignEngine(
            plan, jobs=PARALLEL_JOBS,
            chunk_size=suggest_chunk_size(len(plan), PARALLEL_JOBS),
        ).run()

    parallel = benchmark.pedantic(_parallel, rounds=1, iterations=1)
    par_time = benchmark.stats.stats.total

    speedup = seq_time / par_time if par_time > 0 else float("inf")
    cpus = os.cpu_count() or 1
    lines = [
        "engine: sequential vs. parallel execution",
        "=" * 45,
        f"plan               : {plan.name} ({len(plan)} experiments, "
        f"{TEST_DURATION:.0f}s simulated each)",
        f"host CPUs          : {cpus}",
        f"sequential         : {seq_time:8.2f} s "
        f"({len(plan) / seq_time:6.1f} tests/s)",
        f"parallel (jobs={PARALLEL_JOBS})  : {par_time:8.2f} s "
        f"({len(plan) / par_time:6.1f} tests/s)",
        f"speedup            : {speedup:8.2f}x",
    ]
    save_and_print("engine_parallel", "\n".join(lines))

    # Parity: same seeds => identical outcomes, in plan order.
    assert len(parallel.results) == len(sequential.results)
    for seq, par in zip(sequential.results, parallel.results):
        assert par.spec_name == seq.spec_name
        assert par.outcome is seq.outcome
        assert par.injections == seq.injections
    assert parallel.outcome_counts() == sequential.outcome_counts()

    # Speedup: only meaningful with real parallelism available.
    if cpus >= 2:
        assert speedup > 1.2, (
            f"expected parallel execution to beat sequential on {cpus} CPUs, "
            f"got {speedup:.2f}x"
        )


def test_engine_resume_skips_completed_work(tmp_path):
    """A killed-then-resumed campaign must not re-pay completed experiments."""
    plan = paper_figure3_plan(num_tests=scaled(40, minimum=12),
                              duration=TEST_DURATION, base_seed=0)
    checkpoint = tmp_path / "resume.jsonl"

    from repro.core.plan import TestPlan
    upto = len(plan) // 2
    partial = TestPlan(name=plan.name, specs=list(plan.specs)[:upto])
    CampaignEngine(partial, checkpoint_path=str(checkpoint)).run()

    _, resumed_time = _timed(
        "resume",
        lambda: CampaignEngine(plan, checkpoint_path=str(checkpoint),
                               resume=True).run(),
    )
    _, full_time = _timed("full", lambda: run_campaign(plan))

    report = "\n".join([
        "engine: checkpoint/resume",
        "=" * 45,
        f"plan                 : {plan.name} ({len(plan)} experiments)",
        f"checkpointed         : {upto} experiments before the 'kill'",
        f"resume (remaining {len(plan) - upto:2d}): {resumed_time:6.2f} s",
        f"full re-run          : {full_time:6.2f} s",
    ])
    save_and_print("engine_resume", report)

    # Resuming half the plan must cost clearly less than re-running all of it.
    assert resumed_time < full_time * 0.8
