"""E3 — high-intensity faults filtered to the non-root cell's CPU.

Paper setup: multi-register bit flips once every 50 calls, activated only when
CPU core 1 (the non-root cell's core) calls the handlers, while the cell is
created and started. Paper result ("pretty peculiar, although wrong and
inconsistent"): the cell is allocated, Jailhouse reports it running, but the
CPU fails to come online (or the cell is left non-executable) and the USART
output stays completely blank; shutting the cell down still returns the CPU
and peripherals to the root cell.
"""

from __future__ import annotations

from _common import records_of, run_campaign, save_and_print, scaled

from repro.core.analysis import outcome_distribution
from repro.core.outcomes import Outcome
from repro.core.plan import paper_high_intensity_nonroot_plan
from repro.core.report import format_distribution


def _run():
    plan = paper_high_intensity_nonroot_plan(num_tests=scaled(30, minimum=10),
                                             duration=15.0, base_seed=2000)
    return run_campaign(plan)


def test_high_intensity_nonroot_inconsistent_state(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    records = records_of(result)
    distribution = outcome_distribution(records)

    inconsistent = result.results_with_outcome(Outcome.INCONSISTENT_STATE)
    blank_usart = sum(1 for entry in inconsistent if entry.target_cell_lines == 0)
    lines = [
        "E3: high intensity, non-root CPU filter, cell lifecycle under fault",
        "--------------------------------------------------------------------",
        f"tests: {len(records)}",
        f"inconsistent states (allocated + reported running, no output): "
        f"{len(inconsistent)}",
        f"  of which with a completely blank USART: {blank_usart}",
        "",
        format_distribution(distribution, title="outcome distribution"),
    ]
    save_and_print("e3_high_nonroot", "\n".join(lines))

    # Shape checks against the paper's description:
    # 1. the characteristic outcome of this campaign is the inconsistent
    #    allocated-but-dead cell, and it dominates the distribution;
    assert distribution.count(Outcome.INCONSISTENT_STATE) >= len(records) * 0.4
    assert distribution.dominant() is Outcome.INCONSISTENT_STATE
    # 2. in every such test the cell was created and started "successfully"
    #    yet produced no serial output at all;
    for entry in inconsistent:
        assert entry.management is not None
        assert entry.management.create_succeeded and entry.management.start_succeeded
        assert entry.target_cell_lines == 0
    # 3. the root-cell invalid-arguments finding does not appear here (the
    #    management hypercalls run on CPU 0, outside the filter).
    assert distribution.count(Outcome.INVALID_ARGUMENTS) == 0
