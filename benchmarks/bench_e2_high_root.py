"""E2 — high-intensity faults on the root cell's hvc/trap handlers.

Paper setup: multi-register bit flips once every 50 calls to
``arch_handle_hvc()`` and ``arch_handle_trap()`` in the context of the root
cell, while cells are being managed. Paper result: the management requests
"always return an invalid arguments", so the cell "will be not allocated at
all, which is a correct (and expected) behavior".

The bench cycles the cell lifecycle under injection and reports (a) the
per-test outcome distribution and (b) the management-plane statistics: how
many create requests were rejected and — the safety property — how many
rejected requests nonetheless left a cell allocated (must be zero).
"""

from __future__ import annotations

from _common import records_of, run_campaign, save_and_print, scaled

from repro.core.analysis import management_summary, outcome_distribution
from repro.core.outcomes import Outcome
from repro.core.plan import paper_high_intensity_root_plan
from repro.core.report import format_management_report


def _run():
    plan = paper_high_intensity_root_plan(num_tests=scaled(30, minimum=10),
                                          duration=20.0, base_seed=1000)
    return run_campaign(plan)


def test_high_intensity_root_cell_management(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    records = records_of(result)
    summary = management_summary(records)

    wrongly_allocated = sum(
        int(entry.extras.get("wrongly_allocated", 0)) for entry in result.results
    )
    create_attempts = sum(
        int(entry.extras.get("create_attempts", 0)) for entry in result.results
    )
    create_rejections = sum(
        int(entry.extras.get("create_rejections", 0)) for entry in result.results
    )
    extra_lines = [
        "",
        "management-plane totals across all lifecycle attempts:",
        f"  cell-create attempts           : {create_attempts}",
        f"  rejected with an error         : {create_rejections}",
        f"  rejected but still allocated   : {wrongly_allocated} "
        "(paper expectation: 0 — 'the cell will be not allocated at all')",
    ]
    report = format_management_report(
        records, title="E2: high intensity, root cell, arch_handle_hvc + arch_handle_trap"
    ) + "\n" + "\n".join(extra_lines)
    save_and_print("e2_high_root", report)

    distribution = outcome_distribution(records)
    # Shape checks:
    # 1. a rejected management request never leaves a cell allocated — the
    #    paper's "correct (and expected) behaviour";
    assert wrongly_allocated == 0
    # 2. rejected requests do occur under injection and surface as the
    #    invalid-arguments outcome;
    assert create_attempts > 0
    # 3. injections into the root context never produce the non-root-specific
    #    inconsistent state, and never silently lose the cell.
    assert distribution.count(Outcome.SILENT_FAILURE) == 0
    assert summary.rejected_and_not_allocated == summary.create_rejections
