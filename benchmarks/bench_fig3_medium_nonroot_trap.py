"""E1 / Figure 3 — non-root cell availability in medium-intensity tests.

Paper setup: single-register bit flips, once every 100 calls to
``arch_handle_trap()``, filtered to the non-root cell's CPU, one-minute tests.
Paper result (Figure 3): the cell behaves correctly in the majority of cases,
~30 % of tests end in a *panic park* (the fault propagates to a whole-system
kernel panic), and a limited number end in a *CPU park* (unhandled trap 0x24,
contained to the cell).
"""

from __future__ import annotations

from _common import (
    PAPER_FIGURE3_REFERENCE,
    records_of,
    run_campaign,
    save_and_print,
    scaled,
)

from repro.core.analysis import availability_breakdown
from repro.core.outcomes import Outcome
from repro.core.plan import paper_figure3_plan
from repro.core.report import format_figure3


def _run():
    plan = paper_figure3_plan(num_tests=scaled(80, minimum=20), duration=60.0,
                              base_seed=0)
    return run_campaign(plan)


def test_figure3_medium_intensity_nonroot_trap(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    records = records_of(result)
    report = format_figure3(records, paper_reference=PAPER_FIGURE3_REFERENCE)
    save_and_print("fig3_medium_nonroot_trap", report)

    breakdown = availability_breakdown(records)
    counts = result.outcome_counts()

    # Shape checks against the paper's Figure 3:
    # 1. the majority of tests are correct;
    assert breakdown["correct"] >= 0.45
    assert counts[Outcome.CORRECT] == max(counts.values())
    # 2. the dominant failure mode is the whole-system panic park, at a share
    #    broadly comparable to the paper's ~30 %;
    assert 0.10 <= breakdown["panic_park"] <= 0.50
    assert counts[Outcome.PANIC_PARK] > counts[Outcome.CPU_PARK]
    # 3. CPU parks exist but are a clear minority ("a limited number of tests");
    assert breakdown["cpu_park"] <= 0.20
    # 4. medium intensity on the running cell never produces the management
    #    findings (those belong to the high-intensity campaigns).
    assert counts[Outcome.INVALID_ARGUMENTS] == 0
    assert counts[Outcome.INCONSISTENT_STATE] == 0
    # 5. every test actually injected faults.
    assert all(entry.injections > 0 for entry in result.results)
