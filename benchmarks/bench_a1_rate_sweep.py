"""A1 (ablation) — outcome distribution vs. injection rate.

The paper fixes two rates (1/100 and 1/50 calls) and notes that "the rate of
occurrence is configurable". This ablation sweeps the interval from one
injection every 25 calls to one every 400 and shows how the Figure-3 shares
shift: more frequent injections mean fewer correct runs and more panic parks,
while very sparse injections are almost always masked.
"""

from __future__ import annotations

from _common import records_of, run_campaign, save_and_print, scaled

from repro.analysis.figures import ascii_series_table
from repro.core.analysis import availability_breakdown, mean_injections_per_test
from repro.core.plan import build_custom_plan
from repro.core.faultmodels import SingleBitFlip
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls

INTERVALS = (25, 50, 100, 200, 400)


def _run():
    sweep = {}
    tests = scaled(16, minimum=6)
    for interval in INTERVALS:
        plan = build_custom_plan(
            f"rate-1per{interval}",
            InjectionTarget.nonroot_cpu_trap(),
            trigger_factory=lambda interval=interval: EveryNCalls(interval),
            fault_model_factory=SingleBitFlip,
            num_tests=tests,
            duration=30.0,
            base_seed=3000 + interval,
            intensity=f"1/{interval}",
        )
        sweep[interval] = run_campaign(plan)
    return sweep


def test_injection_rate_sweep(benchmark):
    sweep = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    shares = {}
    for interval, result in sorted(sweep.items()):
        records = records_of(result)
        breakdown = availability_breakdown(records)
        shares[interval] = breakdown
        rows.append((
            f"1/{interval}",
            mean_injections_per_test(records),
            breakdown["correct"],
            breakdown["panic_park"],
            breakdown["cpu_park"],
        ))
    table = ascii_series_table(
        rows, headers=["rate", "mean inj/test", "correct", "panic park", "cpu park"]
    )
    save_and_print("a1_rate_sweep",
                   "A1: outcome shares vs. injection rate (30 s tests)\n" + table)

    # Shape checks: the correct share grows monotonically-ish with the
    # injection interval (comparing the densest and sparsest settings), and
    # the mean number of injections per test shrinks accordingly.
    densest, sparsest = shares[INTERVALS[0]], shares[INTERVALS[-1]]
    assert sparsest["correct"] >= densest["correct"]
    assert sparsest["panic_park"] <= densest["panic_park"]
    assert (mean_injections_per_test(records_of(sweep[INTERVALS[0]]))
            > mean_injections_per_test(records_of(sweep[INTERVALS[-1]])))
