"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one of the
ablations listed in DESIGN.md): it runs the corresponding campaign against the
simulated testbed, prints the same rows/series the paper reports (reproduced
vs. paper values where the paper gives numbers), writes the report to
``benchmarks/results/``, and asserts the qualitative *shape* of the result.

Campaign sizes scale with the ``REPRO_BENCH_SCALE`` environment variable
(default 1.0); absolute wall-clock timings reported by pytest-benchmark measure
the campaign execution itself and are secondary to the printed reports.
"""

from __future__ import annotations

import os
import platform
import sys
from pathlib import Path
from typing import Callable, Dict, Sequence

from repro.core.campaign import Campaign, CampaignResult
from repro.core.experiment import SutFactory, default_sut_factory
from repro.core.plan import TestPlan
from repro.core.recording import ExperimentRecord

#: Shares reported by the paper's Figure 3 (read off the chart).
PAPER_FIGURE3_REFERENCE: Dict[str, float] = {
    "correct": 0.63,
    "panic_park": 0.30,
    "cpu_park": 0.07,
}

RESULTS_DIR = Path(__file__).parent / "results"


def machine_info() -> Dict[str, object]:
    """Host fingerprint stamped into every ``BENCH_*.json`` report.

    ``repro-fi bench-history`` compares committed reports across PRs;
    absolute timings are only meaningful within one machine, so each report
    records where it ran and the trajectory view flags entries whose
    fingerprints differ. Old reports without the block are tolerated there.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def bench_scale() -> float:
    """Campaign-size multiplier taken from ``REPRO_BENCH_SCALE``."""
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def scaled(count: int, *, minimum: int = 4) -> int:
    """Scale a campaign size by the bench multiplier."""
    return max(minimum, int(round(count * bench_scale())))


def run_campaign(plan: TestPlan,
                 sut_factory: SutFactory = default_sut_factory) -> CampaignResult:
    """Execute a plan and return its aggregated result."""
    return Campaign(plan, sut_factory=sut_factory).run()


def save_and_print(name: str, report: str) -> None:
    """Print a report and persist it under ``benchmarks/results/``."""
    print()
    print(report)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(report + "\n", encoding="utf-8")


def records_of(result: CampaignResult) -> Sequence[ExperimentRecord]:
    return result.to_records()
