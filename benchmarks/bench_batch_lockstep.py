"""Batched lockstep benchmark: step whole prefix families per worker.

The prefix fast-forward subsystem (``BENCH_prefix_fastforward.json``) already
amortises the golden bring-up; the batched lockstep core goes further and
amortises the *post-injection window itself*: all fault variants of a prefix
family advance on one shared simulation until a lane's injector fires, and
only fired lanes pay a scalar replay (eviction, never emulation — records
stay byte-identical to scalar execution by construction).

The headline grid is the shape the optimization exists for: rare/late-fire
triggers (the paper's low-rate campaigns, where most of each one-minute test
is fault-free waiting), sixteen fault variants per seed. Both sides of the
comparison run with the prefix cache on at ``jobs=1``, so the reported
speedup is pure lockstep sharing — not prefix amortisation, not parallelism.
A second, ungated grid forces every lane to evict mid-batch and reports the
worst-case (replay-dominated) behaviour.

Reported metrics (written as ``BENCH_batch_lockstep.json`` at the repo root
so the perf trajectory is versioned alongside the code):

* **lockstep** — wall-clock of the family-grid campaign scalar vs batched,
  batch occupancy and eviction counts, and the parity verdict (the run
  aborts if any record differs);
* **eviction** — the same comparison on a fast-trigger grid where every
  lane evicts: the floor of the optimization, reported for honesty.

A ``calibration_s`` spin-loop is recorded alongside so the CI gate can
normalise machine speed: ``--check-against BASELINE.json`` fails when the
calibrated batched-campaign wall time regressed more than
``--max-regression`` (default 2.0x), and ``--min-speedup`` (default 5.0)
fails the run when the batched/scalar ratio drops below it.

Usage::

    python benchmarks/bench_batch_lockstep.py            # full size
    python benchmarks/bench_batch_lockstep.py --quick    # CI-sized
    python benchmarks/bench_batch_lockstep.py --quick \
        --check-against benchmarks/baselines/batch_lockstep_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.core.config import CampaignConfig, PartRef           # noqa: E402
from repro.engine import CampaignEngine                         # noqa: E402

from _common import machine_info                                # noqa: E402

SCHEMA = "bench_batch_lockstep/v1"

#: Eight fault-model variants, as a rate/register-class ablation would fan
#: one seed's bring-up out; crossed with two trigger variants below they
#: form sixteen-lane prefix families.
_FAULT_MODELS = [
    PartRef("single-bit-flip", tag="sbf"),
    PartRef("multi-register-bit-flip", {"count": 2}, tag="mr2"),
    PartRef("multi-register-bit-flip", {"count": 3}, tag="mr3"),
    PartRef("multi-register-bit-flip", {"count": 4}, tag="mr4"),
    PartRef("register-class-bit-flip", {"target_class": "pc"}, tag="pc"),
    PartRef("register-class-bit-flip", {"target_class": "sp"}, tag="sp"),
    PartRef("register-class-bit-flip", {"target_class": "lr"}, tag="lr"),
    PartRef("register-class-bit-flip", {"target_class": "gpr"}, tag="gpr"),
]


def calibrate() -> float:
    """Fixed pure-Python spin loop used to normalise machine speed."""
    start = time.perf_counter()
    total = 0
    for index in range(2_000_000):
        total += index & 0xFF
    assert total > 0
    return time.perf_counter() - start


def lockstep_grid(*, seeds: int, duration: float) -> CampaignConfig:
    """Sixteen-lane families whose injectors fire far beyond the window.

    One-shot triggers parked at the ten-millionth call model the paper's
    rare-fault regime: the whole observation window is fault-free waiting,
    which is exactly what the lockstep core lets all lanes share.
    """
    return CampaignConfig(
        name="batch-lockstep-grid",
        description="family grid, late-fire triggers, 16 lanes per seed",
        targets=[PartRef("nonroot-trap")],
        triggers=[PartRef("one-shot", {"n": 10_000_000}, tag="rare-a"),
                  PartRef("one-shot", {"n": 20_000_000}, tag="rare-b")],
        fault_models=_FAULT_MODELS,
        scenarios=["steady-state"],
        intensity="custom",
        tests=seeds,
        settle_time=1.0,
        duration=duration,
    )


def eviction_grid(*, seeds: int, duration: float) -> CampaignConfig:
    """The floor: fast triggers make every lane evict mid-batch."""
    return CampaignConfig(
        name="batch-eviction-grid",
        description="family grid, fast triggers, every lane evicts",
        targets=[PartRef("nonroot-trap")],
        triggers=[PartRef("every-n-calls", {"n": 5}, tag="fast-a"),
                  PartRef("every-n-calls", {"n": 10}, tag="fast-b")],
        fault_models=_FAULT_MODELS,
        scenarios=["steady-state"],
        intensity="custom",
        tests=seeds,
        settle_time=1.0,
        duration=duration,
    )


def records_of(result):
    return [record.to_json() for record in result.to_records()]


def bench_grid(config: CampaignConfig, *, repeats: int,
               batch_size: int = 16) -> dict:
    plan = config.compile()
    scalar_wall = batched_wall = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        scalar_result = CampaignEngine(plan, jobs=1, prefix_cache=True).run()
        scalar_wall = min(scalar_wall, time.perf_counter() - start)
    for _ in range(repeats):
        start = time.perf_counter()
        batched_result = CampaignEngine(plan, jobs=1, batch=True,
                                        batch_size=batch_size).run()
        batched_wall = min(batched_wall, time.perf_counter() - start)
    if records_of(scalar_result) != records_of(batched_result):
        raise AssertionError(
            f"batched campaign {config.name!r} diverged from scalar "
            f"execution: the lockstep core must be record-for-record "
            f"identical"
        )
    stats = batched_result.batch_stats()
    seeds = config.tests
    family_size = len(plan) // seeds
    return {
        "experiments": len(plan),
        "families": seeds,
        "family_size": family_size,
        "batch_size": batch_size,
        "settle_s": config.settle_time,
        "sim_duration_s": config.duration,
        "jobs": 1,
        "scalar_wall_s": scalar_wall,
        "batched_wall_s": batched_wall,
        "speedup": scalar_wall / batched_wall,
        "batched": stats["batched"],
        "evicted": stats["evicted"],
        "scalar_fallbacks": stats["scalar"],
        "occupancy": stats["batched"] / seeds if seeds else 0.0,
        "eviction_share": (stats["evicted"] / stats["batched"]
                           if stats["batched"] else 0.0),
        "records_identical": True,
    }


def run_suite(quick: bool) -> dict:
    seeds = 1 if quick else 3
    duration = 2.0 if quick else 8.0
    # min-of-N: the speedup gate compares two absolute wall times, so a
    # single noisy round on a busy CI runner must not be able to fail it.
    repeats = 2 if quick else 3
    eviction_seeds = 1
    eviction_duration = 1.0 if quick else 2.0

    calibration = calibrate()
    lockstep = bench_grid(lockstep_grid(seeds=seeds, duration=duration),
                          repeats=repeats)
    eviction = bench_grid(
        eviction_grid(seeds=eviction_seeds, duration=eviction_duration),
        repeats=repeats)

    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "scale": "quick" if quick else "full",
        "machine": machine_info(),
        "calibration_s": calibration,
        "metrics": {
            "lockstep": lockstep,
            "eviction": eviction,
        },
    }


def check_regression(report: dict, baseline_path: Path,
                     max_regression: float) -> int:
    """Compare the calibrated batched wall time against a baseline.

    Wall time is normalised per experiment, per simulated second, and by the
    spin-loop calibration, so the check is independent of machine speed and
    run scale.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baseline.get("schema") != SCHEMA:
        print(f"baseline {baseline_path} has unexpected schema "
              f"{baseline.get('schema')!r}", file=sys.stderr)
        return 1

    def calibrated(payload: dict) -> float:
        grid = payload["metrics"]["lockstep"]
        per_experiment = grid["batched_wall_s"] / grid["experiments"]
        # The batched path executes roughly one shared window per family
        # plus the amortised prefix; normalise by that shared cost so quick
        # and full scales compare.
        sim_s = ((grid["sim_duration_s"] + grid["settle_s"])
                 / grid["family_size"])
        return per_experiment / sim_s / payload["calibration_s"]

    ratio = calibrated(report) / calibrated(baseline)
    print(f"calibrated batched-campaign latency: {ratio:.2f}x baseline "
          f"(limit {max_regression:.2f}x)")
    if ratio > max_regression:
        print("REGRESSION: batched-campaign latency exceeded the limit",
              file=sys.stderr)
        return 1
    return 0


def render(report: dict) -> str:
    lines = [
        f"batched lockstep benchmark ({report['scale']}, "
        f"calibration {report['calibration_s']*1000:.1f} ms)",
    ]
    for name in ("lockstep", "eviction"):
        grid = report["metrics"][name]
        lines += [
            "",
            f"{name}: {grid['experiments']} experiments in "
            f"{grid['families']} families of {grid['family_size']} "
            f"(settle {grid['settle_s']:.0f}s + window "
            f"{grid['sim_duration_s']:.1f}s, jobs=1, "
            f"batch_size={grid['batch_size']})",
            f"  scalar : {grid['scalar_wall_s']*1000:8.0f} ms  "
            f"(prefix cache on)",
            f"  batched: {grid['batched_wall_s']*1000:8.0f} ms  "
            f"({grid['batched']} lanes, {grid['evicted']} evicted, "
            f"occupancy {grid['occupancy']:.1f})",
            f"  speedup: {grid['speedup']:8.2f}x  (records identical: "
            f"{grid['records_identical']})",
        ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (seconds instead of minutes)")
    parser.add_argument("--output", default=None,
                        help="where to write BENCH_batch_lockstep.json "
                             "(default: repo root, so the perf trajectory "
                             "is committed with the code)")
    parser.add_argument("--check-against", metavar="BASELINE",
                        help="baseline BENCH_batch_lockstep.json to "
                             "compare calibrated latency against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when calibrated batched-campaign latency "
                             "exceeds this multiple of the baseline")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail when the batched/scalar campaign speedup "
                             "on the lockstep grid drops below this factor")
    args = parser.parse_args(argv)

    report = run_suite(quick=args.quick)
    print(render(report))

    output = (Path(args.output) if args.output
              else REPO_ROOT / "BENCH_batch_lockstep.json")
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {output}")

    status = 0
    speedup = report["metrics"]["lockstep"]["speedup"]
    if speedup < args.min_speedup:
        print(f"SPEEDUP SHORTFALL: {speedup:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        status = 1
    if args.check_against:
        status = max(status, check_regression(
            report, Path(args.check_against), args.max_regression))
    return status


if __name__ == "__main__":
    sys.exit(main())
