"""A4 (ablation) — isolation comparison across hypervisor designs.

The paper surveys alternative partitioning solutions (Bao, PikeOS,
VOSYSmonitor) and motivates partitioning over plain consolidation. This
ablation runs the identical medium-intensity campaign against three systems —
the Jailhouse model, a Bao-like baseline with strict per-cell containment, and
a no-partitioning baseline — and compares outcome distributions and the
isolation metrics used by the SEooC assessment.
"""

from __future__ import annotations

from _common import records_of, run_campaign, save_and_print, scaled

from repro.baselines import bao_sut_factory, no_isolation_sut_factory
from repro.core.analysis import outcome_distribution
from repro.core.experiment import default_sut_factory
from repro.core.outcomes import Outcome
from repro.core.plan import IntensityLevel, build_intensity_plan
from repro.core.report import format_comparison
from repro.core.targets import InjectionTarget
from repro.safety.metrics import compare_metrics, compute_isolation_metrics

SYSTEMS = {
    "jailhouse": default_sut_factory,
    "bao-like": bao_sut_factory,
    "no-isolation": no_isolation_sut_factory,
}


def _run():
    campaigns = {}
    tests = scaled(16, minimum=6)
    for name, factory in SYSTEMS.items():
        plan = build_intensity_plan(
            IntensityLevel.MEDIUM,
            InjectionTarget.nonroot_cpu_trap(),
            num_tests=tests,
            duration=30.0,
            base_seed=7000,
            name=f"a4-{name}",
        )
        campaigns[name] = run_campaign(plan, sut_factory=factory)
    return campaigns


def test_hypervisor_comparison(benchmark):
    campaigns = benchmark.pedantic(_run, rounds=1, iterations=1)
    records = {name: records_of(result) for name, result in campaigns.items()}
    distributions = {name: outcome_distribution(rec) for name, rec in records.items()}
    metrics = {name: compute_isolation_metrics(rec) for name, rec in records.items()}
    report = "\n\n".join([
        format_comparison(distributions,
                          title="A4: outcomes per system under identical fault load"),
        "Isolation metrics:\n" + compare_metrics(metrics),
    ])
    save_and_print("a4_hypervisor_comparison", report)

    jailhouse = distributions["jailhouse"]
    bao = distributions["bao-like"]
    nohv = distributions["no-isolation"]
    # Shape checks:
    # 1. the Bao-like containment policy eliminates whole-system panics that
    #    Jailhouse exhibits, converting them into contained cell failures;
    assert bao.fraction(Outcome.PANIC_PARK) <= jailhouse.fraction(Outcome.PANIC_PARK)
    assert bao.fraction(Outcome.PANIC_PARK) == 0.0
    # 2. removing partitioning makes propagation at least as bad as Jailhouse;
    assert nohv.fraction(Outcome.PANIC_PARK) >= jailhouse.fraction(Outcome.PANIC_PARK)
    # 3. the containment metric orders the systems the same way.
    if metrics["jailhouse"].effective_tests and metrics["bao-like"].effective_tests:
        assert (metrics["bao-like"].containment.fraction
                >= metrics["jailhouse"].containment.fraction)
