"""Injection targets.

A target selects *where* faults are injected: which hypervisor entry point
(``irqchip_handle_irq``, ``arch_handle_trap``, ``arch_handle_hvc``) and,
optionally, a CPU filter — the paper "filters the injection to activate only
when CPU core 1 is calling the function" to separate root-cell from non-root-
cell effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.core.registry import TARGETS
from repro.errors import TargetError
from repro.hypervisor.handlers import ALL_HANDLERS, HANDLER_HVC, HANDLER_IRQCHIP, HANDLER_TRAP


@dataclass(frozen=True)
class InjectionTarget:
    """Which handler calls are eligible for injection."""

    handlers: Tuple[str, ...]
    cpu_filter: Optional[FrozenSet[int]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.handlers:
            raise TargetError("injection target needs at least one handler")
        unknown = [name for name in self.handlers if name not in ALL_HANDLERS]
        if unknown:
            raise TargetError(f"unknown handler(s): {unknown}")
        if self.cpu_filter is not None and not self.cpu_filter:
            raise TargetError("CPU filter must be None or a non-empty set")

    def matches(self, handler_name: str, cpu_id: int) -> bool:
        """Whether a call to ``handler_name`` on ``cpu_id`` is in scope."""
        if handler_name not in self.handlers:
            return False
        if self.cpu_filter is not None and cpu_id not in self.cpu_filter:
            return False
        return True

    def describe(self) -> str:
        if self.description:
            return self.description
        handlers = "+".join(self.handlers)
        if self.cpu_filter is None:
            return handlers
        cpus = ",".join(str(cpu) for cpu in sorted(self.cpu_filter))
        return f"{handlers}@cpu{{{cpus}}}"

    # -- canonical targets used by the paper's experiments ------------------------

    @classmethod
    def trap_handler(cls, cpus: Optional[Iterable[int]] = None) -> "InjectionTarget":
        """``arch_handle_trap()``, optionally filtered to specific CPUs."""
        return cls(
            handlers=(HANDLER_TRAP,),
            cpu_filter=frozenset(cpus) if cpus is not None else None,
        )

    @classmethod
    def hvc_handler(cls, cpus: Optional[Iterable[int]] = None) -> "InjectionTarget":
        """``arch_handle_hvc()``, optionally filtered to specific CPUs."""
        return cls(
            handlers=(HANDLER_HVC,),
            cpu_filter=frozenset(cpus) if cpus is not None else None,
        )

    @classmethod
    def irqchip_handler(cls, cpus: Optional[Iterable[int]] = None) -> "InjectionTarget":
        """``irqchip_handle_irq()``, optionally filtered to specific CPUs."""
        return cls(
            handlers=(HANDLER_IRQCHIP,),
            cpu_filter=frozenset(cpus) if cpus is not None else None,
        )

    @classmethod
    def hvc_and_trap(cls, cpus: Optional[Iterable[int]] = None) -> "InjectionTarget":
        """Both management-relevant handlers, as in the high-intensity tests."""
        return cls(
            handlers=(HANDLER_HVC, HANDLER_TRAP),
            cpu_filter=frozenset(cpus) if cpus is not None else None,
        )

    @classmethod
    def nonroot_cpu_trap(cls, cpu_id: int = 1) -> "InjectionTarget":
        """The paper's Figure-3 target: trap handler on the non-root cell's CPU."""
        return cls(
            handlers=(HANDLER_TRAP,),
            cpu_filter=frozenset({cpu_id}),
            description=f"arch_handle_trap@cpu{cpu_id} (non-root cell)",
        )


# -- registry builders ----------------------------------------------------------------

@TARGETS.register("trap", HANDLER_TRAP)
def build_trap_target(cpus: Optional[Iterable[int]] = None) -> InjectionTarget:
    """``arch_handle_trap()``, optionally filtered to specific CPUs."""
    return InjectionTarget.trap_handler(cpus)


@TARGETS.register("hvc", HANDLER_HVC)
def build_hvc_target(cpus: Optional[Iterable[int]] = None) -> InjectionTarget:
    """``arch_handle_hvc()``, optionally filtered to specific CPUs."""
    return InjectionTarget.hvc_handler(cpus)


@TARGETS.register("irqchip", HANDLER_IRQCHIP)
def build_irqchip_target(cpus: Optional[Iterable[int]] = None) -> InjectionTarget:
    """``irqchip_handle_irq()``, optionally filtered to specific CPUs."""
    return InjectionTarget.irqchip_handler(cpus)


@TARGETS.register("hvc+trap")
def build_hvc_and_trap_target(cpus: Optional[Iterable[int]] = None) -> InjectionTarget:
    """Both management-relevant handlers, as in the high-intensity tests."""
    return InjectionTarget.hvc_and_trap(cpus)


@TARGETS.register("nonroot-trap")
def build_nonroot_trap_target(cpu_id: int = 1) -> InjectionTarget:
    """The Figure-3 target: the trap handler on the non-root cell's CPU."""
    return InjectionTarget.nonroot_cpu_trap(cpu_id)


@TARGETS.register("handlers")
def build_handlers_target(handlers: Iterable[str],
                          cpus: Optional[Iterable[int]] = None) -> InjectionTarget:
    """Arbitrary handler list + optional CPU filter (fully generic target)."""
    return InjectionTarget(
        handlers=tuple(handlers),
        cpu_filter=frozenset(cpus) if cpus is not None else None,
    )
