"""Campaign orchestration.

A campaign executes a :class:`~repro.core.plan.TestPlan` end to end: it runs
the optional golden (fault-free) run used by the paper to profile injection
points and establish the reference behaviour, executes every experiment
against a fresh system under test, and aggregates per-outcome statistics into
a :class:`CampaignResult` the benchmarks and the SEooC assessment layer
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.experiment import (
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    Scenario,
    SutFactory,
    default_sut_factory,
)
from repro.core.outcomes import Outcome, OutcomeClassifier
from repro.core.plan import TestPlan
from repro.core.recording import ExperimentRecord, RecordStore
from repro.core.registry import resolve_sut_factory
from repro.errors import CampaignError


@dataclass
class GoldenRunReport:
    """Reference (fault-free) behaviour of the system under test."""

    duration: float
    handler_calls: Dict[str, int]
    target_cell_lines: int
    root_cell_lines: int
    outcome: Outcome

    @property
    def healthy(self) -> bool:
        return self.outcome is Outcome.CORRECT


@dataclass
class CampaignResult:
    """Aggregated results of one campaign."""

    plan_name: str
    results: List[ExperimentResult] = field(default_factory=list)
    golden: Optional[GoldenRunReport] = None

    # -- aggregation ----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.results)

    def outcome_counts(self) -> Dict[Outcome, int]:
        counts: Dict[Outcome, int] = {outcome: 0 for outcome in Outcome}
        for result in self.results:
            counts[result.outcome] += 1
        return counts

    def outcome_distribution(self) -> Dict[Outcome, float]:
        total = len(self.results)
        if total == 0:
            return {outcome: 0.0 for outcome in Outcome}
        counts = self.outcome_counts()
        return {outcome: counts[outcome] / total for outcome in Outcome}

    def failure_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for result in self.results if result.failed) / len(self.results)

    def total_injections(self) -> int:
        return sum(result.injections for result in self.results)

    def quarantined(self) -> List[ExperimentResult]:
        """Results synthesized for quarantined specs (no SUT verdict).

        Non-empty only when the supervision layer gave up on a spec that
        crashed or hung through every retry; the paper's outcome statistics
        should usually be computed without them (they carry no simulation
        evidence).
        """
        return [result for result in self.results
                if result.outcome.is_infrastructure]

    def results_with_outcome(self, outcome: Outcome) -> List[ExperimentResult]:
        return [result for result in self.results if result.outcome is outcome]

    def prefix_cache_stats(self) -> Dict[str, int]:
        """Prefix fast-forward effectiveness of this campaign.

        ``hits`` forked from a cached pre-injection snapshot, ``misses``
        executed (and cached) their family's prefix, ``uncached`` ran with
        the cache off or bypassed (cold-boot opt-outs, resumed records,
        SUTs without snapshot support). Execution bookkeeping, not part of
        the persisted records — a cached campaign's records are identical
        to a cold one's.
        """
        hits = sum(1 for result in self.results
                   if result.prefix_cache_hit is True)
        misses = sum(1 for result in self.results
                     if result.prefix_cache_hit is False)
        return {
            "hits": hits,
            "misses": misses,
            "uncached": len(self.results) - hits - misses,
        }

    def batch_stats(self) -> Dict[str, int]:
        """Batched-lockstep effectiveness of this campaign.

        ``batched`` results executed inside a lockstep batch, ``evicted``
        of those fired their injector mid-batch and were replayed scalar
        from the last sync boundary, ``scalar`` ran outside any batch
        (batching off, ineligible specs, fallbacks). Like
        :meth:`prefix_cache_stats` this is execution bookkeeping only — a
        batched campaign's records are identical to a scalar one's.
        """
        batched = sum(1 for result in self.results
                      if result.batch_id is not None)
        evicted = sum(1 for result in self.results if result.batch_evicted)
        return {
            "batched": batched,
            "evicted": evicted,
            "scalar": len(self.results) - batched,
        }

    def to_records(self) -> List[ExperimentRecord]:
        return [ExperimentRecord.from_result(result) for result in self.results]

    def save(self, path: str) -> int:
        return RecordStore(path).write_all(self.to_records())


ProgressCallback = Callable[[int, int, ExperimentResult], None]


class Campaign:
    """Runs a test plan and aggregates its results."""

    def __init__(self, plan: TestPlan,
                 sut_factory: "SutFactory | str" = default_sut_factory,
                 classifier: Optional[OutcomeClassifier] = None) -> None:
        plan.validate()
        self.plan = plan
        # Accepts a registry key ("jailhouse", "bao-like", ...) as well as a
        # factory callable; keys resolve to picklable factories.
        self.sut_factory = resolve_sut_factory(sut_factory)
        self.classifier = classifier or OutcomeClassifier()

    # -- golden run --------------------------------------------------------------------------

    def golden_run(self, *, duration: float = 10.0, seed: int = 999_983) -> GoldenRunReport:
        """Run the system fault-free and report its reference behaviour.

        This mirrors the paper's profiling of "golden (fault-free) runs of the
        hypervisor in order to find preliminary fault injection points": the
        report includes the per-handler call counts observed without faults.
        """
        sut = self.sut_factory(seed)
        try:
            sut.setup()
            management = sut.perform_cell_lifecycle()
            if not management.start_succeeded:
                raise CampaignError("golden run failed to start the non-root cell")
            window_start = sut.now
            sut.run(duration)
            window_end = sut.now
            evidence = sut.evidence(window_start, window_end)
            classified = self.classifier.classify(evidence)
            handler_calls: Dict[str, int] = {}
            handlers = getattr(sut, "hypervisor", None)
            if handlers is not None:
                handler_calls = {
                    name: stats.calls
                    for name, stats in sut.hypervisor.handlers.stats.items()  # type: ignore[attr-defined]
                }
            target_report = evidence.availability.get(evidence.target_cell or "")
            root_report = evidence.availability.get(evidence.root_cell or "")
            return GoldenRunReport(
                duration=duration,
                handler_calls=handler_calls,
                target_cell_lines=target_report.lines if target_report else 0,
                root_cell_lines=root_report.lines if root_report else 0,
                outcome=classified.outcome,
            )
        finally:
            sut.teardown()

    # -- execution ------------------------------------------------------------------------------

    def run(self, *, golden: bool = False,
            progress: Optional[ProgressCallback] = None,
            jobs: int = 1,
            checkpoint_path: Optional[str] = None,
            resume: bool = False,
            pooling: bool = False,
            prefix_cache: bool = False,
            batch: bool = False,
            batch_size: Optional[int] = None,
            chunk_size: "int | str | None" = None,
            telemetry=None,
            timeout_s: Optional[float] = None,
            retries: Optional[int] = None,
            max_worker_restarts: Optional[int] = None,
            quarantine_path: Optional[str] = None,
            flush_interval_s: float = 0.0) -> CampaignResult:
        """Execute every experiment in the plan.

        Execution is delegated to the :class:`~repro.engine.runner.
        CampaignEngine`; the default ``jobs=1`` runs in-process in plan order,
        exactly as the historical sequential loop did, while ``jobs=N`` (or
        ``jobs=0`` for one worker per CPU) fans the plan out across a process
        pool. ``checkpoint_path`` streams completed records to an append-only
        file; with ``resume=True`` specs whose records already exist there are
        restored instead of re-executed. ``pooling=True`` enables SUT
        snapshot/reset pooling: each worker boots one system under test and
        restores it between experiments, with outcomes identical to cold
        boots. ``prefix_cache=True`` additionally executes each distinct
        pre-injection prefix once per worker and forks all fault variants of
        that prefix family from its snapshot — again with records identical
        to cold execution (it implies ``pooling`` so all cached prefixes
        share one SUT per worker). ``batch=True`` steps all fault variants
        of a prefix family through one shared simulation in lockstep until
        their injectors fire (``batch_size`` caps the lanes per batch; it
        implies ``prefix_cache``) — records again identical to scalar
        execution. ``chunk_size`` groups pool tasks
        (``"auto"`` derives a size from the queue; see
        :func:`~repro.engine.scheduler.suggest_chunk_size`). ``telemetry``
        attaches a :class:`~repro.obs.telemetry.Telemetry` bus for live
        observability (structured events + the ``watch`` dashboard).
        ``timeout_s``/``retries``/``max_worker_restarts`` opt into the
        engine's supervision layer (watchdog timeouts, retry with backoff,
        poison-spec quarantine — see
        :class:`~repro.engine.supervisor.RunPolicy`); ``quarantine_path``
        overrides the quarantine log location and ``flush_interval_s``
        batches the atomic checkpoint flushes.
        """
        # Imported here: the engine returns this module's CampaignResult, so a
        # top-level import would be circular.
        from repro.engine.runner import CampaignEngine

        engine_progress = None
        if progress is not None:
            engine_progress = (
                lambda snapshot, result:
                    progress(snapshot.completed, snapshot.total, result)
            )
        engine = CampaignEngine(
            self.plan,
            jobs=jobs,
            sut_factory=self.sut_factory,
            classifier=self.classifier,
            checkpoint_path=checkpoint_path,
            resume=resume,
            pooling=pooling,
            prefix_cache=prefix_cache,
            batch=batch,
            batch_size=batch_size,
            chunk_size=chunk_size,
            progress=engine_progress,
            telemetry=telemetry,
            timeout_s=timeout_s,
            retries=retries,
            max_worker_restarts=max_worker_restarts,
            quarantine_path=quarantine_path,
            flush_interval_s=flush_interval_s,
        )
        campaign_result = engine.run()
        if golden:
            campaign_result.golden = self.golden_run()
        return campaign_result

    def run_single(self, spec: ExperimentSpec) -> ExperimentResult:
        """Execute one spec (used by tests and notebooks)."""
        return Experiment(
            spec, sut_factory=self.sut_factory, classifier=self.classifier
        ).run()
