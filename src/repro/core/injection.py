"""The fault injector.

:class:`FaultInjector` is the reproduction of the paper's "dozen of lines of
code added to Jailhouse": it installs itself as an entry hook on the targeted
hypervisor handlers, counts matching calls, asks its trigger whether to fire,
and applies the configured fault model to the saved guest context. Every
activation is recorded for later analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.faultmodels import AppliedFault, FaultModel
from repro.core.targets import InjectionTarget
from repro.core.triggers import Trigger
from repro.errors import InjectionError
from repro.hw.cpu import CpuCore
from repro.hw.registers import TrapContext
from repro.hypervisor.handlers import ArchHandlers


@dataclass(frozen=True)
class InjectionRecord:
    """One injector activation."""

    timestamp: float
    handler: str
    cpu_id: int
    call_index: int
    faults: tuple

    def describe(self) -> str:
        changes = "; ".join(fault.describe() for fault in self.faults)
        return (
            f"t={self.timestamp:.4f}s {self.handler} cpu{self.cpu_id} "
            f"call#{self.call_index}: {changes}"
        )


class FaultInjector:
    """Injects faults into the saved guest context at handler entry."""

    def __init__(self, target: InjectionTarget, trigger: Trigger,
                 fault_model: FaultModel, *, seed: int = 0,
                 max_injections: Optional[int] = None) -> None:
        if max_injections is not None and max_injections <= 0:
            raise InjectionError("max_injections must be positive or None")
        self.target = target
        self.trigger = trigger
        self.fault_model = fault_model
        self.rng = np.random.default_rng(seed)
        self.max_injections = max_injections
        self.records: List[InjectionRecord] = []
        self.matching_calls = 0
        self.total_calls = 0
        self.armed = False
        self._installed_on: Optional[ArchHandlers] = None

    # -- installation -----------------------------------------------------------------

    def install(self, handlers: ArchHandlers) -> None:
        """Install the entry hook on every targeted handler."""
        if self._installed_on is not None:
            raise InjectionError("injector is already installed")
        for handler_name in self.target.handlers:
            handlers.add_entry_hook(handler_name, self._entry_hook)
        self._installed_on = handlers

    def uninstall(self) -> None:
        """Remove the entry hook."""
        if self._installed_on is None:
            return
        for handler_name in self.target.handlers:
            self._installed_on.remove_entry_hook(handler_name, self._entry_hook)
        self._installed_on = None

    def arm(self) -> None:
        """Enable injections (installation alone does not inject)."""
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def reset(self) -> None:
        """Clear counters and records between experiments."""
        self.records.clear()
        self.matching_calls = 0
        self.total_calls = 0
        self.trigger.reset()

    # -- the hook itself ----------------------------------------------------------------

    def observe_call(self, handler_name: str, cpu_id: int) -> bool:
        """Advance counters/trigger for one handler call; report a fire.

        This is the *decision* half of the entry hook: counters, target
        matching, the injection budget, and the trigger draw — everything up
        to (and including) ``should_fire``, with the exact operation and RNG
        order of the combined hook, but without touching the trap context.
        The batched lockstep core feeds each lane's injector through this
        method while all lanes still share one simulated state: as long as no
        lane fires, observation is the only injector activity, so the shared
        state remains bit-identical to every lane's would-be scalar run. A
        ``True`` return is the moment the scalar run would diverge — the
        caller must evict the lane (replay it scalar) instead of continuing.
        """
        self.total_calls += 1
        if not self.armed:
            return False
        if not self.target.matches(handler_name, cpu_id):
            return False
        self.matching_calls += 1
        if self.max_injections is not None and len(self.records) >= self.max_injections:
            return False
        return self.trigger.should_fire(self.matching_calls, self.rng)

    def apply_fault(self, handler_name: str, cpu_id: int,
                    context: TrapContext) -> None:
        """Apply the fault model to ``context`` and record the activation.

        The *action* half of the entry hook; call only after
        :meth:`observe_call` returned ``True`` for the same handler call.
        """
        faults = self.fault_model.apply(context, self.rng)
        self.records.append(
            InjectionRecord(
                timestamp=context.timestamp,
                handler=handler_name,
                cpu_id=cpu_id,
                call_index=self.matching_calls,
                faults=tuple(faults),
            )
        )

    def _entry_hook(self, handler_name: str, cpu: CpuCore, context: TrapContext) -> None:
        if self.observe_call(handler_name, cpu.cpu_id):
            self.apply_fault(handler_name, cpu.cpu_id, context)

    # -- reporting ------------------------------------------------------------------------

    @property
    def injection_count(self) -> int:
        return len(self.records)

    def faults_applied(self) -> List[AppliedFault]:
        return [fault for record in self.records for fault in record.faults]

    def describe(self) -> str:
        return (
            f"inject {self.fault_model.describe()} into {self.target.describe()} "
            f"({self.trigger.describe()})"
        )
