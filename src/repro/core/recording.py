"""Structured experiment records and on-disk storage.

The paper collects every test's outcome into a log file "which is further
analyzed to understand how the hypervisor reacted to injected faults". This
module is the structured equivalent: each experiment becomes one JSON record,
and a :class:`RecordStore` persists campaigns as JSON-Lines files that the
analysis layer can re-load without re-running the (slow) experiments.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.experiment import ExperimentResult
from repro.core.outcomes import ManagementEvidence, Outcome
from repro.errors import AnalysisError

RECORD_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExperimentRecord:
    """Flat, serialization-friendly view of one experiment result."""

    spec_name: str
    outcome: str
    rationale: str
    injections: int
    duration: float
    seed: int
    scenario: str
    target: str
    fault_model: str
    intensity: str
    register_class_counts: Dict[str, int] = field(default_factory=dict)
    target_cell_lines: int = 0
    root_cell_lines: int = 0
    create_attempted: bool = False
    create_succeeded: bool = False
    start_attempted: bool = False
    start_succeeded: bool = False
    extras: Dict[str, object] = field(default_factory=dict)
    schema_version: int = RECORD_SCHEMA_VERSION

    @classmethod
    def from_result(cls, result: ExperimentResult) -> "ExperimentRecord":
        management = result.management or ManagementEvidence()
        return cls(
            spec_name=result.spec_name,
            outcome=result.outcome.value,
            rationale=result.rationale,
            injections=result.injections,
            duration=result.duration,
            seed=result.seed,
            scenario=result.scenario,
            target=result.target,
            fault_model=result.fault_model,
            intensity=result.intensity,
            register_class_counts=dict(result.register_class_counts),
            target_cell_lines=result.target_cell_lines,
            root_cell_lines=result.root_cell_lines,
            create_attempted=management.create_attempted,
            create_succeeded=management.create_succeeded,
            start_attempted=management.start_attempted,
            start_succeeded=management.start_succeeded,
            extras=dict(result.extras),
        )

    @property
    def outcome_enum(self) -> Outcome:
        return Outcome(self.outcome)

    @property
    def spec_id(self) -> Optional[str]:
        """The :meth:`ExperimentSpec.identity` stamp, if the record has one.

        Records written through the engine's checkpoint layer carry it in
        ``extras``; records saved by older code paths do not, and resume falls
        back to the (spec_name, seed, scenario) triple for those.
        """
        value = self.extras.get("spec_id")
        return value if isinstance(value, str) else None

    def to_result(self) -> ExperimentResult:
        """Rebuild an :class:`ExperimentResult` view of this record.

        Used by the engine when resuming a checkpointed campaign: specs whose
        records already exist are not re-executed, so their results are
        reconstructed from disk. ``wall_time`` is not persisted and comes back
        as ``0.0``; management evidence keeps the summary booleans only. The
        checkpoint-internal ``spec_id`` stamp is stripped so restored results
        stay indistinguishable from freshly executed ones.
        """
        management = ManagementEvidence(
            create_attempted=self.create_attempted,
            create_succeeded=self.create_succeeded,
            start_attempted=self.start_attempted,
            start_succeeded=self.start_succeeded,
        )
        return ExperimentResult(
            spec_name=self.spec_name,
            outcome=self.outcome_enum,
            rationale=self.rationale,
            injections=self.injections,
            duration=self.duration,
            seed=self.seed,
            scenario=self.scenario,
            target=self.target,
            fault_model=self.fault_model,
            intensity=self.intensity,
            register_class_counts=dict(self.register_class_counts),
            management=management,
            target_cell_lines=self.target_cell_lines,
            root_cell_lines=self.root_cell_lines,
            extras={key: value for key, value in self.extras.items()
                    if key != "spec_id"},
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "ExperimentRecord":
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"malformed record line: {exc}") from exc
        if not isinstance(payload, dict):
            raise AnalysisError("record line does not contain a JSON object")
        payload.pop("schema_version", None)
        known = {name for name in cls.__dataclass_fields__ if name != "schema_version"}
        unknown = set(payload) - known
        if unknown:
            raise AnalysisError(f"record has unknown fields: {sorted(unknown)}")
        missing = {
            name for name in ("spec_name", "outcome", "injections", "seed")
            if name not in payload
        }
        if missing:
            raise AnalysisError(f"record is missing fields: {sorted(missing)}")
        return cls(**payload)


class RecordStore:
    """JSON-Lines persistence for experiment records."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def _ensure_parent(self) -> None:
        parent = self.path.parent
        if not parent.exists():
            parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: ExperimentRecord) -> None:
        self._ensure_parent()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")

    def write_all(self, records: Iterable[ExperimentRecord]) -> int:
        self._ensure_parent()
        count = 0
        with self.path.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(record.to_json() + "\n")
                count += 1
        return count

    def load(self) -> List[ExperimentRecord]:
        if not self.path.exists():
            return []
        records: List[ExperimentRecord] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(ExperimentRecord.from_json(line))
        return records

    def __iter__(self) -> Iterator[ExperimentRecord]:
        return iter(self.load())
