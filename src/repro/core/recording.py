"""Structured experiment records and on-disk storage.

The paper collects every test's outcome into a log file "which is further
analyzed to understand how the hypervisor reacted to injected faults". This
module is the structured equivalent: each experiment becomes one JSON record,
and a :class:`RecordStore` persists campaigns as JSON-Lines files that the
analysis layer can re-load without re-running the (slow) experiments.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.experiment import ExperimentResult
from repro.core.outcomes import ManagementEvidence, Outcome
from repro.errors import AnalysisError, RecordSchemaError

RECORD_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExperimentRecord:
    """Flat, serialization-friendly view of one experiment result."""

    spec_name: str
    outcome: str
    rationale: str
    injections: int
    duration: float
    seed: int
    scenario: str
    target: str
    fault_model: str
    intensity: str
    register_class_counts: Dict[str, int] = field(default_factory=dict)
    target_cell_lines: int = 0
    root_cell_lines: int = 0
    create_attempted: bool = False
    create_succeeded: bool = False
    start_attempted: bool = False
    start_succeeded: bool = False
    extras: Dict[str, object] = field(default_factory=dict)
    schema_version: int = RECORD_SCHEMA_VERSION

    @classmethod
    def from_result(cls, result: ExperimentResult) -> "ExperimentRecord":
        management = result.management or ManagementEvidence()
        return cls(
            spec_name=result.spec_name,
            outcome=result.outcome.value,
            rationale=result.rationale,
            injections=result.injections,
            duration=result.duration,
            seed=result.seed,
            scenario=result.scenario,
            target=result.target,
            fault_model=result.fault_model,
            intensity=result.intensity,
            register_class_counts=dict(result.register_class_counts),
            target_cell_lines=result.target_cell_lines,
            root_cell_lines=result.root_cell_lines,
            create_attempted=management.create_attempted,
            create_succeeded=management.create_succeeded,
            start_attempted=management.start_attempted,
            start_succeeded=management.start_succeeded,
            extras=dict(result.extras),
        )

    @property
    def outcome_enum(self) -> Outcome:
        return Outcome(self.outcome)

    @property
    def spec_id(self) -> Optional[str]:
        """The :meth:`ExperimentSpec.identity` stamp, if the record has one.

        Records written through the engine's checkpoint layer carry it in
        ``extras``; records saved by older code paths do not, and resume falls
        back to the (spec_name, seed, scenario) triple for those.
        """
        value = self.extras.get("spec_id")
        return value if isinstance(value, str) else None

    def to_result(self) -> ExperimentResult:
        """Rebuild an :class:`ExperimentResult` view of this record.

        Used by the engine when resuming a checkpointed campaign: specs whose
        records already exist are not re-executed, so their results are
        reconstructed from disk. ``wall_time`` is not persisted and comes back
        as ``0.0``; management evidence keeps the summary booleans only. The
        checkpoint-internal ``spec_id`` stamp is stripped so restored results
        stay indistinguishable from freshly executed ones.
        """
        management = ManagementEvidence(
            create_attempted=self.create_attempted,
            create_succeeded=self.create_succeeded,
            start_attempted=self.start_attempted,
            start_succeeded=self.start_succeeded,
        )
        return ExperimentResult(
            spec_name=self.spec_name,
            outcome=self.outcome_enum,
            rationale=self.rationale,
            injections=self.injections,
            duration=self.duration,
            seed=self.seed,
            scenario=self.scenario,
            target=self.target,
            fault_model=self.fault_model,
            intensity=self.intensity,
            register_class_counts=dict(self.register_class_counts),
            management=management,
            target_cell_lines=self.target_cell_lines,
            root_cell_lines=self.root_cell_lines,
            extras={key: value for key, value in self.extras.items()
                    if key != "spec_id"},
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "ExperimentRecord":
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"malformed record line: {exc}") from exc
        if not isinstance(payload, dict):
            raise AnalysisError("record line does not contain a JSON object")
        version = payload.pop("schema_version", None)
        if version is not None:
            if isinstance(version, bool) or not isinstance(version, int):
                raise AnalysisError(
                    f"record schema_version must be an integer, got {version!r}")
            if version > RECORD_SCHEMA_VERSION:
                raise RecordSchemaError(
                    f"record schema_version {version} is newer than the "
                    f"supported version {RECORD_SCHEMA_VERSION}; this record "
                    f"was written by a newer repro and its fields could be "
                    f"misinterpreted — upgrade before analyzing it")
        known = {name for name in cls.__dataclass_fields__ if name != "schema_version"}
        unknown = set(payload) - known
        if unknown:
            raise AnalysisError(f"record has unknown fields: {sorted(unknown)}")
        missing = {
            name for name in ("spec_name", "outcome", "injections", "seed")
            if name not in payload
        }
        if missing:
            raise AnalysisError(f"record is missing fields: {sorted(missing)}")
        return cls(**payload)


class RecordStore:
    """JSON-Lines persistence for experiment records."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def _ensure_parent(self) -> None:
        parent = self.path.parent
        if not parent.exists():
            parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: ExperimentRecord) -> None:
        self._ensure_parent()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")

    def write_all(self, records: Iterable[ExperimentRecord]) -> int:
        self._ensure_parent()
        count = 0
        with self.path.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(record.to_json() + "\n")
                count += 1
        return count

    def replace_all(self, records: Iterable[ExperimentRecord]) -> int:
        """Atomically replace the store with exactly ``records``.

        Writes a sibling temp file, fsyncs it, and renames it over the store
        (then best-effort fsyncs the directory so the rename itself is
        durable). A reader — or a resuming campaign — therefore sees either
        the complete old file or the complete new one, never a torn middle:
        this is what makes checkpoints crash-safe under SIGKILL.
        """
        self._ensure_parent()
        tmp = self.path.with_name(self.path.name + ".tmp")
        count = 0
        with tmp.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(record.to_json() + "\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        try:
            parent_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            return count
        try:
            os.fsync(parent_fd)
        except OSError:
            pass
        finally:
            os.close(parent_fd)
        return count

    def iter_records(self, *, errors: str = "strict") -> Iterator[ExperimentRecord]:
        """Stream records line by line without materializing the file.

        This is the O(1)-memory path the analysis layer is built on: at any
        point only one line of the file is held in memory, so a
        million-record store streams in the same footprint as a ten-record
        one. A missing file streams zero records (mirroring :meth:`load`).

        ``errors`` selects the malformed-line policy:

        * ``"strict"`` (default) — raise :class:`AnalysisError` naming the
          file and line number of the first malformed line;
        * ``"skip"`` — drop malformed lines and keep streaming (for
          salvaging partially corrupted stores, e.g. a campaign killed
          mid-write). Records stamped with a newer ``schema_version`` are
          a tooling mismatch rather than corruption and raise
          :class:`~repro.errors.RecordSchemaError` under either policy.
        """
        if errors not in ("strict", "skip"):
            raise AnalysisError(
                f"unknown malformed-line policy {errors!r}; "
                f"use 'strict' or 'skip'")
        return self._iter_records(errors)

    def _iter_records(self, errors: str) -> Iterator[ExperimentRecord]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = ExperimentRecord.from_json(line)
                except AnalysisError as exc:
                    # A newer-schema record is a tooling mismatch, not line
                    # corruption: the skip policy must not silently drop it.
                    if errors == "skip" and not isinstance(exc, RecordSchemaError):
                        continue
                    raise exc.__class__(
                        f"{self.path}:{lineno}: {exc}") from exc
                yield record

    def count(self) -> int:
        """Number of non-blank lines in the store, without parsing them.

        Holds one line at a time, like iteration. On a well-formed store
        this equals the number of records :meth:`iter_records` yields; on a
        store with malformed lines it is an upper bound (strict iteration
        raises, ``errors="skip"`` yields fewer).
        """
        if not self.path.exists():
            return 0
        with self.path.open("r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())

    def load(self) -> List[ExperimentRecord]:
        """Materialize every record in memory (convenience for small stores).

        Large stores should use :meth:`iter_records` instead.
        """
        return list(self.iter_records())

    def __iter__(self) -> Iterator[ExperimentRecord]:
        return self.iter_records()
