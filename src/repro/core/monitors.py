"""Monitors: how the framework observes the system under test.

The paper's observability is deliberately minimal — a serial log collected
during each one-minute test, later analyzed offline. These monitors model
that: an availability monitor that judges whether a cell kept producing
serial output during the observation window, and a hypervisor-event monitor
that extracts panics, CPU parks and failed management calls from the
hypervisor's event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hw.uart import Uart
from repro.hypervisor.core import Hypervisor, HypervisorEvent, HypervisorEventKind


@dataclass(frozen=True)
class AvailabilityReport:
    """Serial-output availability of one cell over an observation window."""

    cell_name: str
    window_start: float
    window_end: float
    lines: int
    lines_per_second: float
    silent_intervals: int
    longest_silence: float
    available: bool

    def describe(self) -> str:
        status = "available" if self.available else "SILENT"
        return (
            f"{self.cell_name}: {self.lines} lines "
            f"({self.lines_per_second:.2f}/s), longest silence "
            f"{self.longest_silence:.2f}s -> {status}"
        )


class AvailabilityMonitor:
    """Judges cell availability from captured UART output."""

    def __init__(self, uart: Uart, cell_name: str, *,
                 min_lines_per_second: float = 0.2,
                 silence_threshold: float = 5.0) -> None:
        self.uart = uart
        self.cell_name = cell_name
        self.min_lines_per_second = min_lines_per_second
        self.silence_threshold = silence_threshold

    def report(self, window_start: float, window_end: float) -> AvailabilityReport:
        """Summarize output of the monitored cell inside the window."""
        duration = max(window_end - window_start, 1e-9)
        records = self.uart.records_between(window_start, window_end, self.cell_name)
        timestamps = [record.timestamp for record in records]
        silent_intervals = 0
        longest_silence = 0.0
        previous = window_start
        for timestamp in timestamps + [window_end]:
            gap = timestamp - previous
            longest_silence = max(longest_silence, gap)
            if gap > self.silence_threshold:
                silent_intervals += 1
            previous = timestamp
        lines_per_second = len(records) / duration
        available = lines_per_second >= self.min_lines_per_second
        return AvailabilityReport(
            cell_name=self.cell_name,
            window_start=window_start,
            window_end=window_end,
            lines=len(records),
            lines_per_second=lines_per_second,
            silent_intervals=silent_intervals,
            longest_silence=longest_silence,
            available=available,
        )


@dataclass(frozen=True)
class HypervisorObservation:
    """Summary of hypervisor events inside an observation window."""

    panicked: bool
    panic_reason: Optional[str]
    parked_cpus: Tuple[Tuple[int, Optional[int]], ...]   # (cpu_id, error_code)
    cpu_online_failures: int
    failed_hypercalls: int
    cell_states: Dict[str, str]
    inconsistent_cells: Tuple[str, ...]


class HypervisorMonitor:
    """Extracts failure indicators from the hypervisor's event log and state."""

    def __init__(self, hypervisor: Hypervisor) -> None:
        self.hypervisor = hypervisor

    def observe(self, window_start: float, window_end: float) -> HypervisorObservation:
        events = self.hypervisor.events_between(window_start, window_end)
        parked: List[Tuple[int, Optional[int]]] = []
        for cpu in self.hypervisor.board.cpus:
            if cpu.is_parked and cpu.park_history:
                last = cpu.park_history[-1]
                if window_start <= last.timestamp <= window_end:
                    parked.append((cpu.cpu_id, last.error_code))
        cell_states = {
            cell.name: cell.state.value for cell in self.hypervisor.cells.values()
        }
        inconsistent = tuple(
            cell.name for cell in self.hypervisor.cells.values()
            if not cell.is_consistent()
        )
        return HypervisorObservation(
            panicked=self.hypervisor.panicked,
            panic_reason=self.hypervisor.panic_reason,
            parked_cpus=tuple(parked),
            cpu_online_failures=sum(
                1 for event in events
                if event.kind is HypervisorEventKind.CPU_ONLINE_FAILED
            ),
            failed_hypercalls=sum(
                1 for event in events
                if event.kind is HypervisorEventKind.HYPERCALL_FAILED
            ),
            cell_states=cell_states,
            inconsistent_cells=inconsistent,
        )


class LogCollector:
    """Collects the serial log of one test into a plain-text blob.

    This mirrors the paper's procedure of piping the board's serial port to a
    log file that is "further analyzed to understand how the hypervisor
    reacted to injected faults".
    """

    def __init__(self, uart: Uart) -> None:
        self.uart = uart
        self._start: Optional[float] = None

    def start(self, timestamp: Optional[float]) -> None:
        self._start = timestamp

    @property
    def start_time(self) -> Optional[float]:
        """When collection started (None before :meth:`start`)."""
        return self._start

    def collect(self, end_timestamp: float) -> str:
        if self._start is None:
            return ""
        records = self.uart.records_between(self._start, end_timestamp)
        return "\n".join(
            f"[{record.timestamp:10.4f}] {record.source}: {record.text}"
            for record in records
        )
