"""Outcome taxonomy and classifier.

The paper's results are expressed in a small vocabulary of per-test outcomes:

* **correct** — the cell behaves as in the golden run;
* **panic park** — "the fault propagates to the whole system bringing the
  system itself to a kernel panic";
* **CPU park** — an unhandled trap (error code 0x24) makes the hypervisor
  call ``cpu_park()``; the non-root cell stops but isolation is preserved;
* **invalid arguments** — a management hypercall is rejected and the cell is
  never allocated (the expected, correct reaction to corrupted arguments);
* **inconsistent state** — the cell is reported RUNNING by the hypervisor but
  is actually broken and produces no output.

The classifier derives one outcome per experiment from the collected
evidence, with a documented precedence (system-wide failures dominate
cell-local ones, which dominate availability-only findings).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.monitors import AvailabilityReport, HypervisorObservation
from repro.core.registry import CLASSIFIERS
from repro.hypervisor.traps import UNHANDLED_TRAP_ERROR


class Outcome(enum.Enum):
    """Per-experiment outcome classes.

    The first six are the paper's taxonomy, derived by the classifier from
    simulation evidence. The ``INFRA_*`` members are *infrastructure*
    verdicts: the harness could not obtain a classification because the
    worker process hung past the watchdog timeout or died, every retry
    included. They never come out of :class:`OutcomeClassifier` — the
    supervision layer synthesizes them for quarantined specs so a campaign
    still completes with one result per plan position.
    """

    CORRECT = "correct"
    PANIC_PARK = "panic_park"
    CPU_PARK = "cpu_park"
    INVALID_ARGUMENTS = "invalid_arguments"
    INCONSISTENT_STATE = "inconsistent_state"
    SILENT_FAILURE = "silent_failure"
    INFRA_TIMEOUT = "infra_timeout"
    INFRA_CRASH = "infra_crash"

    @property
    def is_failure(self) -> bool:
        return self is not Outcome.CORRECT

    @property
    def is_infrastructure(self) -> bool:
        """Harness-level verdict (no SUT classification was obtained)."""
        return self in (Outcome.INFRA_TIMEOUT, Outcome.INFRA_CRASH)

    @property
    def violates_isolation(self) -> bool:
        """Whether the outcome means a fault escaped the targeted cell."""
        return self in (Outcome.PANIC_PARK, Outcome.SILENT_FAILURE)


@dataclass
class ManagementEvidence:
    """Results of cell-management operations performed during the test.

    The boolean fields summarize the test for the classifier (``*_succeeded``
    is False as soon as any attempt was rejected); the counters keep the
    per-attempt totals for the repeated-lifecycle experiments.
    """

    create_attempted: bool = False
    create_succeeded: bool = False
    create_code: int = 0
    start_attempted: bool = False
    start_succeeded: bool = False
    start_code: int = 0
    destroy_attempted: bool = False
    destroy_succeeded: bool = False
    create_attempts: int = 0
    create_rejections: int = 0
    start_attempts: int = 0
    start_rejections: int = 0
    wrongly_allocated: int = 0
    inconsistent_starts: int = 0

    def merge_attempt(self, attempt: "ManagementEvidence") -> None:
        """Fold one lifecycle attempt into the aggregate view."""
        if attempt.create_attempted:
            self.create_attempts += 1
            if not self.create_attempted:
                self.create_attempted = True
                self.create_succeeded = attempt.create_succeeded
                self.create_code = attempt.create_code
            if not attempt.create_succeeded:
                self.create_rejections += 1
                self.create_succeeded = False
                self.create_code = attempt.create_code
        if attempt.start_attempted:
            self.start_attempts += 1
            if not self.start_attempted:
                self.start_attempted = True
                self.start_succeeded = attempt.start_succeeded
                self.start_code = attempt.start_code
            if not attempt.start_succeeded:
                self.start_rejections += 1
                self.start_succeeded = False
                self.start_code = attempt.start_code


@dataclass
class OutcomeEvidence:
    """Everything the classifier looks at for one experiment."""

    observation: HypervisorObservation
    availability: Dict[str, AvailabilityReport] = field(default_factory=dict)
    management: ManagementEvidence = field(default_factory=ManagementEvidence)
    target_cell: Optional[str] = None
    root_cell: Optional[str] = None
    injections: int = 0


@dataclass(frozen=True)
class ClassifiedOutcome:
    """Outcome plus a human-readable rationale."""

    outcome: Outcome
    rationale: str


@CLASSIFIERS.register("default", "paper")
class OutcomeClassifier:
    """Derives a single outcome per experiment from the evidence."""

    def classify(self, evidence: OutcomeEvidence) -> ClassifiedOutcome:
        observation = evidence.observation

        # 1. Whole-system failures dominate everything else.
        if observation.panicked:
            return ClassifiedOutcome(
                Outcome.PANIC_PARK,
                f"hypervisor panic propagated to the whole system: "
                f"{observation.panic_reason}",
            )

        # 2. Management-plane rejections: the cell was never allocated.
        management = evidence.management
        if management.create_attempted and not management.create_succeeded:
            return ClassifiedOutcome(
                Outcome.INVALID_ARGUMENTS,
                f"cell create rejected with code {management.create_code} "
                "(cell not allocated)",
            )
        if management.start_attempted and not management.start_succeeded:
            return ClassifiedOutcome(
                Outcome.INVALID_ARGUMENTS,
                f"cell start rejected with code {management.start_code}",
            )

        # 3. CPU park: an unhandled trap parked a CPU of the target cell.
        parked_with_error = [
            (cpu_id, error) for cpu_id, error in observation.parked_cpus
            if error is not None
        ]
        if parked_with_error:
            cpu_id, error = parked_with_error[0]
            return ClassifiedOutcome(
                Outcome.CPU_PARK,
                f"CPU {cpu_id} parked after unhandled trap "
                f"(error 0x{(error or UNHANDLED_TRAP_ERROR):02x}); "
                "other cells unaffected",
            )

        # 4. Inconsistent state: reported RUNNING but no sign of life.
        target = evidence.target_cell
        if target is not None:
            report = evidence.availability.get(target)
            state = observation.cell_states.get(target)
            running = state is not None and state.startswith("running")
            silent = report is not None and not report.available
            if running and (target in observation.inconsistent_cells
                            or observation.cpu_online_failures > 0) and silent:
                return ClassifiedOutcome(
                    Outcome.INCONSISTENT_STATE,
                    f"cell {target!r} reported '{state}' but produced no output "
                    f"({observation.cpu_online_failures} CPU online failure(s))",
                )
            if silent:
                return ClassifiedOutcome(
                    Outcome.SILENT_FAILURE,
                    f"cell {target!r} stopped producing output without any "
                    "hypervisor-visible error",
                )

        # 5. Root cell silence without a panic is also a silent failure.
        root = evidence.root_cell
        if root is not None:
            report = evidence.availability.get(root)
            if report is not None and not report.available:
                return ClassifiedOutcome(
                    Outcome.SILENT_FAILURE,
                    f"root cell {root!r} stopped producing output",
                )

        return ClassifiedOutcome(
            Outcome.CORRECT,
            "all monitored cells kept producing output and no hypervisor "
            "failure was recorded",
        )
