"""Campaign analytics.

Turns raw experiment records into the quantities reported by the paper:
per-outcome distributions (Figure 3), conditional statistics on corrupted
management calls (the high-intensity findings), per-register-class and
per-target breakdowns (ablations), and simple convergence diagnostics.

Every function here makes exactly one pass over its ``records`` argument, so
all of them accept arbitrary iterables — including the lazy generators from
:meth:`~repro.core.recording.RecordStore.iter_records` — and the
``*_from_counts`` builders turn pre-accumulated counters into the same
summary objects, which is how the streaming layer
(:mod:`repro.analysis.streaming`) and the engine's live aggregator produce
numbers that cannot drift from the offline ones.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.stats import proportion_confidence_interval
from repro.core.outcomes import Outcome
from repro.core.recording import ExperimentRecord
from repro.errors import AnalysisError


@dataclass(frozen=True)
class OutcomeShare:
    """Share of one outcome within a set of experiments."""

    outcome: Outcome
    count: int
    fraction: float
    ci_low: float
    ci_high: float


@dataclass
class DistributionSummary:
    """Per-outcome distribution with confidence intervals."""

    total: int
    shares: Dict[Outcome, OutcomeShare] = field(default_factory=dict)

    def fraction(self, outcome: Outcome) -> float:
        share = self.shares.get(outcome)
        return share.fraction if share is not None else 0.0

    def count(self, outcome: Outcome) -> int:
        share = self.shares.get(outcome)
        return share.count if share is not None else 0

    def dominant(self) -> Outcome:
        if not self.shares:
            raise AnalysisError("cannot compute the dominant outcome of an empty set")
        return max(self.shares.values(), key=lambda share: share.count).outcome


def _to_outcomes(records: Iterable[ExperimentRecord]) -> List[Outcome]:
    return [record.outcome_enum for record in records]


def distribution_from_counts(counts: Mapping[str, int],
                             total: int) -> DistributionSummary:
    """Build a :class:`DistributionSummary` from per-outcome-value counts.

    This is the single construction path for outcome distributions:
    :func:`outcome_distribution` (one pass over records), the streaming
    accumulators, and the engine's live aggregator all reduce to counts and
    delegate here, so their numbers are identical by construction.
    """
    summary = DistributionSummary(total=total)
    if total == 0:
        return summary
    for outcome in Outcome:
        count = counts.get(outcome.value, 0)
        low, high = proportion_confidence_interval(count, total)
        summary.shares[outcome] = OutcomeShare(
            outcome=outcome,
            count=count,
            fraction=count / total,
            ci_low=low,
            ci_high=high,
        )
    return summary


def availability_from_counts(counts: Mapping[str, int],
                             total: int) -> Dict[str, float]:
    """Figure-3 availability shares from per-outcome-value counts."""
    if total == 0:
        return {"correct": 0.0, "panic_park": 0.0, "cpu_park": 0.0, "other": 0.0}
    correct = counts.get(Outcome.CORRECT.value, 0)
    panic = counts.get(Outcome.PANIC_PARK.value, 0)
    cpu = counts.get(Outcome.CPU_PARK.value, 0)
    other = total - correct - panic - cpu
    return {
        "correct": correct / total,
        "panic_park": panic / total,
        "cpu_park": cpu / total,
        "other": other / total,
    }


def _count_outcomes(records: Iterable[ExperimentRecord]) -> "Tuple[Dict[str, int], int]":
    counts: Dict[str, int] = defaultdict(int)
    total = 0
    for record in records:
        counts[record.outcome_enum.value] += 1
        total += 1
    return counts, total


def outcome_distribution(records: Iterable[ExperimentRecord]) -> DistributionSummary:
    """Compute the per-outcome distribution over a set of records."""
    counts, total = _count_outcomes(records)
    return distribution_from_counts(counts, total)


def availability_breakdown(records: Iterable[ExperimentRecord]) -> Dict[str, float]:
    """Figure-3 style availability shares: correct / panic park / cpu park / other."""
    counts, total = _count_outcomes(records)
    return availability_from_counts(counts, total)


def require_record_field(key: str) -> str:
    """Validate that ``key`` names an :class:`ExperimentRecord` field.

    Rejects non-fields unconditionally — including method names such as
    ``"to_json"``, which a plain ``hasattr`` check would accept and which
    would then group every record under one bound-method repr.
    """
    if key not in ExperimentRecord.__dataclass_fields__:
        valid = ", ".join(sorted(ExperimentRecord.__dataclass_fields__))
        raise AnalysisError(
            f"{key!r} is not an ExperimentRecord field; valid keys: {valid}")
    return key


def group_by(records: Iterable[ExperimentRecord],
             key: str) -> Dict[str, List[ExperimentRecord]]:
    """Group records by one of their string attributes (target, intensity, ...)."""
    require_record_field(key)
    grouped: Dict[str, List[ExperimentRecord]] = defaultdict(list)
    for record in records:
        grouped[str(getattr(record, key))].append(record)
    return dict(grouped)


def grouped_distributions(records: Iterable[ExperimentRecord],
                          key: str) -> Dict[str, DistributionSummary]:
    """Per-group outcome distributions (used by the ablation benches)."""
    return {
        group: outcome_distribution(group_records)
        for group, group_records in group_by(records, key).items()
    }


@dataclass(frozen=True)
class ManagementSummary:
    """Conditional statistics for the high-intensity management experiments."""

    total: int
    create_attempts: int
    create_rejections: int
    rejected_and_not_allocated: int
    inconsistent_states: int
    panics: int

    @property
    def rejection_rate(self) -> float:
        if self.create_attempts == 0:
            return 0.0
        return self.create_rejections / self.create_attempts


class OutcomeTally:
    """Rolling per-outcome counts — the shared counting core.

    Both the engine's live aggregator (fed ``ExperimentResult``\\ s as a
    campaign runs) and the offline streaming analyzers (fed
    :class:`ExperimentRecord`\\ s from disk) count through this class, so a
    campaign's live progress numbers and its after-the-fact analysis are the
    same numbers by construction.
    """

    def __init__(self) -> None:
        self.completed = 0
        self.failures = 0
        self.injections = 0
        self.outcome_counts: Dict[str, int] = {
            outcome.value: 0 for outcome in Outcome
        }

    def add(self, outcome: Outcome, *, injections: int = 0) -> None:
        self.completed += 1
        if outcome.is_failure:
            self.failures += 1
        self.injections += injections
        self.outcome_counts[outcome.value] = (
            self.outcome_counts.get(outcome.value, 0) + 1
        )

    def distribution(self) -> DistributionSummary:
        return distribution_from_counts(self.outcome_counts, self.completed)

    def availability(self) -> Dict[str, float]:
        return availability_from_counts(self.outcome_counts, self.completed)

    def mean_injections(self) -> float:
        return self.injections / self.completed if self.completed else 0.0


class ManagementTally:
    """Rolling counters behind :class:`ManagementSummary`.

    One instance is fed one record at a time (by :func:`management_summary`
    and by the streaming analyzers), so the management findings have a single
    counting implementation regardless of whether records arrive as a list,
    a generator, or one by one from a live campaign.
    """

    def __init__(self) -> None:
        self.total = 0
        self.create_attempts = 0
        self.create_rejections = 0
        self.inconsistent_states = 0
        self.panics = 0

    def add(self, record: ExperimentRecord) -> None:
        self.total += 1
        if record.create_attempted:
            self.create_attempts += 1
            if not record.create_succeeded:
                self.create_rejections += 1
        outcome = record.outcome_enum
        if outcome is Outcome.INCONSISTENT_STATE:
            self.inconsistent_states += 1
        elif outcome is Outcome.PANIC_PARK:
            self.panics += 1

    def summary(self) -> ManagementSummary:
        # In this model a rejected create never allocates a cell, which is
        # the safety property behind the paper's "the cell will not be
        # allocated at all, which is a correct (and expected) behaviour".
        return ManagementSummary(
            total=self.total,
            create_attempts=self.create_attempts,
            create_rejections=self.create_rejections,
            rejected_and_not_allocated=self.create_rejections,
            inconsistent_states=self.inconsistent_states,
            panics=self.panics,
        )


def management_summary(records: Iterable[ExperimentRecord]) -> ManagementSummary:
    """Summarize cell-management behaviour under fault (E2/E3 analysis)."""
    tally = ManagementTally()
    for record in records:
        tally.add(record)
    return tally.summary()


def register_class_totals(records: Iterable[ExperimentRecord]) -> Dict[str, int]:
    """Total corruptions per register class across a campaign."""
    totals: Dict[str, int] = defaultdict(int)
    for record in records:
        for register_class, count in record.register_class_counts.items():
            totals[register_class] += count
    return dict(totals)


def mean_injections_per_test(records: Iterable[ExperimentRecord]) -> float:
    total = 0
    injections = 0
    for record in records:
        total += 1
        injections += record.injections
    return injections / total if total else 0.0


def convergence_curve(records: Sequence[ExperimentRecord],
                      outcome: Outcome,
                      checkpoints: Sequence[int]) -> List[Tuple[int, float, float, float]]:
    """Fraction (with CI) of ``outcome`` after the first N experiments.

    Used by the campaign-convergence ablation (A5) to show how many tests are
    needed before the Figure-3 shares stabilize.
    """
    curve: List[Tuple[int, float, float, float]] = []
    outcomes = _to_outcomes(records)
    for checkpoint in checkpoints:
        n = min(checkpoint, len(outcomes))
        if n == 0:
            curve.append((0, 0.0, 0.0, 0.0))
            continue
        count = sum(1 for value in outcomes[:n] if value is outcome)
        low, high = proportion_confidence_interval(count, n)
        curve.append((n, count / n, low, high))
    return curve
