"""Campaign analytics.

Turns raw experiment records into the quantities reported by the paper:
per-outcome distributions (Figure 3), conditional statistics on corrupted
management calls (the high-intensity findings), per-register-class and
per-target breakdowns (ablations), and simple convergence diagnostics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.stats import proportion_confidence_interval
from repro.core.outcomes import Outcome
from repro.core.recording import ExperimentRecord
from repro.errors import AnalysisError


@dataclass(frozen=True)
class OutcomeShare:
    """Share of one outcome within a set of experiments."""

    outcome: Outcome
    count: int
    fraction: float
    ci_low: float
    ci_high: float


@dataclass
class DistributionSummary:
    """Per-outcome distribution with confidence intervals."""

    total: int
    shares: Dict[Outcome, OutcomeShare] = field(default_factory=dict)

    def fraction(self, outcome: Outcome) -> float:
        share = self.shares.get(outcome)
        return share.fraction if share is not None else 0.0

    def count(self, outcome: Outcome) -> int:
        share = self.shares.get(outcome)
        return share.count if share is not None else 0

    def dominant(self) -> Outcome:
        if not self.shares:
            raise AnalysisError("cannot compute the dominant outcome of an empty set")
        return max(self.shares.values(), key=lambda share: share.count).outcome


def _to_outcomes(records: Iterable[ExperimentRecord]) -> List[Outcome]:
    return [record.outcome_enum for record in records]


def outcome_distribution(records: Sequence[ExperimentRecord]) -> DistributionSummary:
    """Compute the per-outcome distribution over a set of records."""
    outcomes = _to_outcomes(records)
    total = len(outcomes)
    summary = DistributionSummary(total=total)
    if total == 0:
        return summary
    for outcome in Outcome:
        count = sum(1 for value in outcomes if value is outcome)
        low, high = proportion_confidence_interval(count, total)
        summary.shares[outcome] = OutcomeShare(
            outcome=outcome,
            count=count,
            fraction=count / total,
            ci_low=low,
            ci_high=high,
        )
    return summary


def availability_breakdown(records: Sequence[ExperimentRecord]) -> Dict[str, float]:
    """Figure-3 style availability shares: correct / panic park / cpu park / other."""
    total = len(records)
    if total == 0:
        return {"correct": 0.0, "panic_park": 0.0, "cpu_park": 0.0, "other": 0.0}
    counts = defaultdict(int)
    for record in records:
        outcome = record.outcome_enum
        if outcome is Outcome.CORRECT:
            counts["correct"] += 1
        elif outcome is Outcome.PANIC_PARK:
            counts["panic_park"] += 1
        elif outcome is Outcome.CPU_PARK:
            counts["cpu_park"] += 1
        else:
            counts["other"] += 1
    return {key: counts[key] / total
            for key in ("correct", "panic_park", "cpu_park", "other")}


def group_by(records: Sequence[ExperimentRecord],
             key: str) -> Dict[str, List[ExperimentRecord]]:
    """Group records by one of their string attributes (target, intensity, ...)."""
    if records and not hasattr(records[0], key):
        raise AnalysisError(f"records have no attribute {key!r}")
    grouped: Dict[str, List[ExperimentRecord]] = defaultdict(list)
    for record in records:
        grouped[str(getattr(record, key))].append(record)
    return dict(grouped)


def grouped_distributions(records: Sequence[ExperimentRecord],
                          key: str) -> Dict[str, DistributionSummary]:
    """Per-group outcome distributions (used by the ablation benches)."""
    return {
        group: outcome_distribution(group_records)
        for group, group_records in group_by(records, key).items()
    }


@dataclass(frozen=True)
class ManagementSummary:
    """Conditional statistics for the high-intensity management experiments."""

    total: int
    create_attempts: int
    create_rejections: int
    rejected_and_not_allocated: int
    inconsistent_states: int
    panics: int

    @property
    def rejection_rate(self) -> float:
        if self.create_attempts == 0:
            return 0.0
        return self.create_rejections / self.create_attempts


def management_summary(records: Sequence[ExperimentRecord]) -> ManagementSummary:
    """Summarize cell-management behaviour under fault (E2/E3 analysis)."""
    create_attempts = sum(1 for record in records if record.create_attempted)
    create_rejections = sum(
        1 for record in records
        if record.create_attempted and not record.create_succeeded
    )
    # In this model a rejected create never allocates a cell, which is the
    # safety property behind the paper's "the cell will not be allocated at
    # all, which is a correct (and expected) behaviour".
    rejected_and_not_allocated = create_rejections
    inconsistent = sum(
        1 for record in records
        if record.outcome_enum is Outcome.INCONSISTENT_STATE
    )
    panics = sum(
        1 for record in records if record.outcome_enum is Outcome.PANIC_PARK
    )
    return ManagementSummary(
        total=len(records),
        create_attempts=create_attempts,
        create_rejections=create_rejections,
        rejected_and_not_allocated=rejected_and_not_allocated,
        inconsistent_states=inconsistent,
        panics=panics,
    )


def register_class_totals(records: Sequence[ExperimentRecord]) -> Dict[str, int]:
    """Total corruptions per register class across a campaign."""
    totals: Dict[str, int] = defaultdict(int)
    for record in records:
        for register_class, count in record.register_class_counts.items():
            totals[register_class] += count
    return dict(totals)


def mean_injections_per_test(records: Sequence[ExperimentRecord]) -> float:
    if not records:
        return 0.0
    return sum(record.injections for record in records) / len(records)


def convergence_curve(records: Sequence[ExperimentRecord],
                      outcome: Outcome,
                      checkpoints: Sequence[int]) -> List[Tuple[int, float, float, float]]:
    """Fraction (with CI) of ``outcome`` after the first N experiments.

    Used by the campaign-convergence ablation (A5) to show how many tests are
    needed before the Figure-3 shares stabilize.
    """
    curve: List[Tuple[int, float, float, float]] = []
    outcomes = _to_outcomes(records)
    for checkpoint in checkpoints:
        n = min(checkpoint, len(outcomes))
        if n == 0:
            curve.append((0, 0.0, 0.0, 0.0))
            continue
        count = sum(1 for value in outcomes[:n] if value is outcome)
        low, high = proportion_confidence_interval(count, n)
        curve.append((n, count / n, low, high))
    return curve
