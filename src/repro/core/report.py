"""Human-readable campaign reports.

Renders the quantities the paper reports as plain-text tables and ASCII bar
charts: the Figure-3 availability breakdown, the high-intensity management
findings, and side-by-side comparisons for the ablation benches. All output is
deterministic text so benchmarks can simply print it.

Every ``records`` parameter accepts an arbitrary iterable and is consumed in
exactly one pass, so the lazy generators from
:meth:`~repro.core.recording.RecordStore.iter_records` render reports of
million-record stores without materializing them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.streaming import (
    StreamAnalysis,
    StreamingAnalyzer,
    outcome_deltas,
)
from repro.core.analysis import (
    DistributionSummary,
    OutcomeTally,
    outcome_distribution,
)
from repro.core.campaign import CampaignResult
from repro.core.outcomes import Outcome
from repro.core.recording import ExperimentRecord

BAR_WIDTH = 40


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def format_distribution(summary: DistributionSummary, *, title: str = "") -> str:
    """Render an outcome distribution as an ASCII bar chart."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"experiments: {summary.total}")
    for outcome in Outcome:
        share = summary.shares.get(outcome)
        if share is None or (share.count == 0 and outcome is not Outcome.CORRECT):
            continue
        lines.append(
            f"{outcome.value:<20} {share.count:>5}  {share.fraction * 100:6.1f}%  "
            f"[{share.ci_low * 100:5.1f}, {share.ci_high * 100:5.1f}]  "
            f"|{_bar(share.fraction)}|"
        )
    return "\n".join(lines)


def format_figure3(records: Iterable[ExperimentRecord], *,
                   paper_reference: Optional[Mapping[str, float]] = None) -> str:
    """Render the Figure-3 availability chart (non-root cell, medium intensity).

    ``paper_reference`` maps category name to the fraction reported by the
    paper so the bench output shows reproduced-vs-paper side by side.
    """
    tally = OutcomeTally()
    for record in records:
        tally.add(record.outcome_enum, injections=record.injections)
    breakdown = tally.availability()
    reference = paper_reference or {}
    lines = [
        "Non-root cell availability in medium intensity tests (Figure 3)",
        "----------------------------------------------------------------",
        f"tests: {tally.completed}   mean injections/test: "
        f"{tally.mean_injections():.1f}",
        "",
        f"{'category':<14} {'measured':>9} {'paper':>9}   chart",
    ]
    for category in ("correct", "panic_park", "cpu_park", "other"):
        measured = breakdown.get(category, 0.0)
        paper_value = reference.get(category)
        paper_text = f"{paper_value * 100:8.1f}%" if paper_value is not None else "      n/a"
        lines.append(
            f"{category:<14} {measured * 100:8.1f}% {paper_text}   |{_bar(measured)}|"
        )
    return "\n".join(lines)


def format_management_report(records: Iterable[ExperimentRecord], *,
                             title: str) -> str:
    """Render the high-intensity findings (invalid arguments / inconsistent state)."""
    analyzer = StreamingAnalyzer().extend(records)
    summary = analyzer.management_summary()
    distribution = analyzer.distribution()
    lines = [
        title,
        "-" * len(title),
        f"tests: {summary.total}",
        f"cell-create attempts: {summary.create_attempts}",
        f"  rejected (cell not allocated): {summary.create_rejections} "
        f"({summary.rejection_rate * 100:.1f}% of attempts)",
        f"  rejected creates that still allocated a cell: "
        f"{summary.create_rejections - summary.rejected_and_not_allocated}",
        f"inconsistent states (running but silent): {summary.inconsistent_states}",
        f"whole-system panics: {summary.panics}",
        "",
        format_distribution(distribution, title="outcome distribution"),
    ]
    return "\n".join(lines)


def format_comparison(groups: Mapping[str, DistributionSummary], *,
                      title: str, sort_keys: bool = True) -> str:
    """Render a per-group outcome comparison (ablation benches)."""
    lines = [title, "=" * len(title)]
    header = (
        f"{'group':<32} {'N':>5} {'correct':>9} {'panic':>9} {'cpu park':>9} "
        f"{'invalid':>9} {'inconsist':>10} {'silent':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    keys = sorted(groups) if sort_keys else list(groups)
    for key in keys:
        summary = groups[key]
        lines.append(
            f"{key:<32} {summary.total:>5} "
            f"{summary.fraction(Outcome.CORRECT) * 100:>8.1f}% "
            f"{summary.fraction(Outcome.PANIC_PARK) * 100:>8.1f}% "
            f"{summary.fraction(Outcome.CPU_PARK) * 100:>8.1f}% "
            f"{summary.fraction(Outcome.INVALID_ARGUMENTS) * 100:>8.1f}% "
            f"{summary.fraction(Outcome.INCONSISTENT_STATE) * 100:>9.1f}% "
            f"{summary.fraction(Outcome.SILENT_FAILURE) * 100:>7.1f}%"
        )
    return "\n".join(lines)


def _format_convergence(analysis: StreamAnalysis) -> str:
    outcome = analysis.convergence.outcome
    title = f"convergence of '{outcome.value}'"
    lines = [title, "-" * len(title),
             f"{'n':>8} {'fraction':>9}   95% CI"]
    for n, fraction, low, high in analysis.convergence_points():
        lines.append(
            f"{n:>8} {fraction * 100:>8.1f}%  [{low * 100:5.1f}, {high * 100:5.1f}]"
        )
    return "\n".join(lines)


def format_analysis(analysis: StreamAnalysis, *, title: str = "") -> str:
    """Render a :class:`StreamAnalysis` as the ``repro analyze`` text report.

    With no grouping and no convergence curve this is exactly
    :func:`format_distribution` of the overall distribution — byte-identical
    to what ``repro report`` renders for the same records.
    """
    parts = [format_distribution(analysis.analyzer.distribution(), title=title)]
    if analysis.grouped is not None:
        parts.append("")
        parts.append(format_comparison(
            analysis.grouped.distributions(),
            title=f"grouped by {analysis.grouped.key}",
        ))
    if analysis.convergence is not None:
        parts.append("")
        parts.append(_format_convergence(analysis))
    return "\n".join(parts)


def format_campaign_comparison(
        analyses: "Mapping[str, StreamingAnalyzer]", *,
        paper_reference: Optional[Mapping[str, float]] = None,
        title: str = "campaign comparison") -> str:
    """Render the ``repro compare`` side-by-side of several campaigns.

    Campaigns appear in insertion order; per-outcome deltas are relative to
    the first one, and ``paper_reference`` (the Figure-3 shares) is printed
    underneath for context.
    """
    names = list(analyses)
    groups = {name: analyses[name].distribution() for name in names}
    lines = [format_comparison(groups, title=title, sort_keys=False)]
    if len(names) > 1:
        lines.append("")
        delta_title = (f"per-outcome delta vs {names[0]} "
                       f"(percentage points)")
        lines.append(delta_title)
        lines.append("-" * len(delta_title))
        lines.append(
            f"{'campaign':<32} {'correct':>9} {'panic':>9} {'cpu park':>9} "
            f"{'invalid':>9} {'inconsist':>10} {'silent':>8}"
        )
        baseline = groups[names[0]]
        for name in names[1:]:
            deltas = outcome_deltas(baseline, groups[name])
            lines.append(
                f"{name:<32} "
                f"{deltas[Outcome.CORRECT.value] * 100:>+9.1f} "
                f"{deltas[Outcome.PANIC_PARK.value] * 100:>+9.1f} "
                f"{deltas[Outcome.CPU_PARK.value] * 100:>+9.1f} "
                f"{deltas[Outcome.INVALID_ARGUMENTS.value] * 100:>+9.1f} "
                f"{deltas[Outcome.INCONSISTENT_STATE.value] * 100:>+10.1f} "
                f"{deltas[Outcome.SILENT_FAILURE.value] * 100:>+8.1f}"
            )
    if paper_reference:
        lines.append("")
        reference = ", ".join(
            f"{category} {fraction * 100:.1f}%"
            for category, fraction in paper_reference.items()
        )
        lines.append(
            f"paper Figure-3 reference (Cinque et al., DSN 2022): {reference}")
    return "\n".join(lines)


def _markdown_outcome_table(analyzer: StreamingAnalyzer) -> List[str]:
    distribution = analyzer.distribution()
    lines = ["| outcome | count | share | 95% CI |",
             "| --- | ---: | ---: | --- |"]
    for outcome in Outcome:
        share = distribution.shares.get(outcome)
        if share is None or (share.count == 0 and outcome is not Outcome.CORRECT):
            continue
        lines.append(
            f"| {outcome.value} | {share.count} | {share.fraction * 100:.1f}% "
            f"| [{share.ci_low * 100:.1f}%, {share.ci_high * 100:.1f}%] |"
        )
    return lines


def format_analysis_markdown(analysis: StreamAnalysis) -> str:
    """Render a :class:`StreamAnalysis` as a Markdown document."""
    analyzer = analysis.analyzer
    management = analyzer.management_summary()
    source = f" — `{analysis.source}`" if analysis.source else ""
    lines = [
        f"# Campaign analysis{source}",
        "",
        f"{analyzer.total} experiments, "
        f"mean {analyzer.mean_injections():.1f} injections/test.",
        "",
        "## Outcomes",
        "",
    ]
    lines.extend(_markdown_outcome_table(analyzer))
    lines.extend([
        "",
        "## Availability",
        "",
        "| category | share |",
        "| --- | ---: |",
    ])
    for category, fraction in analyzer.availability().items():
        lines.append(f"| {category} | {fraction * 100:.1f}% |")
    lines.extend([
        "",
        "## Cell management",
        "",
        f"- create attempts: {management.create_attempts}",
        f"- rejected (cell not allocated): {management.create_rejections} "
        f"({management.rejection_rate * 100:.1f}% of attempts)",
        f"- inconsistent states: {management.inconsistent_states}",
        f"- whole-system panics: {management.panics}",
    ])
    register_classes = analyzer.register_class_totals()
    if register_classes:
        lines.extend(["", "## Register-class corruptions", "",
                      "| class | corruptions |", "| --- | ---: |"])
        for register_class, count in sorted(register_classes.items()):
            lines.append(f"| {register_class} | {count} |")
    if analysis.grouped is not None:
        lines.extend(["", f"## Grouped by `{analysis.grouped.key}`", "",
                      "| group | N | correct | panic | cpu park | other |",
                      "| --- | ---: | ---: | ---: | ---: | ---: |"])
        for group in sorted(analysis.grouped.groups):
            group_analyzer = analysis.grouped.groups[group]
            availability = group_analyzer.availability()
            lines.append(
                f"| {group} | {group_analyzer.total} "
                f"| {availability['correct'] * 100:.1f}% "
                f"| {availability['panic_park'] * 100:.1f}% "
                f"| {availability['cpu_park'] * 100:.1f}% "
                f"| {availability['other'] * 100:.1f}% |"
            )
    if analysis.convergence is not None:
        lines.extend(["",
                      f"## Convergence of `{analysis.convergence.outcome.value}`",
                      "", "| n | fraction | 95% CI |", "| ---: | ---: | --- |"])
        for n, fraction, low, high in analysis.convergence_points():
            lines.append(
                f"| {n} | {fraction * 100:.1f}% "
                f"| [{low * 100:.1f}%, {high * 100:.1f}%] |"
            )
    return "\n".join(lines)


def format_campaign_summary(result: CampaignResult) -> str:
    """One-page summary of a campaign (used by the examples)."""
    records = result.to_records()
    distribution = outcome_distribution(records)
    lines = [
        f"Campaign: {result.plan_name}",
        f"experiments: {len(result)}   total injections: {result.total_injections()}",
        f"failure rate: {result.failure_rate() * 100:.1f}%",
    ]
    if result.golden is not None:
        golden = result.golden
        lines.append(
            f"golden run: outcome={golden.outcome.value} "
            f"handler calls={golden.handler_calls}"
        )
    lines.append("")
    lines.append(format_distribution(distribution, title="outcomes"))
    return "\n".join(lines)
