"""Human-readable campaign reports.

Renders the quantities the paper reports as plain-text tables and ASCII bar
charts: the Figure-3 availability breakdown, the high-intensity management
findings, and side-by-side comparisons for the ablation benches. All output is
deterministic text so benchmarks can simply print it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.core.analysis import (
    DistributionSummary,
    availability_breakdown,
    management_summary,
    mean_injections_per_test,
    outcome_distribution,
)
from repro.core.campaign import CampaignResult
from repro.core.outcomes import Outcome
from repro.core.recording import ExperimentRecord

BAR_WIDTH = 40


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def format_distribution(summary: DistributionSummary, *, title: str = "") -> str:
    """Render an outcome distribution as an ASCII bar chart."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"experiments: {summary.total}")
    for outcome in Outcome:
        share = summary.shares.get(outcome)
        if share is None or (share.count == 0 and outcome is not Outcome.CORRECT):
            continue
        lines.append(
            f"{outcome.value:<20} {share.count:>5}  {share.fraction * 100:6.1f}%  "
            f"[{share.ci_low * 100:5.1f}, {share.ci_high * 100:5.1f}]  "
            f"|{_bar(share.fraction)}|"
        )
    return "\n".join(lines)


def format_figure3(records: Sequence[ExperimentRecord], *,
                   paper_reference: Optional[Mapping[str, float]] = None) -> str:
    """Render the Figure-3 availability chart (non-root cell, medium intensity).

    ``paper_reference`` maps category name to the fraction reported by the
    paper so the bench output shows reproduced-vs-paper side by side.
    """
    breakdown = availability_breakdown(records)
    reference = paper_reference or {}
    lines = [
        "Non-root cell availability in medium intensity tests (Figure 3)",
        "----------------------------------------------------------------",
        f"tests: {len(records)}   mean injections/test: "
        f"{mean_injections_per_test(records):.1f}",
        "",
        f"{'category':<14} {'measured':>9} {'paper':>9}   chart",
    ]
    for category in ("correct", "panic_park", "cpu_park", "other"):
        measured = breakdown.get(category, 0.0)
        paper_value = reference.get(category)
        paper_text = f"{paper_value * 100:8.1f}%" if paper_value is not None else "      n/a"
        lines.append(
            f"{category:<14} {measured * 100:8.1f}% {paper_text}   |{_bar(measured)}|"
        )
    return "\n".join(lines)


def format_management_report(records: Sequence[ExperimentRecord], *,
                             title: str) -> str:
    """Render the high-intensity findings (invalid arguments / inconsistent state)."""
    summary = management_summary(records)
    distribution = outcome_distribution(records)
    lines = [
        title,
        "-" * len(title),
        f"tests: {summary.total}",
        f"cell-create attempts: {summary.create_attempts}",
        f"  rejected (cell not allocated): {summary.create_rejections} "
        f"({summary.rejection_rate * 100:.1f}% of attempts)",
        f"  rejected creates that still allocated a cell: "
        f"{summary.create_rejections - summary.rejected_and_not_allocated}",
        f"inconsistent states (running but silent): {summary.inconsistent_states}",
        f"whole-system panics: {summary.panics}",
        "",
        format_distribution(distribution, title="outcome distribution"),
    ]
    return "\n".join(lines)


def format_comparison(groups: Mapping[str, DistributionSummary], *,
                      title: str, sort_keys: bool = True) -> str:
    """Render a per-group outcome comparison (ablation benches)."""
    lines = [title, "=" * len(title)]
    header = (
        f"{'group':<32} {'N':>5} {'correct':>9} {'panic':>9} {'cpu park':>9} "
        f"{'invalid':>9} {'inconsist':>10} {'silent':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    keys = sorted(groups) if sort_keys else list(groups)
    for key in keys:
        summary = groups[key]
        lines.append(
            f"{key:<32} {summary.total:>5} "
            f"{summary.fraction(Outcome.CORRECT) * 100:>8.1f}% "
            f"{summary.fraction(Outcome.PANIC_PARK) * 100:>8.1f}% "
            f"{summary.fraction(Outcome.CPU_PARK) * 100:>8.1f}% "
            f"{summary.fraction(Outcome.INVALID_ARGUMENTS) * 100:>8.1f}% "
            f"{summary.fraction(Outcome.INCONSISTENT_STATE) * 100:>9.1f}% "
            f"{summary.fraction(Outcome.SILENT_FAILURE) * 100:>7.1f}%"
        )
    return "\n".join(lines)


def format_campaign_summary(result: CampaignResult) -> str:
    """One-page summary of a campaign (used by the examples)."""
    records = result.to_records()
    distribution = outcome_distribution(records)
    lines = [
        f"Campaign: {result.plan_name}",
        f"experiments: {len(result)}   total injections: {result.total_injections()}",
        f"failure rate: {result.failure_rate() * 100:.1f}%",
    ]
    if result.golden is not None:
        golden = result.golden
        lines.append(
            f"golden run: outcome={golden.outcome.value} "
            f"handler calls={golden.handler_calls}"
        )
    lines.append("")
    lines.append(format_distribution(distribution, title="outcomes"))
    return "\n".join(lines)
