"""Single fault-injection experiments.

An *experiment* is one entry of the paper's test plan: bring the system under
test up, arm one injector (target + trigger + fault model), exercise the
workload for the test duration, collect the serial log and hypervisor events,
and classify the outcome. Three scenarios cover the paper's evaluation:

* ``STEADY_STATE`` — the Figure-3 setup: the mixed-criticality deployment is
  brought up fault-free, then faults are injected while the workload runs.
* ``LIFECYCLE_UNDER_FAULT`` — the high-intensity setup: the injector is armed
  *before* the non-root cell is created, so the cell-management path itself
  (hypercalls on the root CPU, hotplug swap on the target CPU) is exposed.
* ``PARK_AND_RECOVER`` — the isolation check: provoke a CPU park, then verify
  that destroying the cell returns its resources to the root cell.
"""

from __future__ import annotations

import enum
import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.faultmodels import FaultModel, RegisterClassBitFlip, SingleBitFlip
from repro.core.injection import FaultInjector
from repro.core.outcomes import (
    ClassifiedOutcome,
    ManagementEvidence,
    Outcome,
    OutcomeClassifier,
    OutcomeEvidence,
)
from repro.core.registry import SCENARIOS
from repro.core.sut import JailhouseSUT, SutConfig, SystemUnderTest
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls, Trigger
from repro.errors import CampaignError
from repro.hw.registers import RegisterClass

#: Default per-test duration used by the paper ("each test lasts 1 min.").
PAPER_TEST_DURATION = 60.0


def _component_state(component: object) -> str:
    """Deterministic textual state of a target/trigger/fault-model.

    ``describe()`` strings are for humans and lossy (e.g. two
    ``MultiRegisterBitFlip`` counts share one name), so spec identity hashes
    the component's public attributes instead. Enums collapse to their
    values, sets are sorted, and nested objects (custom trigger/fault-model
    helpers) recurse into *their* public state — never the default ``repr``,
    whose memory address would change every process and silently defeat
    resume.
    """
    def normalize(value):
        if isinstance(value, enum.Enum):
            return value.value
        if isinstance(value, (set, frozenset)):
            return sorted(normalize(entry) for entry in value)
        if isinstance(value, (list, tuple)):
            return [normalize(entry) for entry in value]
        if isinstance(value, dict):
            return {key: normalize(entry)
                    for key, entry in sorted(value.items())}
        if value is None or isinstance(value, (bool, int, float, str, bytes)):
            return value
        return _component_state(value)

    try:
        attributes = vars(component)
    except TypeError:                       # __slots__ or builtin: no state
        return type(component).__name__
    state = {
        key: normalize(value)
        for key, value in sorted(attributes.items())
        if not key.startswith("_")
    }
    return f"{type(component).__name__}:{state!r}"


class Scenario(enum.Enum):
    """Which phase of the system's life the faults are injected into."""

    STEADY_STATE = "steady_state"
    LIFECYCLE_UNDER_FAULT = "lifecycle_under_fault"
    REPEATED_LIFECYCLE = "repeated_lifecycle"
    PARK_AND_RECOVER = "park_and_recover"


# Config files and the CLI select scenarios by key; each enum value string is
# accepted as an alias so saved records (which store the value) round-trip.
SCENARIOS.add_value(
    "steady-state", Scenario.STEADY_STATE,
    aliases=(Scenario.STEADY_STATE.value,),
    description="Figure-3 setup: bring the deployment up fault-free, then "
                "inject while the workload runs.")
SCENARIOS.add_value(
    "lifecycle", Scenario.LIFECYCLE_UNDER_FAULT,
    aliases=(Scenario.LIFECYCLE_UNDER_FAULT.value,),
    description="arm the injector before the non-root cell is created, "
                "exposing the cell-management path.")
SCENARIOS.add_value(
    "repeated-lifecycle", Scenario.REPEATED_LIFECYCLE,
    aliases=(Scenario.REPEATED_LIFECYCLE.value,),
    description="cycle cell create/start/destroy under injection for the "
                "whole test.")
SCENARIOS.add_value(
    "park-and-recover", Scenario.PARK_AND_RECOVER,
    aliases=(Scenario.PARK_AND_RECOVER.value,),
    description="provoke a CPU park, destroy the cell, verify its resources "
                "return to the root cell.")


@dataclass
class ExperimentSpec:
    """Everything needed to run (and re-run) one experiment."""

    name: str
    target: InjectionTarget
    trigger: Trigger
    fault_model: FaultModel
    scenario: Scenario = Scenario.STEADY_STATE
    duration: float = PAPER_TEST_DURATION
    settle_time: float = 1.0
    warmup_time: float = 1.0
    observe_time: float = 10.0
    seed: int = 0
    intensity: str = "custom"
    #: Opt this spec out of SUT snapshot/reset pooling: the engine then
    #: builds a brand-new system under test for it even when the campaign
    #: runs with pooling enabled. Not part of the spec identity.
    cold_boot: bool = False

    def describe(self) -> str:
        return (
            f"{self.name}: {self.fault_model.describe()} -> "
            f"{self.target.describe()} ({self.trigger.describe()}), "
            f"{self.scenario.value}, {self.duration:.0f}s, seed {self.seed}"
        )

    def identity(self) -> str:
        """Stable identity of this spec (name + seed + scenario/setup hash).

        The engine's checkpoint layer keys completed work on this value, so a
        resumed campaign only skips a spec when the experiment it would run is
        the same one that produced the stored record. Two specs that share a
        name but differ in seed, scenario, target, trigger, fault model, or
        any timing parameter therefore get distinct identities.
        """
        payload = "|".join((
            self.name,
            str(self.seed),
            self.scenario.value,
            _component_state(self.target),
            _component_state(self.trigger),
            _component_state(self.fault_model),
            f"{self.duration:g}",
            f"{self.settle_time:g}",
            f"{self.warmup_time:g}",
            f"{self.observe_time:g}",
            self.intensity,
        ))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def prefix_key(self, *, sut: str = "") -> str:
        """Stable identity of this spec's *pre-injection prefix*.

        Two specs hash identically exactly when they execute the same golden
        bring-up before the injector is armed — same scenario, same system
        under test (``sut`` is the engine-supplied factory token), same seed
        (the guest RNG streams diverge per seed from the first boot draw),
        and the same prefix timing. Only the phases executed *before* arming
        matter: steady-state and park-and-recover settle for ``settle_time``
        after the fault-free bring-up, while the lifecycle scenarios arm
        immediately after :meth:`~repro.core.sut.SystemUnderTest.setup` —
        so specs that differ only in target, trigger, fault model, duration,
        or post-arm timing share one prefix and can fork from one snapshot.

        Triggers normally contribute nothing (call-count triggers observe
        only post-arm calls); a trigger whose
        :meth:`~repro.core.triggers.Trigger.prefix_component` returns a
        fast-forwardable coordinate splits families on it.
        """
        # The two lifecycle scenarios execute the identical prefix (the bare
        # boot), so they share one family; steady-state and park-and-recover
        # stay separate — their bring-ups run the same operations but enforce
        # different golden-run validations.
        if self.scenario in (Scenario.LIFECYCLE_UNDER_FAULT,
                             Scenario.REPEATED_LIFECYCLE):
            prefix_class = "post-setup"
        else:
            prefix_class = self.scenario.value
        parts = [prefix_class, str(self.seed), sut]
        if self.scenario in (Scenario.STEADY_STATE, Scenario.PARK_AND_RECOVER):
            parts.append(f"settle={self.settle_time:g}")
        component = None
        prefix_component = getattr(self.trigger, "prefix_component", None)
        if prefix_component is not None:
            component = prefix_component()
        if component is not None:
            parts.append(f"trigger={component}")
        payload = "|".join(parts)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class ExperimentResult:
    """Outcome and bookkeeping of one experiment."""

    spec_name: str
    outcome: Outcome
    rationale: str
    injections: int
    duration: float
    seed: int
    scenario: str
    target: str
    fault_model: str
    intensity: str
    register_class_counts: Dict[str, int] = field(default_factory=dict)
    management: Optional[ManagementEvidence] = None
    target_cell_lines: int = 0
    root_cell_lines: int = 0
    extras: Dict[str, object] = field(default_factory=dict)
    wall_time: float = 0.0
    #: How the engine's prefix fast-forward cache served this experiment:
    #: ``True`` = forked from a cached pre-injection snapshot, ``False`` =
    #: this run executed (and cached) its family's prefix, ``None`` = the
    #: cache was off or bypassed. Execution bookkeeping only — deliberately
    #: excluded from :class:`~repro.core.recording.ExperimentRecord`, so
    #: cached and cold campaigns stay record-for-record identical.
    prefix_cache_hit: Optional[bool] = None
    #: Wall-clock seconds spent reaching the injection point — the golden
    #: bring-up on a cold run, or the snapshot fork on a prefix-cache hit.
    #: The post-injection time is ``wall_time - prefix_wall_time``. Like
    #: :attr:`prefix_cache_hit`, execution bookkeeping only: excluded from
    #: records so instrumented and bare campaigns persist identical data.
    prefix_wall_time: Optional[float] = None
    #: OS pid of the worker process that executed this experiment (the
    #: parent's own pid for in-process runs); ``None`` for restored records.
    #: Telemetry uses it for per-worker utilization. Not persisted.
    worker_id: Optional[int] = None
    #: Batched-lockstep bookkeeping (``None``/``False`` when the experiment
    #: ran scalar): the id of the batch this lane belonged to, how many lanes
    #: that batch stepped together, whether this lane was evicted to the
    #: scalar path mid-batch (its injector fired), and at which shared step.
    #: Like the prefix-cache fields, execution bookkeeping only — excluded
    #: from records so batched campaigns persist byte-identical data.
    batch_id: Optional[str] = None
    batch_lanes: Optional[int] = None
    batch_evicted: bool = False
    batch_eviction_step: Optional[int] = None

    @property
    def failed(self) -> bool:
        return self.outcome.is_failure


#: Factory building a fresh system under test for a given seed.
SutFactory = Callable[[int], SystemUnderTest]


def default_sut_factory(seed: int) -> SystemUnderTest:
    """Build the paper's Jailhouse deployment."""
    return JailhouseSUT(SutConfig(seed=seed))


class Experiment:
    """Runs one :class:`ExperimentSpec` against a fresh system under test."""

    def __init__(self, spec: ExperimentSpec,
                 sut_factory: SutFactory = default_sut_factory,
                 classifier: Optional[OutcomeClassifier] = None) -> None:
        self.spec = spec
        self.sut_factory = sut_factory
        self.classifier = classifier or OutcomeClassifier()

    def run(self) -> ExperimentResult:
        """Run the full experiment on a fresh system under test.

        Composes :meth:`run_prefix` (golden bring-up to the injection point)
        and :meth:`run_from_snapshot` (arm, inject, classify), which is
        exactly what the engine's prefix fast-forward path executes — the two
        paths share every line, so cached campaigns are bit-identical to
        cold ones by construction.
        """
        started = time.perf_counter()
        sut = self.sut_factory(self.spec.seed)
        try:
            self.run_prefix(sut)
            prefix_elapsed = time.perf_counter() - started
            result = self.run_from_snapshot(sut, wall_start=started)
            result.prefix_wall_time = prefix_elapsed
            return result
        finally:
            sut.teardown()

    # -- prefix: golden bring-up to the injection point -----------------------------------

    def run_prefix(self, sut: SystemUnderTest) -> None:
        """Execute the pre-injection prefix: everything before arming.

        No injector is installed during the prefix, so the resulting SUT
        state is shared by every spec with the same
        :meth:`ExperimentSpec.prefix_key` — the engine snapshots it once per
        prefix family and forks each fault variant from the snapshot. The
        steady-state and park-and-recover scenarios bring the deployment up
        fault-free and settle; the lifecycle scenarios stop right after
        :meth:`~repro.core.sut.SystemUnderTest.setup`, because exposing the
        cell-management path to faults *is* their experiment.
        """
        spec = self.spec
        scenario = spec.scenario
        sut.setup()
        if scenario is Scenario.STEADY_STATE:
            management = sut.perform_cell_lifecycle()
            if not (management.create_succeeded and management.start_succeeded):
                raise CampaignError(
                    "golden bring-up failed before injection; the system under "
                    "test is misconfigured"
                )
            sut.run(spec.settle_time)
            pre_check = sut.evidence(0.0, sut.now)
            if pre_check.observation.panicked or pre_check.observation.inconsistent_cells:
                raise CampaignError(
                    "golden bring-up left the system panicked or inconsistent "
                    "before any fault was injected; the system under test is "
                    "misconfigured"
                )
        elif scenario is Scenario.PARK_AND_RECOVER:
            management = sut.perform_cell_lifecycle()
            if not management.start_succeeded:
                raise CampaignError("golden bring-up failed before injection")
            sut.run(spec.settle_time)
        elif scenario in (Scenario.LIFECYCLE_UNDER_FAULT,
                          Scenario.REPEATED_LIFECYCLE):
            pass
        else:  # pragma: no cover - exhaustive enum
            raise CampaignError(f"unknown scenario {spec.scenario}")

    # -- suffix: arm, inject, classify ----------------------------------------------------

    def run_from_snapshot(self, sut: SystemUnderTest, *,
                          wall_start: Optional[float] = None) -> ExperimentResult:
        """Run the injection suffix on a SUT already at the post-prefix state.

        ``sut`` must be positioned exactly where :meth:`run_prefix` leaves it
        — either because the prefix just ran, or because the engine restored
        a prefix snapshot via ``fork_from_snapshot``. Builds and installs the
        injector (fresh RNG seeded from the spec, so the suffix draw order is
        independent of how the prefix state was reached), runs the scenario's
        injection window, and classifies the outcome. The caller owns the
        SUT's lifecycle: ``sut.teardown()`` (which uninstalls the injector)
        is *not* called here.
        """
        started = wall_start if wall_start is not None else time.perf_counter()
        spec = self.spec
        injector = self.build_injector()
        sut.install_injector(injector)
        if spec.scenario is Scenario.STEADY_STATE:
            evidence, extras = self._suffix_steady_state(sut, injector)
        elif spec.scenario is Scenario.LIFECYCLE_UNDER_FAULT:
            evidence, extras = self._suffix_lifecycle_under_fault(sut, injector)
        elif spec.scenario is Scenario.REPEATED_LIFECYCLE:
            evidence, extras = self._suffix_repeated_lifecycle(sut, injector)
        elif spec.scenario is Scenario.PARK_AND_RECOVER:
            evidence, extras = self._suffix_park_and_recover(sut, injector)
        else:  # pragma: no cover - exhaustive enum
            raise CampaignError(f"unknown scenario {spec.scenario}")
        classified = self.classifier.classify(evidence)
        return self._build_result(classified, evidence, injector, extras,
                                  time.perf_counter() - started)

    def build_injector(self) -> FaultInjector:
        """Build (and reset) this spec's injector, exactly as a scalar run does.

        Shared with the batched lockstep core
        (:mod:`repro.engine.batch`), which builds one injector per lane from
        the same constructor arguments — the RNG is seeded from the spec, so
        a lane's trigger/fault draws are independent of how (or with whom)
        its simulated state is advanced.
        """
        spec = self.spec
        injector = FaultInjector(
            target=spec.target,
            trigger=spec.trigger,
            fault_model=spec.fault_model,
            seed=spec.seed,
        )
        injector.reset()
        return injector

    def finalize_steady_state(self, sut: SystemUnderTest,
                              injector: FaultInjector,
                              window_start: float, *,
                              wall_start: float) -> ExperimentResult:
        """Classify a finished steady-state injection window into a result.

        The tail of :meth:`_suffix_steady_state` + :meth:`run_from_snapshot`
        factored out so the batched lockstep core can finalize a lane from
        the shared (or replayed) simulated state: evidence over the window,
        a clean management record (the bring-up was fault-free), classify,
        assemble. ``sut`` must be positioned at the end of the lane's
        injection window and ``injector`` must be the lane's own (disarmed)
        injector.
        """
        evidence = sut.evidence(window_start, sut.now)
        evidence.management = ManagementEvidence()   # bring-up was fault-free
        classified = self.classifier.classify(evidence)
        return self._build_result(classified, evidence, injector, {},
                                  time.perf_counter() - wall_start)

    # -- scenario suffixes ----------------------------------------------------------------

    def _suffix_steady_state(self, sut: SystemUnderTest,
                             injector: FaultInjector):
        spec = self.spec
        window_start = sut.now
        injector.arm()
        sut.run(spec.duration)
        injector.disarm()
        window_end = sut.now
        evidence = sut.evidence(window_start, window_end)
        evidence.management = ManagementEvidence()   # bring-up was fault-free
        return evidence, {}

    def _suffix_lifecycle_under_fault(self, sut: SystemUnderTest,
                                      injector: FaultInjector):
        spec = self.spec
        injector.arm()
        window_start = sut.now
        sut.run(spec.warmup_time)
        management = sut.perform_cell_lifecycle()
        sut.run(spec.observe_time)
        injector.disarm()
        window_end = sut.now
        evidence = sut.evidence(window_start, window_end)
        evidence.management = management
        extras = {
            "create_succeeded": management.create_succeeded,
            "start_succeeded": management.start_succeeded,
        }
        return evidence, extras

    def _suffix_repeated_lifecycle(self, sut: SystemUnderTest,
                                   injector: FaultInjector):
        """Repeatedly create/start/destroy the non-root cell under injection.

        A single management operation is only a handful of handler calls, so a
        rate-based trigger rarely lands exactly on it; cycling the cell for
        the whole test duration exposes the management path statistically, the
        way the paper's one-minute high-intensity tests do.
        """
        spec = self.spec
        injector.arm()
        window_start = sut.now
        sut.run(spec.warmup_time)
        aggregate = ManagementEvidence()
        dwell = max(spec.observe_time / 10.0, 1.0)
        attempts = 0
        while sut.now - window_start < spec.duration:
            if sut.evidence(window_start, sut.now).observation.panicked:
                break
            if sut.inmate_cell_exists():
                # A previous destroy was itself hit by a fault; retry so the
                # next create attempt starts from a clean slate.
                sut.destroy_inmate_cell()
            pre_existing = sut.inmate_cell_exists()
            attempt = sut.perform_cell_lifecycle()
            aggregate.merge_attempt(attempt)
            attempts += 1
            if (not attempt.create_succeeded and not pre_existing
                    and sut.inmate_cell_exists()):
                # A rejected create must never leave a cell allocated; this is
                # the safety property behind the paper's expected behaviour.
                aggregate.wrongly_allocated += 1
            sut.run(dwell)
            interim = sut.evidence(window_start, sut.now)
            if interim.observation.panicked:
                break
            if attempt.start_succeeded and interim.observation.cpu_online_failures:
                aggregate.inconsistent_starts += 1
            if attempt.create_succeeded:
                sut.destroy_inmate_cell()
            sut.run(0.2)
        injector.disarm()
        window_end = sut.now
        evidence = sut.evidence(window_start, window_end)
        evidence.management = aggregate
        extras = {
            "lifecycle_attempts": attempts,
            "create_attempts": aggregate.create_attempts,
            "create_rejections": aggregate.create_rejections,
            "start_attempts": aggregate.start_attempts,
            "start_rejections": aggregate.start_rejections,
            "wrongly_allocated": aggregate.wrongly_allocated,
            "inconsistent_starts": aggregate.inconsistent_starts,
        }
        return evidence, extras

    def _suffix_park_and_recover(self, sut: SystemUnderTest,
                                 injector: FaultInjector):
        spec = self.spec
        window_start = sut.now
        injector.arm()
        # Run in slices until a CPU park (or panic) shows up, or time runs out.
        slice_duration = max(spec.duration / 20.0, 0.5)
        elapsed = 0.0
        parked = False
        interim = None
        while elapsed < spec.duration:
            sut.run(slice_duration)
            elapsed += slice_duration
            interim = sut.evidence(window_start, sut.now)
            if interim.observation.panicked:
                break
            if interim.observation.parked_cpus:
                parked = True
                break
        injector.disarm()
        recovery_ok = False
        root_alive_after = False
        if parked:
            recovery_ok = sut.destroy_inmate_cell()
            sut.run(2.0)
            after = sut.evidence(window_start, sut.now)
            root_report = after.availability.get(after.root_cell or "", None)
            root_alive_after = (
                not after.observation.panicked
                and root_report is not None and root_report.lines > 0
            )
        window_end = sut.now
        # Classify against the state observed *at the failure*, not after the
        # recovery action (destroying the cell un-parks its CPU by design).
        if parked and interim is not None:
            evidence = interim
        else:
            evidence = sut.evidence(window_start, window_end)
        evidence.management = ManagementEvidence()
        extras = {
            "park_observed": parked,
            "destroy_returned_resources": recovery_ok,
            "root_cell_alive_after_destroy": root_alive_after,
            "isolation_preserved": parked and recovery_ok and root_alive_after,
        }
        return evidence, extras

    # -- result assembly ------------------------------------------------------------------------

    def _build_result(self, classified: ClassifiedOutcome,
                      evidence: OutcomeEvidence, injector: FaultInjector,
                      extras: Dict[str, object],
                      wall_time: float) -> ExperimentResult:
        spec = self.spec
        class_counts: Dict[str, int] = {}
        for fault in injector.faults_applied():
            key = fault.register_class.value
            class_counts[key] = class_counts.get(key, 0) + 1
        target_report = evidence.availability.get(evidence.target_cell or "", None)
        root_report = evidence.availability.get(evidence.root_cell or "", None)
        return ExperimentResult(
            spec_name=spec.name,
            outcome=classified.outcome,
            rationale=classified.rationale,
            injections=injector.injection_count,
            duration=spec.duration,
            seed=spec.seed,
            scenario=spec.scenario.value,
            target=spec.target.describe(),
            fault_model=spec.fault_model.describe(),
            intensity=spec.intensity,
            register_class_counts=class_counts,
            management=evidence.management,
            target_cell_lines=target_report.lines if target_report else 0,
            root_cell_lines=root_report.lines if root_report else 0,
            extras=extras,
            wall_time=wall_time,
        )


def park_provoking_spec(seed: int = 0, *, duration: float = 30.0) -> ExperimentSpec:
    """A spec biased toward producing the CPU-park outcome quickly (E4)."""
    return ExperimentSpec(
        name="park-and-recover",
        target=InjectionTarget.nonroot_cpu_trap(),
        trigger=EveryNCalls(10),
        fault_model=RegisterClassBitFlip(RegisterClass.STACK_POINTER),
        scenario=Scenario.PARK_AND_RECOVER,
        duration=duration,
        seed=seed,
        intensity="targeted",
    )
