"""Declarative campaign configuration.

A :class:`CampaignConfig` describes a fault-injection campaign as *data*: a
name, per-test timing, and one or more candidates per experiment axis —
injection target, trigger, fault model, scenario — each named by its
:mod:`~repro.core.registry` key plus parameters. :meth:`CampaignConfig.compile`
turns that description into a concrete :class:`~repro.core.plan.TestPlan`,
either as the full cross-product of the axes (*grid* sampling) or as a
seeded-random sample of it, so new campaigns compose from registered parts
instead of new Python builder functions.

Configs load from TOML or JSON files (:func:`load_campaign_config`) and from
plain dicts (:meth:`CampaignConfig.from_dict`)::

    [campaign]
    name = "fig3-medium-nonroot-trap"
    tests = 40
    duration = 60.0
    intensity = "medium"          # shorthand: derives trigger + fault model
    scenario = "steady-state"
    sut = "jailhouse"

    [[target]]
    kind = "nonroot-trap"

Compilation is deterministic: the same config always yields specs with the
same :meth:`~repro.core.experiment.ExperimentSpec.identity` values (random
sampling draws from a generator seeded with ``sample_seed``), so engine
checkpoints written under one front-end are resumable under another. The
paper's hand-written plans are available as catalog entries
(:func:`catalog_config`) expressed through this same compile path, with
identities byte-identical to the historical builders in
:mod:`repro.core.plan`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.experiment import ExperimentSpec, PAPER_TEST_DURATION
from repro.core.plan import IntensityLevel, TestPlan
from repro.core.registry import (
    CLASSIFIERS,
    FAULT_MODELS,
    RegistrySutFactory,
    SCENARIOS,
    TARGETS,
    TRIGGERS,
    suggest_close_matches,
)
from repro.errors import CampaignConfigError

#: Keys accepted in the ``[campaign]`` table (anything else is a typo).
_CAMPAIGN_KEYS = frozenset({
    "name", "description", "tests", "base_seed", "duration", "settle_time",
    "warmup_time", "observe_time", "intensity", "scenario", "sut",
    "classifier", "sampling", "sample_size", "sample_seed",
    "high_intensity_registers", "prefix_cache", "batch", "batch_size",
    "chunk_size", "timeout_s", "retries", "max_worker_restarts",
})
#: Top-level tables/arrays accepted next to ``[campaign]``.
_TOP_LEVEL_KEYS = frozenset({"campaign", "target", "trigger", "fault_model"})


@dataclass(frozen=True)
class PartRef:
    """One registered part: registry ``kind`` key + builder params.

    ``tag`` names the part inside generated spec names when an axis has more
    than one candidate; it defaults to the kind key.
    """

    kind: str
    params: Dict[str, object] = field(default_factory=dict)
    tag: Optional[str] = None

    @property
    def label(self) -> str:
        return self.tag or self.kind

    @classmethod
    def from_value(cls, value, *, axis: str) -> "PartRef":
        if isinstance(value, PartRef):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        if isinstance(value, dict):
            unknown = set(value) - {"kind", "params", "tag"}
            if unknown:
                raise CampaignConfigError(
                    f"{axis} entry has unknown keys {sorted(unknown)}; "
                    f"expected 'kind', 'params', 'tag'"
                )
            if "kind" not in value:
                raise CampaignConfigError(f"{axis} entry needs a 'kind' key")
            params = value.get("params", {})
            if not isinstance(params, dict):
                raise CampaignConfigError(
                    f"{axis} params must be a table/object, got {type(params).__name__}"
                )
            return cls(kind=value["kind"], params=dict(params),
                       tag=value.get("tag"))
        raise CampaignConfigError(
            f"{axis} entry must be a registry key string or a table with "
            f"'kind'/'params', got {type(value).__name__}"
        )


def _part_list(raw, *, axis: str) -> List[PartRef]:
    if raw is None:
        return []
    entries = raw if isinstance(raw, list) else [raw]
    parts = [PartRef.from_value(entry, axis=axis) for entry in entries]
    labels = [part.label for part in parts]
    duplicates = sorted({label for label in labels if labels.count(label) > 1})
    if duplicates:
        raise CampaignConfigError(
            f"{axis} axis has duplicate labels {duplicates}; give entries "
            f"that share a kind distinct 'tag' values"
        )
    return parts


@dataclass
class CampaignConfig:
    """A campaign described by registered parts, compilable to a TestPlan."""

    name: str
    targets: List[PartRef]
    triggers: List[PartRef] = field(default_factory=list)
    fault_models: List[PartRef] = field(default_factory=list)
    scenarios: List[str] = field(default_factory=lambda: ["steady-state"])
    sut: PartRef = field(default_factory=lambda: PartRef("jailhouse"))
    classifier: PartRef = field(default_factory=lambda: PartRef("default"))
    description: str = ""
    #: Seeds per grid combination (grid) / number of draws (random sampling).
    tests: int = 1
    base_seed: int = 0
    duration: float = PAPER_TEST_DURATION
    settle_time: float = 1.0
    warmup_time: float = 1.0
    observe_time: float = 10.0
    #: ``"medium"``/``"high"`` derive trigger + fault model from the paper's
    #: intensity levels when those axes are omitted; any other string is just
    #: the label stamped on the specs (default ``"custom"``).
    intensity: Optional[str] = None
    high_intensity_registers: int = 4
    sampling: str = "grid"
    sample_size: Optional[int] = None
    sample_seed: int = 0
    #: Prefix fast-forward: execute each distinct pre-injection prefix once
    #: and fork all fault variants from its snapshot (records identical to
    #: cold execution). The CLI's ``--prefix-cache/--no-prefix-cache``
    #: overrides this.
    prefix_cache: bool = False
    #: Batched lockstep core: step all fault variants of a prefix family
    #: through one shared simulation until their injectors fire (implies
    #: ``prefix_cache``; records identical to scalar execution).
    #: ``batch_size`` caps the lanes per batch (``None`` = engine default).
    #: The CLI's ``--batch/--no-batch`` and ``--batch-size`` override these.
    batch: bool = False
    batch_size: Optional[int] = None
    #: Pool-task granularity: a positive int, ``"auto"``, or ``None`` for the
    #: engine default of one experiment per task. The CLI's ``--chunk-size``
    #: overrides this.
    chunk_size: Optional[object] = None
    #: Supervision defaults (the CLI's ``--timeout``/``--retries``/
    #: ``--max-worker-restarts`` override these): per-experiment wall-clock
    #: budget in seconds, retry attempts before a crashing/hanging spec is
    #: quarantined, and the campaign-wide worker respawn budget. ``None``
    #: defers to the engine defaults.
    timeout_s: Optional[float] = None
    retries: Optional[int] = None
    max_worker_restarts: Optional[int] = None

    # -- loading --------------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        if not isinstance(data, dict):
            raise CampaignConfigError(
                f"campaign config must be a table/object, got {type(data).__name__}"
            )
        unknown = set(data) - _TOP_LEVEL_KEYS
        if unknown:
            raise CampaignConfigError(
                _unknown_keys_message(unknown, _TOP_LEVEL_KEYS, where="config")
            )
        campaign = data.get("campaign")
        if not isinstance(campaign, dict):
            raise CampaignConfigError("config needs a [campaign] table")
        unknown = set(campaign) - _CAMPAIGN_KEYS
        if unknown:
            raise CampaignConfigError(
                _unknown_keys_message(unknown, _CAMPAIGN_KEYS,
                                      where="[campaign]")
            )
        name = campaign.get("name")
        if not name or not isinstance(name, str):
            raise CampaignConfigError("[campaign] needs a non-empty 'name'")

        targets = _part_list(data.get("target"), axis="target")
        if not targets:
            raise CampaignConfigError(
                "config needs at least one [[target]] (or [target]) entry"
            )
        scenario_raw = campaign.get("scenario", "steady-state")
        scenarios = (scenario_raw if isinstance(scenario_raw, list)
                     else [scenario_raw])
        sut = PartRef.from_value(campaign.get("sut", "jailhouse"), axis="sut")
        classifier = PartRef.from_value(campaign.get("classifier", "default"),
                                        axis="classifier")
        config = cls(
            name=name,
            description=campaign.get("description", ""),
            targets=targets,
            triggers=_part_list(data.get("trigger"), axis="trigger"),
            fault_models=_part_list(data.get("fault_model"), axis="fault_model"),
            scenarios=[str(entry) for entry in scenarios],
            sut=sut,
            classifier=classifier,
            tests=int(campaign.get("tests", 1)),
            base_seed=int(campaign.get("base_seed", 0)),
            duration=float(campaign.get("duration", PAPER_TEST_DURATION)),
            settle_time=float(campaign.get("settle_time", 1.0)),
            warmup_time=float(campaign.get("warmup_time", 1.0)),
            observe_time=float(campaign.get("observe_time", 10.0)),
            intensity=campaign.get("intensity"),
            high_intensity_registers=int(
                campaign.get("high_intensity_registers", 4)),
            sampling=campaign.get("sampling", "grid"),
            sample_size=(int(campaign["sample_size"])
                         if "sample_size" in campaign else None),
            sample_seed=int(campaign.get("sample_seed", 0)),
            prefix_cache=bool(campaign.get("prefix_cache", False)),
            batch=bool(campaign.get("batch", False)),
            batch_size=(int(campaign["batch_size"])
                        if "batch_size" in campaign else None),
            chunk_size=campaign.get("chunk_size"),
            timeout_s=(float(campaign["timeout_s"])
                       if "timeout_s" in campaign else None),
            retries=(int(campaign["retries"])
                     if "retries" in campaign else None),
            max_worker_restarts=(int(campaign["max_worker_restarts"])
                                 if "max_worker_restarts" in campaign
                                 else None),
        )
        config.validate()
        return config

    def to_dict(self) -> dict:
        """The config as the plain dict :meth:`from_dict` accepts.

        This is the fleet wire format: a coordinator serializes a submitted
        campaign with ``to_dict`` and every worker host rebuilds it with
        ``from_dict`` + :meth:`compile` — compilation is deterministic, so
        all hosts agree on every spec's
        :meth:`~repro.core.experiment.ExperimentSpec.identity` without ever
        shipping compiled plans. Round-trip is exact:
        ``CampaignConfig.from_dict(config.to_dict())`` equals ``config``.
        """
        def part(ref: PartRef) -> dict:
            entry: Dict[str, object] = {"kind": ref.kind}
            if ref.params:
                entry["params"] = dict(ref.params)
            if ref.tag is not None:
                entry["tag"] = ref.tag
            return entry

        campaign: Dict[str, object] = {
            "name": self.name,
            "tests": self.tests,
            "base_seed": self.base_seed,
            "duration": self.duration,
            "settle_time": self.settle_time,
            "warmup_time": self.warmup_time,
            "observe_time": self.observe_time,
            "scenario": list(self.scenarios),
            "sut": part(self.sut),
            "classifier": part(self.classifier),
            "sampling": self.sampling,
            "sample_seed": self.sample_seed,
            "high_intensity_registers": self.high_intensity_registers,
            "prefix_cache": self.prefix_cache,
            "batch": self.batch,
        }
        if self.description:
            campaign["description"] = self.description
        if self.intensity is not None:
            campaign["intensity"] = self.intensity
        if self.sample_size is not None:
            campaign["sample_size"] = self.sample_size
        for key in ("batch_size", "chunk_size", "timeout_s", "retries",
                    "max_worker_restarts"):
            value = getattr(self, key)
            if value is not None:
                campaign[key] = value
        data: Dict[str, object] = {
            "campaign": campaign,
            "target": [part(ref) for ref in self.targets],
        }
        if self.triggers:
            data["trigger"] = [part(ref) for ref in self.triggers]
        if self.fault_models:
            data["fault_model"] = [part(ref) for ref in self.fault_models]
        return data

    def validate(self) -> None:
        if self.tests <= 0:
            raise CampaignConfigError("[campaign] tests must be positive")
        if self.sampling not in ("grid", "random"):
            raise CampaignConfigError(
                f"sampling must be 'grid' or 'random', got {self.sampling!r}"
            )
        if self.sampling == "random" and not self.sample_size:
            raise CampaignConfigError(
                "random sampling needs a positive 'sample_size'"
            )
        if not self.scenarios:
            raise CampaignConfigError("config needs at least one scenario")
        # Duplicate scenarios (including an alias spelling of one already
        # listed, e.g. "steady-state" + "steady_state") would silently double
        # every experiment and then trip the plan's duplicate-name check with
        # an opaque PlanError; reject them here with the config vocabulary.
        canonical_scenarios = [SCENARIOS.canonical(key)
                               for key in self.scenarios]
        duplicates = sorted({key for key in canonical_scenarios
                             if canonical_scenarios.count(key) > 1})
        if duplicates:
            raise CampaignConfigError(
                f"scenario list names {duplicates} more than once "
                f"(aliases count as the same scenario)"
            )
        intensity = self._intensity_level()
        if intensity is None and (not self.triggers or not self.fault_models):
            raise CampaignConfigError(
                "config needs [[trigger]] and [[fault_model]] entries, or "
                "intensity = 'medium'/'high' to derive them"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise CampaignConfigError("[campaign] timeout_s must be positive")
        if self.retries is not None and self.retries < 0:
            raise CampaignConfigError(
                "[campaign] retries must be non-negative")
        if self.max_worker_restarts is not None and self.max_worker_restarts < 0:
            raise CampaignConfigError(
                "[campaign] max_worker_restarts must be non-negative")
        if self.batch_size is not None and (
                isinstance(self.batch_size, bool)
                or not isinstance(self.batch_size, int)
                or self.batch_size <= 0):
            raise CampaignConfigError(
                "[campaign] batch_size must be a positive integer")
        if self.chunk_size is not None:
            # Deferred import: core describes campaigns, engine executes
            # them, and the chunk-size rule belongs to the execution layer.
            from repro.engine.scheduler import normalize_chunk_size
            from repro.errors import CampaignError
            try:
                normalize_chunk_size(self.chunk_size)
            except CampaignError as exc:
                raise CampaignConfigError(
                    f"[campaign] chunk_size: {exc}") from None

    # -- compilation ----------------------------------------------------------------

    def _intensity_level(self) -> Optional[IntensityLevel]:
        if self.intensity is None:
            return None
        try:
            return IntensityLevel(self.intensity)
        except ValueError:
            return None

    def _intensity_label(self) -> str:
        return self.intensity if self.intensity is not None else "custom"

    def _trigger_axis(self) -> List[PartRef]:
        if self.triggers:
            return self.triggers
        level = self._intensity_level()
        return [PartRef("every-n-calls", {"n": level.call_interval},
                        tag=f"{level.value}-trigger")]

    def _fault_model_axis(self) -> List[PartRef]:
        if self.fault_models:
            return self.fault_models
        level = self._intensity_level()
        if level is IntensityLevel.MEDIUM:
            return [PartRef("single-bit-flip", tag="medium-fault")]
        return [PartRef(
            "multi-register-bit-flip",
            {"count": self.high_intensity_registers},
            tag="high-fault",
        )]

    def _combinations(self) -> List[Tuple[PartRef, PartRef, PartRef, str]]:
        """The grid: target x trigger x fault model x scenario, in axis order."""
        return [
            (target, trigger, fault_model, scenario)
            for target in self.targets
            for trigger in self._trigger_axis()
            for fault_model in self._fault_model_axis()
            for scenario in self.scenarios
        ]

    def _combo_tag(self, combo, varying: Tuple[bool, bool, bool, bool]) -> str:
        parts = [entry.label if isinstance(entry, PartRef) else str(entry)
                 for entry, varies in zip(combo, varying) if varies]
        return ".".join(parts)

    def compile(self) -> TestPlan:
        """Compile to a :class:`TestPlan` (deterministic for a given config).

        *Grid* sampling emits ``tests`` seeds (``base_seed + i``) for every
        combination of the axes; a single-combination grid reproduces the
        historical builders' ``{name}-{i:04d}`` spec names exactly, so the
        paper catalog keeps its pre-refactor identities. *Random* sampling
        draws ``sample_size`` combinations (with replacement) from the grid
        using a generator seeded with ``sample_seed``.
        """
        self.validate()
        combos = self._combinations()
        varying = (len(self.targets) > 1, len(self._trigger_axis()) > 1,
                   len(self._fault_model_axis()) > 1, len(self.scenarios) > 1)
        plan = TestPlan(name=self.name, description=self.description)
        if self.sampling == "random":
            rng = np.random.default_rng(self.sample_seed)
            draws = rng.integers(0, len(combos), size=int(self.sample_size))
            for index, draw in enumerate(draws):
                combo = combos[int(draw)]
                tag = self._combo_tag(combo, varying)
                suffix = f"-{tag}" if tag else ""
                plan.add(self._build_spec(
                    combo, name=f"{self.name}-{index:04d}{suffix}",
                    seed=self.base_seed + index,
                ))
        else:
            for combo in combos:
                tag = self._combo_tag(combo, varying)
                label = f"{self.name}-{tag}" if tag else self.name
                for index in range(self.tests):
                    plan.add(self._build_spec(
                        combo, name=f"{label}-{index:04d}",
                        seed=self.base_seed + index,
                    ))
        plan.validate()
        return plan

    def _build_spec(self, combo, *, name: str, seed: int) -> ExperimentSpec:
        target_ref, trigger_ref, fault_ref, scenario_key = combo
        return ExperimentSpec(
            name=name,
            target=TARGETS.build(target_ref.kind, **target_ref.params),
            trigger=TRIGGERS.build(trigger_ref.kind, **trigger_ref.params),
            fault_model=FAULT_MODELS.build(fault_ref.kind, **fault_ref.params),
            scenario=SCENARIOS.build(scenario_key),
            duration=self.duration,
            settle_time=self.settle_time,
            warmup_time=self.warmup_time,
            observe_time=self.observe_time,
            seed=seed,
            intensity=self._intensity_label(),
        )

    # -- execution helpers ------------------------------------------------------------

    def sut_factory(self, override: Optional[str] = None) -> RegistrySutFactory:
        """A picklable SUT factory for this campaign (``override`` wins)."""
        if override is not None:
            return RegistrySutFactory(override)
        return RegistrySutFactory(self.sut.kind, self.sut.params)

    def build_classifier(self):
        return CLASSIFIERS.build(self.classifier.kind, **self.classifier.params)

    def describe(self) -> str:
        combos = self._combinations()
        total = (int(self.sample_size) if self.sampling == "random"
                 else len(combos) * self.tests)
        return (f"campaign {self.name!r}: {len(combos)} grid point(s), "
                f"{self.sampling} sampling, {total} experiments, "
                f"sut {self.sut.kind!r}")


def _unknown_keys_message(unknown, known, *, where: str) -> str:
    parts = [f"{key!r}{suggest_close_matches(key, known)}"
             for key in sorted(unknown)]
    return f"unknown {where} key(s): {'; '.join(parts)}"


def load_campaign_config(path: "str | Path") -> CampaignConfig:
    """Load a :class:`CampaignConfig` from a TOML or JSON file."""
    path = Path(path)
    if not path.exists():
        raise CampaignConfigError(f"campaign config {path} does not exist")
    suffix = path.suffix.lower()
    try:
        if suffix == ".toml":
            import tomllib
            with path.open("rb") as handle:
                data = tomllib.load(handle)
        elif suffix == ".json":
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        else:
            raise CampaignConfigError(
                f"unsupported campaign config format {suffix!r} "
                f"(expected .toml or .json): {path}"
            )
    except CampaignConfigError:
        raise
    except Exception as exc:
        raise CampaignConfigError(f"cannot parse {path}: {exc}") from exc
    return CampaignConfig.from_dict(data)


# -- the paper catalog ---------------------------------------------------------------
#
# The hand-written plan builders of :mod:`repro.core.plan` expressed as
# catalog entries through the compile path above. Identities are
# byte-identical to the historical builders (asserted by the determinism
# tests), so checkpoints recorded before the declarative layer resume cleanly.

def _fig3_entry() -> CampaignConfig:
    """Figure 3: medium intensity on the non-root cell's trap handler."""
    return CampaignConfig(
        name="fig3-medium-nonroot-trap",
        description="Figure-3 campaign: medium intensity, non-root trap handler",
        targets=[PartRef("nonroot-trap")],
        scenarios=["steady-state"],
        intensity="medium",
        tests=200,
        duration=PAPER_TEST_DURATION,
    )


def _high_root_entry() -> CampaignConfig:
    """High intensity on the root CPU's hvc+trap handlers (invalid arguments)."""
    return CampaignConfig(
        name="high-root-hvc-trap",
        description="high-intensity root-cell campaign (invalid-arguments finding)",
        targets=[PartRef("hvc+trap", {"cpus": [0]})],
        scenarios=["repeated-lifecycle"],
        intensity="high",
        tests=60,
        duration=20.0,
        base_seed=1000,
    )


def _high_nonroot_entry() -> CampaignConfig:
    """High intensity on the non-root CPU (inconsistent-state finding)."""
    return CampaignConfig(
        name="high-nonroot-hvc-trap",
        description="high-intensity non-root campaign (inconsistent-state finding)",
        targets=[PartRef("hvc+trap", {"cpus": [1]})],
        scenarios=["lifecycle"],
        intensity="high",
        tests=60,
        duration=20.0,
        base_seed=2000,
    )


def _park_and_recover_entry() -> CampaignConfig:
    """Provoke CPU parks and verify destroy returns the cell's resources."""
    return CampaignConfig(
        name="park-and-recover",
        description="isolation check: provoke a CPU park, destroy, verify recovery",
        targets=[PartRef("nonroot-trap")],
        triggers=[PartRef("every-n-calls", {"n": 10})],
        fault_models=[PartRef("register-class-bit-flip", {"target_class": "sp"})],
        scenarios=["park-and-recover"],
        intensity="targeted",
        tests=20,
        duration=30.0,
    )


_CATALOG: Dict[str, Callable[[], CampaignConfig]] = {
    "fig3": _fig3_entry,
    "high-root": _high_root_entry,
    "high-nonroot": _high_nonroot_entry,
    "park-and-recover": _park_and_recover_entry,
}


def catalog_keys() -> List[str]:
    """Names of the built-in paper campaigns."""
    return sorted(_CATALOG)


def catalog_config(key: str, *, num_tests: Optional[int] = None,
                   duration: Optional[float] = None,
                   base_seed: Optional[int] = None) -> CampaignConfig:
    """The catalog entry for ``key``, with optional size/timing overrides."""
    try:
        entry = _CATALOG[key]
    except KeyError:
        raise CampaignConfigError(
            f"unknown catalog campaign {key!r}; "
            f"available: {', '.join(catalog_keys())}"
            f"{suggest_close_matches(key, _CATALOG)}"
        ) from None
    config = entry()
    overrides = {}
    if num_tests is not None:
        overrides["tests"] = num_tests
    if duration is not None:
        overrides["duration"] = duration
    if base_seed is not None:
        overrides["base_seed"] = base_seed
    return replace(config, **overrides) if overrides else config


def catalog_describe() -> List[str]:
    """One ``key — summary`` line per catalog entry."""
    lines = []
    for key in catalog_keys():
        config = _CATALOG[key]()
        lines.append(f"{key} — {config.description or config.name}")
    return lines
