"""System-under-test drivers.

A :class:`SystemUnderTest` packages everything an experiment needs: it builds
the board, the hypervisor, and the guests; it brings the mixed-criticality
deployment up (Linux root cell managing a FreeRTOS non-root cell, as in the
paper's testbed); it drives the simulation loop that feeds guest activity
through the hypervisor's hookable entry points; and it exposes the evidence
the outcome classifier needs.

:class:`JailhouseSUT` is the paper's deployment. The baselines in
:mod:`repro.baselines` implement the same interface so the comparison
benchmark can run identical campaigns against them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.injection import FaultInjector
from repro.core.monitors import AvailabilityMonitor, HypervisorMonitor, LogCollector
from repro.core.outcomes import ManagementEvidence, OutcomeEvidence
from repro.core.registry import SUTS
from repro.errors import CampaignError
from repro.guests.base import GuestEvent, GuestOS, GuestState
from repro.guests.freertos.kernel import FreeRTOSKernel
from repro.guests.freertos.workloads import build_paper_workload
from repro.guests.linux import LinuxGuest
from repro.hw.board import BananaPiBoard, BoardConfig
from repro.hw.cpu import CpuState
from repro.hypervisor.cell import LoadedImage
from repro.hypervisor.cli import JailhouseCli
from repro.hypervisor.config import (
    bananapi_system_config,
    freertos_cell_config,
)
from repro.hypervisor.core import Hypervisor, HypervisorState
from repro.hypervisor.handlers import TrapResult
from repro.hypervisor.traps import TrapCode, encode_hsr


@dataclass
class SutConfig:
    """Configuration of the Jailhouse system under test."""

    timestep: float = 0.02            # simulation quantum in seconds
    seed: int = 0
    root_cell_name: str = "BananaPi-Linux"
    inmate_cell_name: str = "FreeRTOS"
    inmate_entry_offset: int = 0x0
    create_ivshmem: bool = True
    max_resume_faults_per_step: int = 4


@dataclass
class SutSnapshot:
    """Full mutable state of a :class:`JailhouseSUT` at one instant.

    Captured by :meth:`JailhouseSUT.snapshot` and written back in place by
    :meth:`JailhouseSUT.restore`: restoring mutates the existing object graph
    (board RAM pages, CPU/GIC/timer state, hypervisor cell registry, guest
    kernel state) instead of rebuilding it, so references between components
    — guests attached to cells, MMIO handlers bound to regions, injector
    hooks — stay valid.
    """

    board: dict
    hypervisor: dict
    cli: dict
    linux: dict
    freertos: dict
    log_start: Optional[float]
    lifecycle_done: bool


class SystemUnderTest(abc.ABC):
    """Interface every system under test implements."""

    name: str = "sut"

    @abc.abstractmethod
    def setup(self) -> None:
        """Boot the system to its steady state (no injections yet)."""

    @abc.abstractmethod
    def install_injector(self, injector: FaultInjector) -> None:
        """Install (but do not arm) a fault injector."""

    @abc.abstractmethod
    def run(self, duration: float) -> None:
        """Advance the workload for ``duration`` simulated seconds."""

    @abc.abstractmethod
    def perform_cell_lifecycle(self) -> ManagementEvidence:
        """Create, load and start the non-root cell (used by lifecycle tests)."""

    @abc.abstractmethod
    def destroy_inmate_cell(self) -> bool:
        """Destroy the non-root cell; returns whether resources came back."""

    @abc.abstractmethod
    def inmate_cell_exists(self) -> bool:
        """Whether the non-root cell is currently allocated."""

    @abc.abstractmethod
    def evidence(self, window_start: float, window_end: float) -> OutcomeEvidence:
        """Collect the classifier evidence for the given observation window."""

    @abc.abstractmethod
    def teardown(self) -> None:
        """Release references (a SUT instance is single-use)."""

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current simulated time."""


class JailhouseSUT(SystemUnderTest):
    """The paper's deployment: Jailhouse on a Banana Pi with Linux + FreeRTOS."""

    name = "jailhouse"

    def __init__(self, config: Optional[SutConfig] = None) -> None:
        self.config = config or SutConfig()
        self.board = BananaPiBoard(BoardConfig())
        self.hypervisor = Hypervisor(self.board)
        self.cli = JailhouseCli(self.hypervisor)
        self.linux = LinuxGuest(self.config.root_cell_name, seed=self.config.seed)
        self.freertos: FreeRTOSKernel = build_paper_workload(
            self.config.inmate_cell_name, seed=self.config.seed + 1
        )
        self.injectors: List[FaultInjector] = []
        self._lifecycle_done = False
        self._log_collector = LogCollector(self.board.uart)
        #: Optional telemetry bus (:meth:`attach_telemetry`). ``None`` by
        #: default: :meth:`run` checks it once per call, never per step, so
        #: an uninstrumented SUT runs the exact historical hot path.
        self.telemetry = None
        #: Snapshot-pooling state: ``_pristine`` is the post-construction
        #: state (captured when pooling is enabled), ``_boot_snapshot`` the
        #: post-``setup()`` steady state for the current seed.
        self._pooling = False
        self._pristine: Optional[SutSnapshot] = None
        self._boot_snapshot: Optional[SutSnapshot] = None
        #: Seed the boot snapshot was captured under. ``config.seed`` can be
        #: re-stamped by :meth:`fork_from_snapshot` without re-booting, so
        #: the pair is what tells :meth:`setup` the snapshot is still valid.
        self._boot_snapshot_seed: Optional[int] = None

    # -- setup ---------------------------------------------------------------------------

    def setup(self) -> None:
        """Boot to the steady state: restore the boot snapshot if one exists.

        With snapshot pooling enabled, the first ``setup()`` cold-boots and
        captures the steady state; later ``setup()`` calls (after a
        :meth:`teardown` between experiments) restore it instead of
        re-running the boot sequence. Without pooling this is always the cold
        boot path.
        """
        if self._boot_snapshot is not None:
            if self._boot_snapshot_seed == self.config.seed:
                self.restore(self._boot_snapshot)
                return
            # The boot snapshot belongs to another seed: the prefix cache
            # forked this SUT across families since it was captured. Rewind
            # to the pristine state and cold-boot for the current seed.
            self.reset_for_seed(self.config.seed)
        self.board.power_on()
        system_config = bananapi_system_config()
        result = self.cli.enable(system_config)
        if not result.success:
            raise CampaignError(f"failed to enable the hypervisor: {result.output}")
        root = self.hypervisor.root_cell
        assert root is not None
        self.linux.attach(root, self.board)
        self.linux.boot()
        self._log_collector.start(self.board.clock.now)
        if self._pooling:
            self._boot_snapshot = self.snapshot()
            self._boot_snapshot_seed = self.config.seed

    # -- snapshot / restore / pooling ------------------------------------------------------

    def snapshot(self) -> SutSnapshot:
        """Capture the full mutable state of the deployment.

        Injector hooks installed on the handlers are captured too (as
        references); a snapshot is normally taken with no injector installed
        — the engine snapshots the fault-free steady state right after
        :meth:`setup`.
        """
        return SutSnapshot(
            board=self.board.snapshot_state(),
            hypervisor=self.hypervisor.snapshot_state(),
            cli=self.cli.snapshot_state(),
            linux=self.linux.snapshot_state(),
            freertos=self.freertos.snapshot_state(),
            log_start=self._log_collector.start_time,
            lifecycle_done=self._lifecycle_done,
        )

    def restore(self, snapshot: SutSnapshot) -> None:
        """Restore a prior :meth:`snapshot` in place (object identity kept)."""
        self.board.restore_state(snapshot.board)
        self.hypervisor.restore_state(snapshot.hypervisor)
        self.cli.restore_state(snapshot.cli)
        self.linux.restore_state(snapshot.linux)
        self.freertos.restore_state(snapshot.freertos)
        self._log_collector.start(snapshot.log_start)
        self._lifecycle_done = snapshot.lifecycle_done
        self.injectors.clear()

    def fork_from_snapshot(self, snapshot: SutSnapshot, *,
                           seed: Optional[int] = None) -> None:
        """Rewind to ``snapshot`` to run another fault variant from it.

        The prefix fast-forward path executes one golden bring-up per prefix
        family, snapshots the deployment at the injection point, and forks
        every variant of that family from the snapshot instead of re-running
        the bring-up. Restoring is in place (the snapshot must have been
        taken on this SUT's object graph) and leaves no injector installed.

        ``seed`` re-stamps :attr:`SutConfig.seed`, which is construction
        metadata and not part of the snapshot; the RNG streams themselves are
        restored bit-exactly from the snapshot, so a forked run replays the
        exact draws a cold boot with that seed would make.
        """
        self.restore(snapshot)
        if seed is not None:
            self.config.seed = seed

    def enable_snapshot_pooling(self) -> None:
        """Opt this SUT into snapshot/reset pooling (used by the engine).

        Must be called before the first :meth:`setup`; captures the pristine
        post-construction state so :meth:`reset_for_seed` can later retarget
        the same object graph to a different experiment seed.
        """
        if self._pooling:
            return
        self._pooling = True
        self._pristine = self.snapshot()

    def reset_for_seed(self, seed: int) -> None:
        """Retarget a pooled SUT to a new seed without rebuilding it.

        Restores the pristine post-construction state and re-seeds the guest
        RNG streams exactly as ``JailhouseSUT(SutConfig(seed=seed))`` would,
        so the subsequent cold :meth:`setup` (which re-captures the boot
        snapshot) is bit-identical to a freshly constructed SUT.
        """
        if self._pristine is None:
            raise CampaignError("snapshot pooling is not enabled on this SUT")
        self.restore(self._pristine)
        self._boot_snapshot = None
        self._boot_snapshot_seed = None
        self.config.seed = seed
        self.linux.rng = np.random.default_rng(seed)
        self.freertos.rng = np.random.default_rng(seed + 1)

    def install_injector(self, injector: FaultInjector) -> None:
        injector.install(self.hypervisor.handlers)
        self.injectors.append(injector)

    # -- cell lifecycle ------------------------------------------------------------------------

    def perform_cell_lifecycle(self) -> ManagementEvidence:
        """Create, load and start the FreeRTOS cell through the jailhouse CLI."""
        evidence = ManagementEvidence()
        cell_config = freertos_cell_config(self.config.inmate_cell_name)

        evidence.create_attempted = True
        create = self.cli.cell_create(cell_config)
        evidence.create_succeeded = create.success
        evidence.create_code = create.code
        if not create.success:
            return evidence

        ram = cell_config.find_assignment("ram")
        assert ram is not None
        entry = ram.virt_start + self.config.inmate_entry_offset
        load = self.cli.cell_load(
            cell_config.name,
            LoadedImage(region_name="ram", entry_point=entry,
                        size=256 << 10, description="freertos-bananapi.bin"),
        )
        if load.success:
            cell = self.hypervisor.cell_by_name(cell_config.name)
            assert cell is not None
            self.freertos.attach(cell, self.board)
            if self.config.create_ivshmem:
                channel = self.hypervisor.create_ivshmem_channel(
                    self.config.root_cell_name, cell_config.name
                )
                channel.set_doorbell_target(cell_config.name, min(cell.cpus))
                self.freertos.attach_ivshmem(channel)

        evidence.start_attempted = True
        start = self.cli.cell_start(cell_config.name)
        evidence.start_succeeded = start.success
        evidence.start_code = start.code
        if start.success:
            cell = self.hypervisor.cell_by_name(cell_config.name)
            if cell is not None and cell.online_cpus:
                self.freertos.boot()
        self._lifecycle_done = True
        return evidence

    def inmate_cell_exists(self) -> bool:
        return self.hypervisor.cell_by_name(self.config.inmate_cell_name) is not None

    def destroy_inmate_cell(self) -> bool:
        """``jailhouse cell destroy`` and verify resources return to the root."""
        result = self.cli.cell_destroy(self.config.inmate_cell_name)
        if not result.success:
            return False
        root = self.hypervisor.root_cell
        assert root is not None
        freertos_cpus = freertos_cell_config(self.config.inmate_cell_name).cpus
        return freertos_cpus <= root.cpus

    # -- simulation loop ----------------------------------------------------------------------------

    def attach_telemetry(self, bus) -> None:
        """Attach a :class:`~repro.obs.telemetry.Telemetry` bus to this SUT.

        While the bus is active, every :meth:`run` emits two aggregate
        ``span`` events — ``sut.guest_step`` (the per-tick guest execution
        loop) and ``sut.trap_dispatch`` (workload-generated trap handling) —
        with total elapsed seconds and call counts for that run. An inactive
        or absent bus costs one check per :meth:`run` call, never per step.
        """
        self.telemetry = bus

    def run(self, duration: float) -> None:
        """Drive the workload; stops early if the whole system panics."""
        steps = max(1, int(round(duration / self.config.timestep)))
        timestep = self.config.timestep
        telemetry = self.telemetry
        if telemetry is not None and telemetry.active:
            self._run_instrumented(steps, timestep, telemetry)
            return
        hypervisor = self.hypervisor
        panicked_state = HypervisorState.PANICKED
        step = self._step
        for _ in range(steps):
            if hypervisor.state is panicked_state:
                break
            step(timestep)

    def _run_instrumented(self, steps: int, timestep: float,
                          telemetry) -> None:
        """The :meth:`run` loop with span instrumentation.

        Timing wraps the existing :meth:`_step`/:meth:`_dispatch_guest_event`
        rather than duplicating them (one hot path to keep correct); the
        dispatch wrapper shadows the bound method for the duration of this
        run only, and nested resume-fault dispatches are folded into their
        depth-0 ancestor's time.
        """
        from time import perf_counter

        hypervisor = self.hypervisor
        panicked_state = HypervisorState.PANICKED
        step_elapsed = 0.0
        step_count = 0
        dispatch = {"elapsed": 0.0, "count": 0}
        inner_dispatch = self._dispatch_guest_event

        def timed_dispatch(cpu_id, guest, event, *, depth):
            if depth > 0:
                return inner_dispatch(cpu_id, guest, event, depth=depth)
            started = perf_counter()
            try:
                return inner_dispatch(cpu_id, guest, event, depth=depth)
            finally:
                dispatch["elapsed"] += perf_counter() - started
                dispatch["count"] += 1

        self._dispatch_guest_event = timed_dispatch
        try:
            for _ in range(steps):
                if hypervisor.state is panicked_state:
                    break
                started = perf_counter()
                self._step(timestep)
                step_elapsed += perf_counter() - started
                step_count += 1
        finally:
            del self._dispatch_guest_event
        # repro: allow[telemetry-guard] -- run() only calls _run_instrumented when the bus is active (cross-function guard)
        telemetry.emit("span", name="sut.guest_step",
                       elapsed_s=step_elapsed, count=step_count)
        # repro: allow[telemetry-guard] -- run() only calls _run_instrumented when the bus is active (cross-function guard)
        telemetry.emit("span", name="sut.trap_dispatch",
                       elapsed_s=dispatch["elapsed"],
                       count=dispatch["count"])

    def _step(self, dt: float) -> None:
        # Hot path: attribute lookups hoisted, ``is_executing`` inlined as a
        # state comparison — this runs 50 times per simulated second.
        board = self.board
        hypervisor = self.hypervisor
        handlers = hypervisor.handlers
        gic_pending = board.gic.pending_view()
        online = CpuState.ONLINE
        panicked_state = HypervisorState.PANICKED
        board.advance(dt)
        now = board.clock.now
        for cpu in board.cpus:
            if cpu.state is not online:
                continue
            cpu_id = cpu.cpu_id
            cell = hypervisor.cell_of_cpu(cpu_id)
            if cell is None or not cell.state.is_running:
                continue
            guest = cell.guest
            if guest is None or guest.state is not GuestState.RUNNING:
                continue
            # Pending interrupts enter through irqchip_handle_irq().
            if gic_pending[cpu_id]:
                context = cpu.enter_trap("irq", 0, timestamp=now)
                result = handlers.irqchip_handle_irq(cpu, context)
                if result is TrapResult.HANDLED:
                    follow_up = guest.resume_from_trap(cpu_id, context)
                    if follow_up is not None:
                        self._dispatch_guest_event(cpu_id, guest, follow_up, depth=1)
                if hypervisor.state is panicked_state or cpu.state is not online:
                    continue
            # Workload-generated VM exits enter through arch_handle_trap()/hvc().
            for event in guest.step(cpu_id, now, dt):
                if hypervisor.state is panicked_state or cpu.state is not online:
                    break
                self._dispatch_guest_event(cpu_id, guest, event, depth=0)

    def _dispatch_guest_event(self, cpu_id: int, guest: GuestOS,
                              event: GuestEvent, *, depth: int) -> None:
        if depth > self.config.max_resume_faults_per_step:
            return
        cpu = self.board.cpu(cpu_id)
        if not cpu.is_executing:
            return
        guest.place_registers(cpu_id, event.registers)
        context = cpu.enter_trap(
            event.trap.value, encode_hsr(event.trap),
            timestamp=self.board.clock.now,
        )
        result = self.hypervisor.handlers.arch_handle_trap(
            cpu, context, fault_address=event.fault_address
        )
        if result is not TrapResult.HANDLED:
            return
        follow_up = guest.resume_from_trap(cpu_id, context)
        if follow_up is not None:
            self._dispatch_guest_event(cpu_id, guest, follow_up, depth=depth + 1)

    # -- evidence ------------------------------------------------------------------------------------

    def evidence(self, window_start: float, window_end: float) -> OutcomeEvidence:
        hypervisor_monitor = HypervisorMonitor(self.hypervisor)
        availability: Dict[str, "AvailabilityReport"] = {}
        for cell_name in (self.config.inmate_cell_name, self.config.root_cell_name):
            monitor = AvailabilityMonitor(self.board.uart, cell_name)
            availability[cell_name] = monitor.report(window_start, window_end)
        injections = sum(injector.injection_count for injector in self.injectors)
        return OutcomeEvidence(
            observation=hypervisor_monitor.observe(window_start, window_end),
            availability=availability,
            target_cell=self.config.inmate_cell_name,
            root_cell=self.config.root_cell_name,
            injections=injections,
        )

    def serial_log(self) -> str:
        """The full captured serial log of this run (the paper's log file)."""
        return self._log_collector.collect(self.board.clock.now)

    @property
    def now(self) -> float:
        return self.board.clock.now

    def teardown(self) -> None:
        for injector in self.injectors:
            injector.uninstall()
        self.injectors.clear()


@SUTS.register("jailhouse")
def build_jailhouse_sut(seed: int = 0, **config_params) -> JailhouseSUT:
    """The paper's deployment: Jailhouse managing Linux root + FreeRTOS inmate."""
    return JailhouseSUT(SutConfig(seed=seed, **config_params))
