"""Fault models.

The paper uses "the classical bit-flip fault model" to emulate transient
hardware faults: the *medium* intensity flips one random bit of one random
architectural register per activation, while the *high* intensity flips bits
in multiple registers at once. Both operate on the trap context saved at the
entry of the targeted hypervisor handler.

Additional models (register-class-restricted flips, multi-bit bursts within a
register, stuck-at faults) support the ablation benchmarks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.registry import FAULT_MODELS
from repro.errors import InjectionError
from repro.hw.registers import (
    ARCHITECTURAL_REGISTERS,
    Register,
    RegisterClass,
    TrapContext,
    WORD_BITS,
    register_class,
    registers_in_class,
)


@dataclass(frozen=True)
class AppliedFault:
    """One register corruption actually performed."""

    register: Register
    bit: int
    value_before: int
    value_after: int

    @property
    def register_class(self) -> RegisterClass:
        return register_class(self.register)

    def describe(self) -> str:
        return (
            f"{self.register.value} bit {self.bit}: "
            f"0x{self.value_before:08x} -> 0x{self.value_after:08x}"
        )


class FaultModel(abc.ABC):
    """Decides which corruption to apply to a trap context."""

    name: str = "fault-model"

    @abc.abstractmethod
    def apply(self, context: TrapContext, rng: np.random.Generator) -> List[AppliedFault]:
        """Corrupt ``context`` in place and return the applied faults."""

    def describe(self) -> str:
        return self.name


def _flip_register_bit(context: TrapContext, register: Register, bit: int) -> AppliedFault:
    before = context.read(register)
    after = context.flip(register, bit)
    return AppliedFault(register=register, bit=bit, value_before=before,
                        value_after=after)


class SingleBitFlip(FaultModel):
    """Flip one random bit of one random architectural register.

    This is the paper's medium-intensity fault model.
    """

    name = "single-bit-flip"

    def __init__(self, registers: Optional[Sequence[Register]] = None) -> None:
        self.registers: Tuple[Register, ...] = (
            tuple(registers) if registers is not None else ARCHITECTURAL_REGISTERS
        )
        if not self.registers:
            raise InjectionError("fault model needs at least one target register")

    def apply(self, context: TrapContext, rng: np.random.Generator) -> List[AppliedFault]:
        register = self.registers[int(rng.integers(0, len(self.registers)))]
        bit = int(rng.integers(0, WORD_BITS))
        return [_flip_register_bit(context, register, bit)]


class MultiRegisterBitFlip(FaultModel):
    """Flip one random bit in each of ``count`` distinct registers.

    This is the paper's high-intensity fault model ("a bit flip of multiple
    registers at the time").
    """

    name = "multi-register-bit-flip"

    def __init__(self, count: int = 4,
                 registers: Optional[Sequence[Register]] = None) -> None:
        if count <= 0:
            raise InjectionError("multi-register flip needs a positive register count")
        self.registers: Tuple[Register, ...] = (
            tuple(registers) if registers is not None else ARCHITECTURAL_REGISTERS
        )
        if not self.registers:
            raise InjectionError("fault model needs at least one target register")
        if count > len(self.registers):
            raise InjectionError(
                f"cannot corrupt {count} distinct registers out of {len(self.registers)}"
            )
        self.count = count

    def apply(self, context: TrapContext, rng: np.random.Generator) -> List[AppliedFault]:
        indices = rng.choice(len(self.registers), size=self.count, replace=False)
        faults = []
        for index in indices:
            register = self.registers[int(index)]
            bit = int(rng.integers(0, WORD_BITS))
            faults.append(_flip_register_bit(context, register, bit))
        return faults


class RegisterClassBitFlip(FaultModel):
    """Flip one random bit within a specific register class (ablation A3)."""

    name = "register-class-bit-flip"

    def __init__(self, target_class: RegisterClass) -> None:
        registers = tuple(
            reg for reg in registers_in_class(target_class)
            if reg in ARCHITECTURAL_REGISTERS or target_class is RegisterClass.SYNDROME
        )
        if not registers:
            raise InjectionError(f"no architectural registers in class {target_class}")
        self.target_class = target_class
        self.registers = registers
        self.name = f"register-class-bit-flip[{target_class.value}]"

    def apply(self, context: TrapContext, rng: np.random.Generator) -> List[AppliedFault]:
        register = self.registers[int(rng.integers(0, len(self.registers)))]
        bit = int(rng.integers(0, WORD_BITS))
        return [_flip_register_bit(context, register, bit)]


class MultiBitBurst(FaultModel):
    """Flip several adjacent bits of one register (burst fault extension)."""

    name = "multi-bit-burst"

    def __init__(self, burst_length: int = 2,
                 registers: Optional[Sequence[Register]] = None) -> None:
        if not 1 <= burst_length <= WORD_BITS:
            raise InjectionError(
                f"burst length must be in [1, {WORD_BITS}], got {burst_length}"
            )
        self.burst_length = burst_length
        self.registers: Tuple[Register, ...] = (
            tuple(registers) if registers is not None else ARCHITECTURAL_REGISTERS
        )
        if not self.registers:
            raise InjectionError("fault model needs at least one target register")

    def apply(self, context: TrapContext, rng: np.random.Generator) -> List[AppliedFault]:
        register = self.registers[int(rng.integers(0, len(self.registers)))]
        start = int(rng.integers(0, WORD_BITS - self.burst_length + 1))
        faults = []
        for bit in range(start, start + self.burst_length):
            faults.append(_flip_register_bit(context, register, bit))
        return faults


class StuckAtFault(FaultModel):
    """Force one register to all-zeros or all-ones (stuck-at extension)."""

    def __init__(self, stuck_value: int,
                 registers: Optional[Sequence[Register]] = None) -> None:
        if stuck_value not in (0, 1):
            raise InjectionError("stuck value must be 0 or 1")
        self.stuck_value = stuck_value
        self.registers: Tuple[Register, ...] = (
            tuple(registers) if registers is not None else ARCHITECTURAL_REGISTERS
        )
        if not self.registers:
            raise InjectionError("fault model needs at least one target register")
        self.name = f"stuck-at-{stuck_value}"

    def apply(self, context: TrapContext, rng: np.random.Generator) -> List[AppliedFault]:
        register = self.registers[int(rng.integers(0, len(self.registers)))]
        before = context.read(register)
        after = 0x0000_0000 if self.stuck_value == 0 else 0xFFFF_FFFF
        context.write(register, after)
        # Report the most significant differing bit for record purposes.
        diff = before ^ after
        bit = diff.bit_length() - 1 if diff else 0
        return [AppliedFault(register=register, bit=bit, value_before=before,
                             value_after=after)]


# -- registry builders ----------------------------------------------------------------
#
# Config files select fault models by key; these builders coerce the
# config-friendly parameter spellings (register names and class names as
# strings) into the enum types the constructors take.

def _coerce_registers(registers: Optional[Sequence["str | Register"]]
                      ) -> Optional[Tuple[Register, ...]]:
    if registers is None:
        return None
    return tuple(Register(entry) for entry in registers)


@FAULT_MODELS.register("single-bit-flip")
def build_single_bit_flip(registers: Optional[Sequence[str]] = None) -> SingleBitFlip:
    """Flip one random bit of one random register (paper's medium intensity)."""
    return SingleBitFlip(registers=_coerce_registers(registers))


@FAULT_MODELS.register("multi-register-bit-flip")
def build_multi_register_bit_flip(
        count: int = 4,
        registers: Optional[Sequence[str]] = None) -> MultiRegisterBitFlip:
    """Flip one bit in each of ``count`` registers (paper's high intensity)."""
    return MultiRegisterBitFlip(count=count,
                                registers=_coerce_registers(registers))


@FAULT_MODELS.register("register-class-bit-flip")
def build_register_class_bit_flip(
        target_class: "str | RegisterClass") -> RegisterClassBitFlip:
    """Flip one bit within one register class (``sp``, ``pc``, ``gpr``, ...)."""
    if not isinstance(target_class, RegisterClass):
        try:
            target_class = RegisterClass(target_class)
        except ValueError:
            choices = ", ".join(entry.value for entry in RegisterClass)
            raise InjectionError(
                f"unknown register class {target_class!r}; choices: {choices}"
            ) from None
    return RegisterClassBitFlip(target_class)


@FAULT_MODELS.register("multi-bit-burst")
def build_multi_bit_burst(burst_length: int = 2,
                          registers: Optional[Sequence[str]] = None) -> MultiBitBurst:
    """Flip ``burst_length`` adjacent bits of one register."""
    return MultiBitBurst(burst_length=burst_length,
                         registers=_coerce_registers(registers))


@FAULT_MODELS.register("stuck-at")
def build_stuck_at(stuck_value: int = 0,
                   registers: Optional[Sequence[str]] = None) -> StuckAtFault:
    """Force one register to all-zeros (``stuck_value=0``) or all-ones (``1``)."""
    return StuckAtFault(stuck_value, registers=_coerce_registers(registers))
