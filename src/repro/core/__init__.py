"""Fault-injection framework (the paper's primary contribution).

The framework orchestrates fault-injection campaigns against a system under
test: it decides *what* to corrupt (:mod:`faultmodels`), *when*
(:mod:`triggers`), *where* (:mod:`targets`), installs the corruption as an
entry hook on the hypervisor's handlers (:mod:`injection`), observes the
system (:mod:`monitors`), classifies each test's outcome (:mod:`outcomes`),
and aggregates results (:mod:`campaign`, :mod:`analysis`, :mod:`report`).
"""

from repro.core.campaign import Campaign, CampaignResult
from repro.core.config import (
    CampaignConfig,
    PartRef,
    catalog_config,
    catalog_keys,
    load_campaign_config,
)
from repro.core.experiment import Experiment, ExperimentResult, ExperimentSpec, Scenario
from repro.core.faultmodels import (
    AppliedFault,
    FaultModel,
    MultiRegisterBitFlip,
    RegisterClassBitFlip,
    SingleBitFlip,
)
from repro.core.injection import FaultInjector, InjectionRecord
from repro.core.monitors import AvailabilityMonitor, AvailabilityReport
from repro.core.outcomes import Outcome, OutcomeClassifier, OutcomeEvidence
from repro.core.plan import IntensityLevel, TestPlan, build_intensity_plan
from repro.core.recording import ExperimentRecord, RecordStore
from repro.core.registry import (
    CLASSIFIERS,
    FAULT_MODELS,
    GUESTS,
    Registry,
    RegistrySutFactory,
    SCENARIOS,
    SUTS,
    TARGETS,
    TRIGGERS,
    WORKLOADS,
    resolve_sut_factory,
)
from repro.core.sut import JailhouseSUT, SutConfig, SystemUnderTest
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls, OneShotAtCall, ProbabilisticTrigger, Trigger

__all__ = [
    "AppliedFault",
    "AvailabilityMonitor",
    "AvailabilityReport",
    "CLASSIFIERS",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "EveryNCalls",
    "FAULT_MODELS",
    "GUESTS",
    "PartRef",
    "Registry",
    "RegistrySutFactory",
    "SCENARIOS",
    "SUTS",
    "TARGETS",
    "TRIGGERS",
    "WORKLOADS",
    "catalog_config",
    "catalog_keys",
    "load_campaign_config",
    "resolve_sut_factory",
    "Experiment",
    "ExperimentRecord",
    "ExperimentResult",
    "ExperimentSpec",
    "FaultInjector",
    "FaultModel",
    "InjectionRecord",
    "InjectionTarget",
    "IntensityLevel",
    "JailhouseSUT",
    "MultiRegisterBitFlip",
    "OneShotAtCall",
    "Outcome",
    "OutcomeClassifier",
    "OutcomeEvidence",
    "ProbabilisticTrigger",
    "RecordStore",
    "RegisterClassBitFlip",
    "Scenario",
    "SingleBitFlip",
    "SutConfig",
    "SystemUnderTest",
    "TestPlan",
    "Trigger",
    "build_intensity_plan",
]
