"""Plugin registries for the declarative campaign layer.

Experiment construction is data, not code: every part of an experiment —
fault model, trigger, injection target, scenario, system-under-test factory,
outcome classifier, guest/workload builder — is registered here under a
string key, and :mod:`repro.core.config` composes campaigns by naming keys
and parameters instead of calling Python constructors. New parts plug in
with a decorator::

    from repro.core.registry import FAULT_MODELS

    @FAULT_MODELS.register("double-bit-flip")
    class DoubleBitFlip(FaultModel):
        ...

and are immediately reachable from config files, the catalog, and the CLI
(``repro-fi list`` shows every key; ``repro-fi run`` and ``--sut`` resolve
them).

Keys resolve lazily: the first lookup imports the built-in provider modules
(:mod:`repro.core.faultmodels`, :mod:`repro.core.triggers`,
:mod:`repro.core.targets`, :mod:`repro.core.experiment`,
:mod:`repro.core.outcomes`, :mod:`repro.core.sut`, :mod:`repro.baselines`,
:mod:`repro.guests`), whose import-time ``register()`` decorators populate
the tables. Unknown keys raise :class:`~repro.errors.RegistryError` with
close-match suggestions, so a typo in a config file fails with "did you
mean" instead of a bare ``KeyError``.
"""

from __future__ import annotations

import difflib
import importlib
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import RegistryError

#: Modules whose import populates the built-in registry entries.
_BUILTIN_PLUGIN_MODULES = (
    "repro.core.faultmodels",
    "repro.core.triggers",
    "repro.core.targets",
    "repro.core.experiment",
    "repro.core.outcomes",
    "repro.core.sut",
    "repro.baselines",
    "repro.guests",
)

_plugins_loaded = False
_plugins_loading = False


def suggest_close_matches(key: str, known: Iterable[str]) -> str:
    """``". Did you mean: a, b?"`` for the closest known keys, or ``""``.

    Shared by every unknown-key error in the declarative layer (registries,
    config tables, catalog) so the wording and match cutoff stay uniform.
    """
    matches = difflib.get_close_matches(str(key), sorted(known), n=3,
                                        cutoff=0.5)
    if not matches:
        return ""
    return f". Did you mean: {', '.join(matches)}?"


def load_builtin_plugins() -> None:
    """Import every built-in provider module (idempotent, re-entrancy safe).

    Called automatically on the first registry lookup; importing a provider
    module that itself performs lookups at import time does not recurse.
    """
    global _plugins_loaded, _plugins_loading
    if _plugins_loaded or _plugins_loading:
        return
    _plugins_loading = True
    try:
        for module in _BUILTIN_PLUGIN_MODULES:
            importlib.import_module(module)
        _plugins_loaded = True
    finally:
        _plugins_loading = False


class Registry:
    """String key + params -> builder table for one kind of campaign part.

    A *builder* is any callable returning a ready-to-use part; registering a
    class uses its constructor. ``register`` accepts aliases, which resolve
    like the canonical key but are not listed by :meth:`keys`.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._builders: Dict[str, Callable] = {}
        self._canonical: Dict[str, str] = {}

    # -- registration ---------------------------------------------------------------

    def register(self, key: str, *aliases: str) -> Callable:
        """Decorator: register the decorated builder under ``key`` (+ aliases)."""
        def decorator(builder: Callable) -> Callable:
            self.add(key, builder, aliases=aliases)
            return builder
        return decorator

    def add(self, key: str, builder: Callable,
            aliases: Iterable[str] = ()) -> None:
        """Register ``builder`` imperatively (non-decorator form)."""
        names = (key, *aliases)
        # Validate every name before mutating anything, so a collision cannot
        # leave the registry with names pointing at a builder never stored.
        for name in names:
            if not name or not isinstance(name, str):
                raise RegistryError(
                    f"{self.kind} registry keys must be non-empty strings, "
                    f"got {name!r}"
                )
            if name in self._canonical:
                raise RegistryError(
                    f"{self.kind} key {name!r} is already registered "
                    f"(for {self._canonical[name]!r}); keys must be unique"
                )
        for name in names:
            self._canonical[name] = key
        self._builders[key] = builder

    def add_value(self, key: str, value, aliases: Iterable[str] = (),
                  description: str = "") -> None:
        """Register a constant (e.g. an enum member) as a zero-param builder."""
        def builder():
            return value
        builder.__doc__ = description
        self.add(key, builder, aliases=aliases)

    # -- lookup ---------------------------------------------------------------------

    def _ensure_loaded(self) -> None:
        load_builtin_plugins()

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._canonical

    def keys(self) -> List[str]:
        """Sorted canonical keys (aliases excluded)."""
        self._ensure_loaded()
        return sorted(self._builders)

    def canonical(self, key: str) -> str:
        """Resolve ``key`` (or an alias) to its canonical key, or raise."""
        self._ensure_loaded()
        try:
            return self._canonical[key]
        except KeyError:
            raise RegistryError(self._unknown_key_message(key)) from None

    def get(self, key: str) -> Callable:
        """The builder registered under ``key``; unknown keys raise with
        near-match suggestions."""
        return self._builders[self.canonical(key)]

    def build(self, key: str, **params):
        """Build the part registered under ``key`` with ``params`` as kwargs."""
        builder = self.get(key)
        try:
            return builder(**params)
        except TypeError as exc:
            raise RegistryError(
                f"cannot build {self.kind} {key!r} with params "
                f"{params!r}: {exc}"
            ) from exc

    def describe(self) -> List[str]:
        """One ``key — summary`` line per canonical key, sorted."""
        lines = []
        for key in self.keys():
            doc = (self._builders[key].__doc__ or "").strip().splitlines()
            summary = doc[0].strip() if doc else ""
            lines.append(f"{key} — {summary}" if summary else key)
        return lines

    def _unknown_key_message(self, key: str) -> str:
        return (f"unknown {self.kind} {key!r}; "
                f"registered: {', '.join(sorted(self._builders)) or '(none)'}"
                f"{suggest_close_matches(key, self._canonical)}")


#: What to corrupt: builders returning :class:`~repro.core.faultmodels.FaultModel`.
FAULT_MODELS = Registry("fault model")
#: When to inject: builders returning :class:`~repro.core.triggers.Trigger`.
TRIGGERS = Registry("trigger")
#: Where to inject: builders returning :class:`~repro.core.targets.InjectionTarget`.
TARGETS = Registry("injection target")
#: Which life-cycle phase: builders returning :class:`~repro.core.experiment.Scenario`.
SCENARIOS = Registry("scenario")
#: Builders ``(seed, **params) -> SystemUnderTest`` for every SUT variant.
SUTS = Registry("SUT")
#: Builders returning :class:`~repro.core.outcomes.OutcomeClassifier` instances.
CLASSIFIERS = Registry("outcome classifier")
#: Guest operating-system builders (root/non-root cell payloads).
GUESTS = Registry("guest")
#: Workload builders (task sets loaded into a guest kernel).
WORKLOADS = Registry("workload")


class RegistrySutFactory:
    """SUT factory that resolves its builder by registry key.

    Unlike a closure over a SUT class, an instance of this class pickles by
    value (key + params only), so it crosses ``spawn``-started worker
    processes; the worker re-resolves the key against its own registry after
    import. The key is validated eagerly so a typo fails in the parent with
    suggestions, not inside a worker.
    """

    def __init__(self, key: str, params: Optional[dict] = None) -> None:
        self.key = SUTS.canonical(key)
        self.params = dict(params or {})

    def __call__(self, seed: int):
        return SUTS.build(self.key, seed=seed, **self.params)

    def __repr__(self) -> str:
        return f"RegistrySutFactory({self.key!r}, {self.params!r})"


def resolve_sut_factory(sut) -> Callable:
    """Normalize a SUT selector: a registry key becomes a picklable factory,
    a callable passes through unchanged."""
    if isinstance(sut, str):
        return RegistrySutFactory(sut)
    if callable(sut):
        return sut
    raise RegistryError(
        f"SUT selector must be a registry key or a factory callable, "
        f"got {type(sut).__name__}"
    )
