"""Injection triggers.

A trigger decides *when* an armed injector fires. The paper's test plan uses
call-count triggers: "once every given number of calls to the target
functions" — one per 100 calls at medium intensity, one per 50 at high
intensity. Probabilistic and one-shot triggers support the ablations and the
targeted isolation experiments.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.core.registry import TRIGGERS
from repro.errors import InjectionError


class Trigger(abc.ABC):
    """Decides whether an injection fires for a given handler call."""

    @abc.abstractmethod
    def should_fire(self, call_index: int, rng: np.random.Generator) -> bool:
        """``call_index`` is the 1-based count of *matching* handler calls."""

    def reset(self) -> None:
        """Reset internal state between experiments (default: nothing)."""

    def prefix_component(self) -> Optional[str]:
        """What the pre-injection prefix depends on for this trigger.

        ``None`` (the default, and correct for every call-count trigger)
        means the trigger only observes handler calls made *after* the
        injector is armed, so any trigger of any class can fork from the same
        pre-injection snapshot — the trigger contributes nothing to
        :meth:`~repro.core.experiment.ExperimentSpec.prefix_key`. A trigger
        that instead requires the prefix to be fast-forwarded to a specific
        point (say, an absolute arm time) must return that fast-forwardable
        coordinate here so specs differing in it land in different prefix
        families.
        """
        return None

    def describe(self) -> str:
        return type(self).__name__


class EveryNCalls(Trigger):
    """Fire once every ``n`` matching calls (the paper's rate-based trigger)."""

    def __init__(self, n: int, *, offset: int = 0) -> None:
        if n <= 0:
            raise InjectionError(f"call interval must be positive, got {n}")
        if offset < 0:
            raise InjectionError(f"offset must be non-negative, got {offset}")
        self.n = n
        self.offset = offset

    def should_fire(self, call_index: int, rng: np.random.Generator) -> bool:
        adjusted = call_index - self.offset
        return adjusted > 0 and adjusted % self.n == 0

    def describe(self) -> str:
        return f"every {self.n} calls"


class ProbabilisticTrigger(Trigger):
    """Fire independently with probability ``p`` on each matching call."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise InjectionError(
                f"probability must be within [0, 1], got {probability}"
            )
        self.probability = probability

    def should_fire(self, call_index: int, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.probability)

    def describe(self) -> str:
        return f"probability {self.probability:.3f} per call"


class OneShotAtCall(Trigger):
    """Fire exactly once, at the ``n``-th matching call."""

    def __init__(self, n: int = 1) -> None:
        if n <= 0:
            raise InjectionError(f"call index must be positive, got {n}")
        self.n = n
        self._fired = False

    def should_fire(self, call_index: int, rng: np.random.Generator) -> bool:
        if self._fired:
            return False
        if call_index >= self.n:
            self._fired = True
            return True
        return False

    def reset(self) -> None:
        self._fired = False

    def describe(self) -> str:
        return f"once at call {self.n}"


class BurstTrigger(Trigger):
    """Fire for ``burst`` consecutive calls every ``n`` calls (extension)."""

    def __init__(self, n: int, burst: int) -> None:
        if n <= 0 or burst <= 0:
            raise InjectionError("interval and burst length must be positive")
        if burst > n:
            raise InjectionError("burst length cannot exceed the interval")
        self.n = n
        self.burst = burst

    def should_fire(self, call_index: int, rng: np.random.Generator) -> bool:
        position = call_index % self.n
        return 0 < position <= self.burst

    def describe(self) -> str:
        return f"burst of {self.burst} every {self.n} calls"


# -- registry builders ----------------------------------------------------------------

@TRIGGERS.register("every-n-calls")
def build_every_n_calls(n: int, offset: int = 0) -> EveryNCalls:
    """Fire once every ``n`` matching calls (the paper's rate-based trigger)."""
    return EveryNCalls(n, offset=offset)


@TRIGGERS.register("probabilistic")
def build_probabilistic(probability: float) -> ProbabilisticTrigger:
    """Fire independently with ``probability`` on each matching call."""
    return ProbabilisticTrigger(probability)


@TRIGGERS.register("one-shot")
def build_one_shot(n: int = 1) -> OneShotAtCall:
    """Fire exactly once, at the ``n``-th matching call."""
    return OneShotAtCall(n)


@TRIGGERS.register("burst")
def build_burst(n: int, burst: int) -> BurstTrigger:
    """Fire for ``burst`` consecutive calls every ``n`` calls."""
    return BurstTrigger(n, burst)
