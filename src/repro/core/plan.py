"""Test plans and intensity levels.

The paper's generated test plan "consists of two classes of testing, defined
by the fault intensity level": *medium* (a discontinuous single-register bit
flip, once every 100 calls to the target function) and *high* (bit flips of
multiple registers at a time, once every 50 calls). Each test lasts one
minute. :func:`build_intensity_plan` reproduces those plans; the generic
:class:`TestPlan` supports the ablation benchmarks (rate sweeps, per-register-
class campaigns, alternative targets).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.experiment import ExperimentSpec, PAPER_TEST_DURATION, Scenario
from repro.core.faultmodels import FaultModel, MultiRegisterBitFlip, SingleBitFlip
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls, Trigger
from repro.errors import CampaignError, PlanError


class IntensityLevel(enum.Enum):
    """The paper's fault intensity levels."""

    MEDIUM = "medium"
    HIGH = "high"

    @property
    def call_interval(self) -> int:
        """Injection rate: one activation every this many target calls."""
        return 100 if self is IntensityLevel.MEDIUM else 50

    def build_fault_model(self, *, high_intensity_registers: int = 4) -> FaultModel:
        if self is IntensityLevel.MEDIUM:
            return SingleBitFlip()
        return MultiRegisterBitFlip(count=high_intensity_registers)

    def build_trigger(self) -> Trigger:
        return EveryNCalls(self.call_interval)


@dataclass
class TestPlan:
    """An ordered collection of experiment specifications."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    name: str
    specs: List[ExperimentSpec] = field(default_factory=list)
    description: str = ""

    def add(self, spec: ExperimentSpec) -> None:
        self.specs.append(spec)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def validate(self) -> None:
        if not self.specs:
            raise PlanError(f"test plan {self.name!r} has no experiments")
        seen: set = set()
        duplicates: List[str] = []
        for spec in self.specs:
            if spec.name in seen and spec.name not in duplicates:
                duplicates.append(spec.name)
            seen.add(spec.name)
        if duplicates:
            raise PlanError(
                f"test plan {self.name!r} has duplicate experiment names: "
                f"{duplicates}; names must be unique within a plan — together "
                f"with seed and scenario they form the checkpoint/resume "
                f"fallback key"
            )

    def describe(self) -> str:
        lines = [f"Test plan {self.name!r}: {len(self.specs)} experiments"]
        if self.description:
            lines.append(f"  {self.description}")
        for spec in self.specs[:5]:
            lines.append(f"  - {spec.describe()}")
        if len(self.specs) > 5:
            lines.append(f"  ... and {len(self.specs) - 5} more")
        return "\n".join(lines)


def build_intensity_plan(
    intensity: IntensityLevel,
    target: InjectionTarget,
    *,
    num_tests: int,
    scenario: Scenario = Scenario.STEADY_STATE,
    duration: float = PAPER_TEST_DURATION,
    base_seed: int = 0,
    name: Optional[str] = None,
    high_intensity_registers: int = 4,
) -> TestPlan:
    """Build the paper's medium- or high-intensity test plan for one target."""
    if num_tests <= 0:
        raise CampaignError("a test plan needs at least one test")
    plan_name = name or f"{intensity.value}-intensity-{target.describe()}"
    plan = TestPlan(
        name=plan_name,
        description=(
            f"{intensity.value} intensity: {intensity.build_fault_model(high_intensity_registers=high_intensity_registers).describe()} "
            f"once every {intensity.call_interval} calls, "
            f"{num_tests} tests of {duration:.0f}s each"
        ),
    )
    for index in range(num_tests):
        plan.add(
            ExperimentSpec(
                name=f"{plan_name}-{index:04d}",
                target=target,
                trigger=intensity.build_trigger(),
                fault_model=intensity.build_fault_model(
                    high_intensity_registers=high_intensity_registers
                ),
                scenario=scenario,
                duration=duration,
                seed=base_seed + index,
                intensity=intensity.value,
            )
        )
    plan.validate()
    return plan


def build_custom_plan(
    name: str,
    target: InjectionTarget,
    trigger_factory: Callable[[], Trigger],
    fault_model_factory: Callable[[], FaultModel],
    *,
    num_tests: int,
    scenario: Scenario = Scenario.STEADY_STATE,
    duration: float = PAPER_TEST_DURATION,
    base_seed: int = 0,
    intensity: str = "custom",
) -> TestPlan:
    """Build a plan from arbitrary trigger/fault-model factories (ablations)."""
    if num_tests <= 0:
        raise CampaignError("a test plan needs at least one test")
    plan = TestPlan(name=name)
    for index in range(num_tests):
        plan.add(
            ExperimentSpec(
                name=f"{name}-{index:04d}",
                target=target,
                trigger=trigger_factory(),
                fault_model=fault_model_factory(),
                scenario=scenario,
                duration=duration,
                seed=base_seed + index,
                intensity=intensity,
            )
        )
    plan.validate()
    return plan


# The paper plans are catalog entries compiled through the declarative layer
# (see the catalog in :mod:`repro.core.config`). Spec identities are
# byte-identical to the hand-written builders these functions used to inline,
# so checkpoints recorded before the refactor still resume. Imports are local
# because config builds on TestPlan/IntensityLevel from this module.

def paper_figure3_plan(*, num_tests: int = 200, duration: float = PAPER_TEST_DURATION,
                       base_seed: int = 0) -> TestPlan:
    """The Figure-3 campaign: medium intensity on the non-root cell's trap handler."""
    from repro.core.config import catalog_config
    return catalog_config("fig3", num_tests=num_tests, duration=duration,
                          base_seed=base_seed).compile()


def paper_high_intensity_root_plan(*, num_tests: int = 60, duration: float = 20.0,
                                   base_seed: int = 1000) -> TestPlan:
    """The high-intensity root-cell campaign (invalid-arguments finding)."""
    from repro.core.config import catalog_config
    return catalog_config("high-root", num_tests=num_tests, duration=duration,
                          base_seed=base_seed).compile()


def paper_high_intensity_nonroot_plan(*, num_tests: int = 60, duration: float = 20.0,
                                      base_seed: int = 2000) -> TestPlan:
    """The high-intensity non-root campaign (inconsistent-state finding)."""
    from repro.core.config import catalog_config
    return catalog_config("high-nonroot", num_tests=num_tests,
                          duration=duration, base_seed=base_seed).compile()
