"""repro — fault-injection assessment of a partitioning hypervisor.

Reproduction of "Certify the Uncertified: Towards Assessment of Virtualization
for Mixed-criticality in the Automotive Domain" (Cinque, De Simone, Marchetta —
DSN 2022). The package contains:

* :mod:`repro.hw` — a behavioural model of the Banana Pi testbed;
* :mod:`repro.hypervisor` — a Jailhouse-like static partitioning hypervisor
  with the three hookable entry points the paper profiles;
* :mod:`repro.guests` — Linux root-cell and FreeRTOS non-root-cell models
  running the paper's workload;
* :mod:`repro.core` — the fault-injection framework itself (fault models,
  triggers, targets, injector, monitors, outcome classification, campaign
  orchestration, analysis, reporting);
* :mod:`repro.safety` — the ISO 26262 / SEooC assessment layer;
* :mod:`repro.baselines` — Bao-like and no-isolation comparison systems;
* :mod:`repro.analysis` — statistics and ASCII figure rendering.

Quickstart::

    from repro import quick_campaign
    result = quick_campaign(num_tests=10, duration=10.0)
    print(result.outcome_counts())
"""

from __future__ import annotations

from repro.core.campaign import Campaign, CampaignResult
from repro.core.experiment import Experiment, ExperimentResult, ExperimentSpec, Scenario
from repro.core.faultmodels import MultiRegisterBitFlip, SingleBitFlip
from repro.core.injection import FaultInjector
from repro.core.outcomes import Outcome, OutcomeClassifier
from repro.core.plan import IntensityLevel, TestPlan, build_intensity_plan, paper_figure3_plan
from repro.core.sut import JailhouseSUT, SutConfig
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls, ProbabilisticTrigger
from repro.safety.evidence import build_evidence_report
from repro.safety.seooc import SeoocAssessment

__version__ = "1.0.0"

__all__ = [
    "Campaign",
    "CampaignResult",
    "EveryNCalls",
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "FaultInjector",
    "InjectionTarget",
    "IntensityLevel",
    "JailhouseSUT",
    "MultiRegisterBitFlip",
    "Outcome",
    "OutcomeClassifier",
    "ProbabilisticTrigger",
    "Scenario",
    "SeoocAssessment",
    "SingleBitFlip",
    "SutConfig",
    "TestPlan",
    "build_evidence_report",
    "build_intensity_plan",
    "paper_figure3_plan",
    "quick_campaign",
    "__version__",
]


def quick_campaign(*, num_tests: int = 10, duration: float = 10.0,
                   base_seed: int = 0) -> CampaignResult:
    """Run a small Figure-3-style campaign (for demos and smoke tests)."""
    plan = paper_figure3_plan(num_tests=num_tests, duration=duration,
                              base_seed=base_seed)
    return Campaign(plan).run()
