"""Jailhouse-like partitioning hypervisor model.

This subpackage models the static partitioning hypervisor assessed by the
paper: a root cell plus statically configured non-root cells, each owning a
disjoint set of CPUs, memory regions, and interrupt lines. The three
virtualization entry points profiled by the paper —
``arch_handle_hvc()``, ``arch_handle_trap()``, and ``irqchip_handle_irq()`` —
are exposed as hookable handler methods so the fault-injection framework can
corrupt the saved guest context exactly where the paper's patch does.
"""

from repro.hypervisor.cell import Cell, CellState
from repro.hypervisor.config import CellConfig, ConsoleConfig, MemoryAssignment, SystemConfig
from repro.hypervisor.core import Hypervisor, HypervisorEvent, HypervisorState
from repro.hypervisor.handlers import ArchHandlers, TrapResult
from repro.hypervisor.hypercalls import Hypercall, HypercallResult, ReturnCode
from repro.hypervisor.ivshmem import IvshmemChannel
from repro.hypervisor.paging import CellMemoryMap, Stage2Mapping
from repro.hypervisor.traps import ExceptionClass, TrapCode
from repro.hypervisor.cli import JailhouseCli

__all__ = [
    "ArchHandlers",
    "Cell",
    "CellConfig",
    "CellMemoryMap",
    "CellState",
    "ConsoleConfig",
    "ExceptionClass",
    "Hypercall",
    "HypercallResult",
    "Hypervisor",
    "HypervisorEvent",
    "HypervisorState",
    "IvshmemChannel",
    "JailhouseCli",
    "MemoryAssignment",
    "ReturnCode",
    "Stage2Mapping",
    "SystemConfig",
    "TrapCode",
    "TrapResult",
]
