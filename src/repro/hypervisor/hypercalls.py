"""Hypercall interface of the Jailhouse model.

The root cell manages non-root cells through hypercalls issued with the
``hvc`` instruction; ``arch_handle_hvc()`` reads the hypercall number from
``r0`` and its arguments from ``r1``/``r2``, dispatches, and writes the result
back to ``r0``. The numbering and error codes follow Jailhouse v0.12 so the
"invalid arguments" behaviour observed by the paper for corrupted high-
intensity injections falls out of the same validation logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Hypercall(enum.IntEnum):
    """Hypercall numbers (Jailhouse v0.12 ABI)."""

    DISABLE = 0
    CELL_CREATE = 1
    CELL_START = 2
    CELL_SET_LOADABLE = 3
    CELL_DESTROY = 4
    HYPERVISOR_GET_INFO = 5
    CELL_GET_STATE = 6
    CPU_GET_INFO = 7
    DEBUG_CONSOLE_PUTC = 8


class ReturnCode(enum.IntEnum):
    """Hypercall return codes (negative errno convention)."""

    SUCCESS = 0
    EPERM = -1
    ENOENT = -2
    EIO = -5
    ENOMEM = -12
    EBUSY = -16
    EEXIST = -17
    EINVAL = -22
    ENOSYS = -38

    @classmethod
    def describe(cls, value: int) -> str:
        try:
            return cls(value).name
        except ValueError:
            return f"unknown({value})"


#: Human-readable message associated with each error, matching what the
#: management tool prints ("Invalid argument" is the string the paper quotes).
RETURN_MESSAGES = {
    ReturnCode.SUCCESS: "Success",
    ReturnCode.EPERM: "Operation not permitted",
    ReturnCode.ENOENT: "No such cell",
    ReturnCode.EIO: "Input/output error",
    ReturnCode.ENOMEM: "Out of memory",
    ReturnCode.EBUSY: "Device or resource busy",
    ReturnCode.EEXIST: "Cell already exists",
    ReturnCode.EINVAL: "Invalid argument",
    ReturnCode.ENOSYS: "Function not implemented",
}


@dataclass(frozen=True)
class HypercallRequest:
    """A decoded hypercall as read out of the trap context."""

    code: int
    arg1: int = 0
    arg2: int = 0
    cpu_id: int = 0
    cell_id: Optional[int] = None

    def known(self) -> bool:
        """Whether the code corresponds to a defined hypercall."""
        try:
            Hypercall(self.code)
        except ValueError:
            return False
        return True

    @property
    def hypercall(self) -> Optional[Hypercall]:
        try:
            return Hypercall(self.code)
        except ValueError:
            return None


@dataclass(frozen=True)
class HypercallResult:
    """Outcome of dispatching a hypercall."""

    request: HypercallRequest
    code: int
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.code >= 0

    @property
    def message(self) -> str:
        try:
            base = RETURN_MESSAGES[ReturnCode(self.code)]
        except ValueError:
            base = f"error {self.code}"
        return f"{base}: {self.detail}" if self.detail else base


def is_privileged(call: Hypercall) -> bool:
    """Whether a hypercall may only be issued by the root cell."""
    return call in {
        Hypercall.DISABLE,
        Hypercall.CELL_CREATE,
        Hypercall.CELL_START,
        Hypercall.CELL_SET_LOADABLE,
        Hypercall.CELL_DESTROY,
    }
