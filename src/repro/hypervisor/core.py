"""The partitioning hypervisor itself.

:class:`Hypervisor` owns the cell registry, dispatches hypercalls, brings
CPUs online for non-root cells (the CPU-hotplug "swap" the paper mentions),
and implements the two failure reactions the paper observes:

* ``cpu_park()`` — the response to an unhandled trap (error code 0x24): the
  faulting CPU is parked, its cell stops producing output, but isolation is
  preserved and the cell can still be destroyed cleanly.
* panic ("panic park") — an unrecoverable internal error: the failure
  propagates to the whole system, all CPUs are parked and the root Linux
  reports a kernel panic on the console.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CellStateError, ConfigurationError, HypervisorError
from repro.hw.board import BananaPiBoard
from repro.hw.cpu import CpuCore, CpuState
from repro.hw.registers import (
    Register,
    TrapContext,
    format_context,
    is_valid_guest_cpsr,
    make_cpsr,
)
from repro.hypervisor.cell import Cell, CellState, LoadedImage
from repro.hypervisor.config import CellConfig, SystemConfig
from repro.hypervisor.handlers import ArchHandlers, PSCI_CPU_ON, TrapResult
from repro.hypervisor.hypercalls import (
    Hypercall,
    HypercallRequest,
    HypercallResult,
    ReturnCode,
    is_privileged,
)
from repro.hypervisor.ivshmem import IvshmemChannel
from repro.hypervisor.paging import check_host_exclusivity
from repro.hypervisor.traps import TrapCode, encode_hsr

#: Console tag used for hypervisor-generated serial output.
HV_CONSOLE = "hypervisor"

#: Base guest-physical address (inside root RAM) where config blobs are staged.
CONFIG_STAGING_BASE = 0x4100_0000

#: Number of hypervisor entries a CPU takes on the target core during the
#: hotplug "swap" that hands it from the root cell to a starting non-root
#: cell (wait-loop iterations plus maintenance work before the final PSCI
#: reset). Injections filtered to that CPU can corrupt this sequence, which is
#: how the paper's high-intensity non-root experiments leave the cell
#: allocated-but-dead.
BRINGUP_TRAP_STEPS = 150


class HypervisorState(enum.Enum):
    """Lifecycle state of the hypervisor."""

    DISABLED = "disabled"
    ENABLED = "enabled"
    PANICKED = "panicked"


class HypervisorEventKind(enum.Enum):
    """Kinds of events recorded for outcome classification."""

    ENABLED = "enabled"
    DISABLED = "disabled"
    CELL_CREATED = "cell_created"
    CELL_CREATE_FAILED = "cell_create_failed"
    CELL_STARTED = "cell_started"
    CELL_SHUTDOWN = "cell_shutdown"
    CELL_DESTROYED = "cell_destroyed"
    CPU_ONLINE = "cpu_online"
    CPU_ONLINE_FAILED = "cpu_online_failed"
    CPU_PARKED = "cpu_parked"
    CELL_FAILED = "cell_failed"
    PANIC = "panic"
    HYPERCALL_FAILED = "hypercall_failed"


@dataclass(frozen=True)
class HypervisorEvent:
    """One recorded hypervisor event."""

    timestamp: float
    kind: HypervisorEventKind
    cpu_id: Optional[int] = None
    cell_name: Optional[str] = None
    detail: str = ""


@dataclass(frozen=True)
class ManagementCallOutcome:
    """Result of a management operation issued through a real hypercall."""

    trap_result: TrapResult
    code: int

    @property
    def ok(self) -> bool:
        return self.trap_result is TrapResult.HANDLED and self.code >= 0

    @property
    def message(self) -> str:
        return ReturnCode.describe(self.code)


class Hypervisor:
    """Jailhouse-like static partitioning hypervisor."""

    def __init__(self, board: BananaPiBoard, *,
                 contains_guest_faults: bool = False,
                 escalate_parks_to_panic: bool = False) -> None:
        self.board = board
        self.state = HypervisorState.DISABLED
        self.handlers = ArchHandlers(self)
        #: Containment policy knobs used by the hypervisor-comparison ablation:
        #: ``contains_guest_faults`` makes unrecoverable guest faults fail only
        #: the offending cell (a Bao-like policy) instead of panicking the
        #: whole system; ``escalate_parks_to_panic`` removes containment
        #: entirely (the no-partitioning baseline).
        self.contains_guest_faults = contains_guest_faults
        self.escalate_parks_to_panic = escalate_parks_to_panic
        self.cells: Dict[int, Cell] = {}
        self.root_cell: Optional[Cell] = None
        self.events: List[HypervisorEvent] = []
        #: Timestamps parallel to ``events`` (non-decreasing: the simulation
        #: clock never moves backwards), enabling bisected window queries.
        self._event_times: List[float] = []
        self.ivshmem_channels: List[IvshmemChannel] = []
        self.panic_reason: Optional[str] = None
        self._next_cell_id = 0
        self._config_blobs: Dict[int, bytes] = {}
        self._next_config_address = CONFIG_STAGING_BASE
        self._system_config: Optional[SystemConfig] = None

    # -- lifecycle ------------------------------------------------------------------

    def enable(self, system_config: SystemConfig) -> Cell:
        """Enable the hypervisor and create the root cell."""
        if self.state is not HypervisorState.DISABLED:
            raise HypervisorError("hypervisor is already enabled")
        system_config.validate()
        self._system_config = system_config
        root = Cell(self._allocate_cell_id(), system_config.root_cell)
        root.mark_running()
        for cpu_id in root.cpus:
            cpu = self.board.cpu(cpu_id)
            if not cpu.is_executing:
                cpu.power_on(entry_point=self.board.config.dram_base, cell_id=root.cell_id)
            else:
                cpu.assigned_cell = root.cell_id
            root.cpu_online(cpu_id)
        self.cells[root.cell_id] = root
        self.root_cell = root
        self.state = HypervisorState.ENABLED
        self._record(HypervisorEventKind.ENABLED, cell_name=root.name,
                     detail="hypervisor enabled, root cell online")
        self._console(f"Initializing Jailhouse hypervisor on {self.board.config.name}")
        self._console(f"Activating root cell \"{root.name}\"")
        return root

    def disable(self) -> None:
        """Disable the hypervisor (only legal once every non-root cell is gone)."""
        self._require_enabled()
        non_root = [cell for cell in self.cells.values() if not cell.is_root]
        if non_root:
            raise HypervisorError(
                f"cannot disable: {len(non_root)} non-root cell(s) still exist"
            )
        self.state = HypervisorState.DISABLED
        self._record(HypervisorEventKind.DISABLED)

    def _require_enabled(self) -> None:
        if self.state is HypervisorState.DISABLED:
            raise HypervisorError("hypervisor is not enabled")

    # -- cell lookup helpers ------------------------------------------------------------

    def cell_by_id(self, cell_id: int) -> Optional[Cell]:
        return self.cells.get(cell_id)

    def cell_by_name(self, name: str) -> Optional[Cell]:
        for cell in self.cells.values():
            if cell.name == name:
                return cell
        return None

    def cell_of_cpu(self, cpu_id: int) -> Optional[Cell]:
        """Cell currently owning ``cpu_id`` (root included)."""
        for cell in self.cells.values():
            if cpu_id in cell.cpus:
                return cell
        return None

    def non_root_cells(self) -> List[Cell]:
        return [cell for cell in self.cells.values() if not cell.is_root]

    def _allocate_cell_id(self) -> int:
        cell_id = self._next_cell_id
        self._next_cell_id += 1
        return cell_id

    # -- config staging (what the root cell does before CELL_CREATE) -----------------------

    def stage_config(self, config: CellConfig) -> int:
        """Place a serialized cell config in root memory; returns its address."""
        config.validate()
        blob = config.to_bytes()
        address = self._next_config_address
        self._next_config_address += (len(blob) + 0xFFF) & ~0xFFF
        self._config_blobs[address] = blob
        return address

    # -- management API issued through real hypercalls ------------------------------------------

    def issue_hypercall(self, cpu_id: int, code: int, arg1: int = 0,
                        arg2: int = 0) -> ManagementCallOutcome:
        """Issue a hypercall from the guest running on ``cpu_id``.

        The call goes through the real ``arch_handle_hvc`` entry point, so any
        fault-injection hooks installed there see (and may corrupt) it — this
        is how the paper's high-intensity root-cell experiments reach the cell
        management path.
        """
        if self.state is HypervisorState.DISABLED:
            return ManagementCallOutcome(trap_result=TrapResult.PANIC,
                                         code=int(ReturnCode.EIO))
        cpu = self.board.cpu(cpu_id)
        if not cpu.is_executing:
            # The issuing CPU is parked or offline (e.g. after a panic park):
            # the management request cannot even be submitted.
            return ManagementCallOutcome(trap_result=TrapResult.PANIC,
                                         code=int(ReturnCode.EIO))
        cpu.registers.write(Register.R0, code)
        cpu.registers.write(Register.R1, arg1)
        cpu.registers.write(Register.R2, arg2)
        context = cpu.enter_trap(
            "hvc", encode_hsr(TrapCode.HYPERCALL), timestamp=self.board.clock.now
        )
        result = self.handlers.arch_handle_hvc(cpu, context)
        raw = context.read(Register.R0)
        signed = raw - (1 << 32) if raw >= (1 << 31) else raw
        return ManagementCallOutcome(trap_result=result, code=signed)

    # -- hypercall dispatch --------------------------------------------------------------------

    def handle_hypercall(self, cell: Optional[Cell],
                         request: HypercallRequest) -> HypercallResult:
        """Validate and dispatch one hypercall request."""
        if self.state is HypervisorState.DISABLED:
            return HypercallResult(request, int(ReturnCode.EIO),
                                   "hypervisor is disabled")
        call = request.hypercall
        if call is None:
            result = HypercallResult(request, int(ReturnCode.ENOSYS),
                                     f"unknown hypercall {request.code}")
            self._record_failure(request, result)
            return result
        if is_privileged(call) and (cell is None or not cell.is_root):
            result = HypercallResult(request, int(ReturnCode.EPERM),
                                     "privileged hypercall from non-root cell")
            self._record_failure(request, result)
            return result

        dispatch = {
            Hypercall.DISABLE: self._hc_disable,
            Hypercall.CELL_CREATE: self._hc_cell_create,
            Hypercall.CELL_START: self._hc_cell_start,
            Hypercall.CELL_SET_LOADABLE: self._hc_cell_set_loadable,
            Hypercall.CELL_DESTROY: self._hc_cell_destroy,
            Hypercall.HYPERVISOR_GET_INFO: self._hc_get_info,
            Hypercall.CELL_GET_STATE: self._hc_cell_get_state,
            Hypercall.CPU_GET_INFO: self._hc_cpu_get_info,
            Hypercall.DEBUG_CONSOLE_PUTC: self._hc_console_putc,
        }
        result = dispatch[call](cell, request)
        if not result.ok:
            self._record_failure(request, result)
        return result

    def _record_failure(self, request: HypercallRequest,
                        result: HypercallResult) -> None:
        self._record(
            HypervisorEventKind.HYPERCALL_FAILED,
            cpu_id=request.cpu_id,
            detail=f"hypercall {request.code}: {result.message}",
        )

    # individual hypercalls ------------------------------------------------------------

    def _hc_disable(self, cell: Optional[Cell],
                    request: HypercallRequest) -> HypercallResult:
        if self.non_root_cells():
            return HypercallResult(request, int(ReturnCode.EBUSY),
                                   "non-root cells still exist")
        self.state = HypervisorState.DISABLED
        self._record(HypervisorEventKind.DISABLED)
        return HypercallResult(request, int(ReturnCode.SUCCESS))

    def _hc_cell_create(self, cell: Optional[Cell],
                        request: HypercallRequest) -> HypercallResult:
        blob = self._config_blobs.get(request.arg1)
        if blob is None:
            return HypercallResult(request, int(ReturnCode.EINVAL),
                                   f"no configuration at 0x{request.arg1:08x}")
        try:
            config = CellConfig.from_bytes(blob)
        except ConfigurationError as exc:
            return HypercallResult(request, int(ReturnCode.EINVAL), str(exc))
        if self.cell_by_name(config.name) is not None:
            return HypercallResult(request, int(ReturnCode.EEXIST),
                                   f"cell {config.name!r} already exists")
        assert self.root_cell is not None
        if not config.cpus <= self.root_cell.cpus:
            return HypercallResult(
                request, int(ReturnCode.EINVAL),
                f"CPUs {sorted(config.cpus - self.root_cell.cpus)} not owned by root",
            )
        new_cell = Cell(self._allocate_cell_id(), config)
        # Isolation invariant: the new cell's host-physical ranges must not
        # collide with any other non-root cell's unless both sides mark them
        # shared (the root cell legitimately retains shared windows).
        try:
            check_host_exclusivity(
                [c.memory_map for c in self.non_root_cells()] + [new_cell.memory_map]
            )
        except HypervisorError as exc:
            self._next_cell_id -= 1
            return HypercallResult(request, int(ReturnCode.EINVAL), str(exc))
        # CPU hotplug "swap": the root cell offlines the CPUs and hands them over.
        for cpu_id in config.cpus:
            self.root_cell.cpus.discard(cpu_id)
            self.root_cell.cpu_offline(cpu_id)
            cpu = self.board.cpu(cpu_id)
            cpu.power_off()
            cpu.state = CpuState.WAIT_FOR_POWERON
            cpu.assigned_cell = new_cell.cell_id
        self.root_cell.irqs -= config.irqs
        self.cells[new_cell.cell_id] = new_cell
        self._record(HypervisorEventKind.CELL_CREATED, cell_name=config.name,
                     cpu_id=request.cpu_id)
        self._console(f"Created cell \"{config.name}\"")
        return HypercallResult(request, new_cell.cell_id)

    def _hc_cell_start(self, cell: Optional[Cell],
                       request: HypercallRequest) -> HypercallResult:
        target = self.cell_by_id(request.arg1)
        if target is None:
            return HypercallResult(request, int(ReturnCode.ENOENT),
                                   f"no cell with id {request.arg1}")
        if target.is_root:
            return HypercallResult(request, int(ReturnCode.EINVAL),
                                   "cannot start the root cell")
        if target.state.is_running:
            return HypercallResult(request, int(ReturnCode.EBUSY),
                                   f"cell {target.name!r} is already running")
        entry = target.entry_point()
        if entry is None:
            ram = target.memory_map.ram_mappings()
            entry = ram[0].virt_start if ram else 0
        # Jailhouse marks the cell running before the target CPUs have actually
        # reset onto it; the divergence between this state and reality is the
        # "inconsistent state" the paper flags.
        target.mark_running()
        self._record(HypervisorEventKind.CELL_STARTED, cell_name=target.name,
                     cpu_id=request.cpu_id)
        self._console(f"Started cell \"{target.name}\"")
        for cpu_id in sorted(target.cpus):
            self._wake_cpu_for_cell(target, cpu_id, entry)
        return HypercallResult(request, int(ReturnCode.SUCCESS))

    def _hc_cell_set_loadable(self, cell: Optional[Cell],
                              request: HypercallRequest) -> HypercallResult:
        target = self.cell_by_id(request.arg1)
        if target is None:
            return HypercallResult(request, int(ReturnCode.ENOENT),
                                   f"no cell with id {request.arg1}")
        if target.is_root:
            return HypercallResult(request, int(ReturnCode.EINVAL),
                                   "cannot shut down the root cell")
        self._stop_cell_cpus(target)
        target.mark_shut_down()
        self._record(HypervisorEventKind.CELL_SHUTDOWN, cell_name=target.name,
                     cpu_id=request.cpu_id)
        self._console(f"Cell \"{target.name}\" can be loaded")
        return HypercallResult(request, int(ReturnCode.SUCCESS))

    def _hc_cell_destroy(self, cell: Optional[Cell],
                         request: HypercallRequest) -> HypercallResult:
        target = self.cell_by_id(request.arg1)
        if target is None:
            return HypercallResult(request, int(ReturnCode.ENOENT),
                                   f"no cell with id {request.arg1}")
        if target.is_root:
            return HypercallResult(request, int(ReturnCode.EINVAL),
                                   "cannot destroy the root cell")
        self._stop_cell_cpus(target)
        target.mark_shut_down()
        assert self.root_cell is not None
        # Return CPUs and peripherals to the root cell, as observed working in
        # the paper even after a CPU park.
        for cpu_id in target.config.cpus:
            cpu = self.board.cpu(cpu_id)
            cpu.reset()
            cpu.power_on(entry_point=self.board.config.dram_base,
                         cell_id=self.root_cell.cell_id)
            self.root_cell.cpus.add(cpu_id)
            self.root_cell.cpu_online(cpu_id)
            if self.root_cell.guest is not None:
                self.root_cell.guest.on_cpu_online(cpu_id)
        self.root_cell.irqs |= target.config.irqs
        del self.cells[target.cell_id]
        self._record(HypervisorEventKind.CELL_DESTROYED, cell_name=target.name,
                     cpu_id=request.cpu_id)
        self._console(f"Closed cell \"{target.name}\"")
        return HypercallResult(request, int(ReturnCode.SUCCESS))

    def _hc_get_info(self, cell: Optional[Cell],
                     request: HypercallRequest) -> HypercallResult:
        return HypercallResult(request, len(self.cells))

    def _hc_cell_get_state(self, cell: Optional[Cell],
                           request: HypercallRequest) -> HypercallResult:
        target = self.cell_by_id(request.arg1)
        if target is None:
            return HypercallResult(request, int(ReturnCode.ENOENT),
                                   f"no cell with id {request.arg1}")
        states = {
            CellState.RUNNING: 0,
            CellState.RUNNING_LOCKED: 1,
            CellState.SHUT_DOWN: 2,
            CellState.FAILED: 3,
        }
        return HypercallResult(request, states[target.state])

    def _hc_cpu_get_info(self, cell: Optional[Cell],
                         request: HypercallRequest) -> HypercallResult:
        if not 0 <= request.arg1 < self.board.num_cpus:
            return HypercallResult(request, int(ReturnCode.EINVAL),
                                   f"no CPU with id {request.arg1}")
        cpu = self.board.cpu(request.arg1)
        states = {
            CpuState.ONLINE: 0,
            CpuState.WAIT_FOR_POWERON: 1,
            CpuState.OFFLINE: 2,
            CpuState.PARKED: 3,
            CpuState.FAILED: 4,
        }
        return HypercallResult(request, states[cpu.state])

    def _hc_console_putc(self, cell: Optional[Cell],
                         request: HypercallRequest) -> HypercallResult:
        source = cell.name if cell is not None else HV_CONSOLE
        self.board.uart.write_char(source, chr(request.arg1 & 0xFF))
        return HypercallResult(request, int(ReturnCode.SUCCESS))

    # -- CPU bring-up / tear-down --------------------------------------------------------------

    def _wake_cpu_for_cell(self, cell: Cell, cpu_id: int, entry: int) -> bool:
        """Reset a waiting CPU onto ``cell`` through the hotplug-swap path.

        The bring-up executes hypervisor code *on the target CPU*: the core
        spins through a wait loop (modeled as a sequence of hypervisor entries
        sharing one saved context) before the final PSCI ``CPU_ON`` resets it
        onto the cell's entry point. Fault-injection hooks filtered to that CPU
        see every one of these entries, and because the cell entry point and
        PSCI arguments live in the saved context across the whole sequence, a
        corruption anywhere in it can leave the CPU unable to come online —
        the paper's "CPU fails to come online / cell left in a non-executable
        state" finding.
        """
        cpu = self.board.cpu(cpu_id)
        context = TrapContext(
            cpu_id=cpu_id,
            registers={
                Register.R0: PSCI_CPU_ON,
                Register.R1: cpu_id,
                Register.R2: entry,
                Register.CPSR: make_cpsr(0b10011, irq_masked=True),
            },
            hsr=encode_hsr(TrapCode.SMC),
            exception_vector="smc",
            timestamp=self.board.clock.now,
        )
        # Wait-loop iterations of the hotplug swap: each is a hypervisor entry
        # on the target CPU that preserves (and may expose to corruption) the
        # pending PSCI arguments.
        for _ in range(BRINGUP_TRAP_STEPS):
            context.exception_vector = "bringup"
            context.hsr = encode_hsr(TrapCode.WFI)
            self.handlers.arch_handle_trap(cpu, context)
            if self.panicked:
                return False
        # Final step: the PSCI CPU_ON request that resets the core onto the cell.
        context.exception_vector = "smc"
        context.hsr = encode_hsr(TrapCode.SMC)
        result = self.handlers.arch_handle_trap(cpu, context)
        online = result is TrapResult.HANDLED and cpu_id in cell.online_cpus
        if not online and cpu_id not in cell.online_cpus:
            now = self.board.clock.now
            if not any(
                event.kind is HypervisorEventKind.CPU_ONLINE_FAILED
                and event.cpu_id == cpu_id
                for event in self.events_between(now, now)
            ):
                self._record(
                    HypervisorEventKind.CPU_ONLINE_FAILED,
                    cpu_id=cpu_id,
                    cell_name=cell.name,
                    detail="hotplug swap derailed before the PSCI reset",
                )
                self._console(
                    f"CPU {cpu_id} failed to come online for cell \"{cell.name}\""
                )
        return online

    def psci_cpu_on(self, cpu: CpuCore, entry_point: int,
                    context: TrapContext) -> bool:
        """Bring ``cpu`` online for its assigned cell at ``entry_point``."""
        cell = self.cell_of_cpu(cpu.cpu_id)
        if cell is None:
            return False
        valid_entry = cell.memory_map.is_executable(entry_point)
        valid_target = context.read(Register.R1) == cpu.cpu_id
        valid_mode = is_valid_guest_cpsr(context.cpsr)
        if not valid_entry or not valid_mode or not valid_target:
            # The CPU fails to come online; Jailhouse still believes the cell
            # started. The cell is left in a non-executable state.
            self._record(
                HypervisorEventKind.CPU_ONLINE_FAILED,
                cpu_id=cpu.cpu_id,
                cell_name=cell.name,
                detail=(
                    f"entry=0x{entry_point:08x} valid_entry={valid_entry} "
                    f"valid_mode={valid_mode}"
                ),
            )
            self._console(
                f"CPU {cpu.cpu_id} failed to come online for cell \"{cell.name}\""
            )
            cpu.state = CpuState.FAILED
            return False
        cpu.state = CpuState.OFFLINE
        cpu.power_on(entry_point=entry_point, cell_id=cell.cell_id)
        cell.cpu_online(cpu.cpu_id)
        if cell.guest is not None:
            cell.guest.on_cpu_online(cpu.cpu_id)
        self._record(HypervisorEventKind.CPU_ONLINE, cpu_id=cpu.cpu_id,
                     cell_name=cell.name)
        return True

    def psci_cpu_off(self, cpu: CpuCore) -> None:
        cell = self.cell_of_cpu(cpu.cpu_id)
        if cell is not None:
            cell.cpu_offline(cpu.cpu_id)
        cpu.power_off()

    def _stop_cell_cpus(self, cell: Cell) -> None:
        for cpu_id in cell.cpus:
            cpu = self.board.cpu(cpu_id)
            if cpu.state in (CpuState.ONLINE, CpuState.PARKED, CpuState.FAILED):
                cpu.power_off()
            cpu.state = CpuState.WAIT_FOR_POWERON
            cpu.assigned_cell = cell.cell_id
            cell.cpu_offline(cpu_id)

    # -- failure reactions ------------------------------------------------------------------------

    def report_unhandled_trap(self, cpu: CpuCore, context: TrapContext, *,
                              error_code: int,
                              fault_address: Optional[int] = None) -> None:
        """Dump the context and park the faulting CPU (the paper's 0x24 outcome)."""
        detail = f"unhandled trap exception, error 0x{error_code:02x}"
        if fault_address is not None:
            detail += f", fault address 0x{fault_address:08x}"
        self._console(f"CPU {cpu.cpu_id}: {detail}")
        for line in format_context(context).splitlines():
            self._console(line)
        if self.escalate_parks_to_panic:
            # Without partitioning there is nothing to confine the fault to:
            # the shared kernel goes down with it.
            self.panic(detail, cpu_id=cpu.cpu_id)
            return
        self._console(f"Parking CPU {cpu.cpu_id} (cell left in faulted state)")
        self.cpu_park(cpu.cpu_id, detail, error_code=error_code)

    def cpu_park(self, cpu_id: int, reason: str, *,
                 error_code: Optional[int] = None) -> None:
        """Park one CPU; its cell keeps its reported state (per the paper)."""
        cpu = self.board.cpu(cpu_id)
        cpu.park(reason, timestamp=self.board.clock.now, error_code=error_code)
        cell = self.cell_of_cpu(cpu_id)
        if cell is not None:
            cell.cpu_offline(cpu_id)
        self._record(HypervisorEventKind.CPU_PARKED, cpu_id=cpu_id,
                     cell_name=cell.name if cell else None, detail=reason)

    def fail_cell(self, cell: Cell, reason: str, *,
                  error_code: Optional[int] = None) -> None:
        """Contain an unrecoverable guest fault to its cell (Bao-like policy)."""
        self._console(f"Cell \"{cell.name}\" failed: {reason}")
        for cpu_id in sorted(cell.cpus):
            cpu = self.board.cpu(cpu_id)
            if cpu.state is CpuState.ONLINE:
                cpu.park(f"cell failure: {reason}",
                         timestamp=self.board.clock.now, error_code=error_code)
            cell.cpu_offline(cpu_id)
        cell.mark_failed()
        self._record(HypervisorEventKind.CELL_FAILED, cell_name=cell.name,
                     detail=reason)

    def panic(self, reason: str, *, cpu_id: Optional[int] = None) -> None:
        """Unrecoverable hypervisor error: propagate to the whole system."""
        if self.state is HypervisorState.PANICKED:
            return
        self.state = HypervisorState.PANICKED
        self.panic_reason = reason
        self._console(f"JAILHOUSE PANIC on CPU {cpu_id}: {reason}")
        self._record(HypervisorEventKind.PANIC, cpu_id=cpu_id, detail=reason)
        for cpu in self.board.cpus:
            if cpu.state is CpuState.ONLINE:
                cpu.park(f"panic park: {reason}", timestamp=self.board.clock.now)
        for cell in self.cells.values():
            cell.online_cpus.clear()
            if cell.guest is not None:
                cell.guest.on_system_panic(reason)

    @property
    def panicked(self) -> bool:
        return self.state is HypervisorState.PANICKED

    # -- interrupt routing --------------------------------------------------------------------------

    def route_irq(self, cpu: CpuCore, irq: int) -> None:
        """Forward an acknowledged interrupt to the cell that owns it."""
        owner: Optional[Cell]
        if irq < 32:
            owner = self.cell_of_cpu(cpu.cpu_id)
        else:
            owner = next(
                (cell for cell in self.cells.values() if irq in cell.irqs), None
            )
        if owner is None:
            self._console(f"Spurious IRQ {irq} on CPU {cpu.cpu_id}")
            return
        owner.stats.interrupts += 1
        if owner.guest is not None:
            owner.guest.on_interrupt(irq, cpu.cpu_id)

    # -- ivshmem -------------------------------------------------------------------------------------

    def create_ivshmem_channel(self, peer_a: str, peer_b: str, *,
                               doorbell_irq: int = 155) -> IvshmemChannel:
        """Create an inter-cell shared-memory channel between two cells."""
        for name in (peer_a, peer_b):
            if self.cell_by_name(name) is None:
                raise HypervisorError(f"no cell named {name!r}")
        channel = IvshmemChannel(
            f"ivshmem:{peer_a}<->{peer_b}", peer_a, peer_b,
            doorbell_irq=doorbell_irq, gic=self.board.gic,
        )
        self.ivshmem_channels.append(channel)
        return channel

    # -- observability ----------------------------------------------------------------------------------

    def _console(self, text: str) -> None:
        self.board.uart.write_line(HV_CONSOLE, text)

    def _record(self, kind: HypervisorEventKind, *, cpu_id: Optional[int] = None,
                cell_name: Optional[str] = None, detail: str = "") -> None:
        timestamp = self.board.clock.now
        self.events.append(
            HypervisorEvent(
                timestamp=timestamp,
                kind=kind,
                cpu_id=cpu_id,
                cell_name=cell_name,
                detail=detail,
            )
        )
        self._event_times.append(timestamp)

    def events_of_kind(self, kind: HypervisorEventKind) -> List[HypervisorEvent]:
        return [event for event in self.events if event.kind is kind]

    def events_between(self, start: float, end: float) -> List[HypervisorEvent]:
        """Events with ``start <= timestamp <= end`` (bisected, not scanned)."""
        lo = bisect_left(self._event_times, start)
        hi = bisect_right(self._event_times, end, lo)
        return self.events[lo:hi]

    def cell_list(self) -> str:
        """Render the cell table like ``jailhouse cell list``."""
        lines = ["ID    Name                     State           Assigned CPUs"]
        for cell in sorted(self.cells.values(), key=lambda c: c.cell_id):
            lines.append(cell.describe())
        return "\n".join(lines)

    # -- snapshot / restore ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture the hypervisor: cell registry, event log, channels, staging.

        Cells are captured by reference plus their mutable state, so a restore
        keeps object identity — guests attached to a cell stay attached to the
        *same* cell object. Cells created after the snapshot are dropped.
        """
        return {
            "state": self.state,
            "cells": [(cell_id, cell, cell.snapshot_state())
                      for cell_id, cell in self.cells.items()],
            "root_cell": self.root_cell,
            "events": list(self.events),
            "event_times": list(self._event_times),
            "ivshmem": [(channel, channel.snapshot_state())
                        for channel in self.ivshmem_channels],
            "panic_reason": self.panic_reason,
            "next_cell_id": self._next_cell_id,
            "config_blobs": dict(self._config_blobs),
            "next_config_address": self._next_config_address,
            "system_config": self._system_config,
            "handlers": self.handlers.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        self.state = state["state"]
        self.cells = {}
        for cell_id, cell, cell_state in state["cells"]:
            cell.restore_state(cell_state)
            self.cells[cell_id] = cell
        self.root_cell = state["root_cell"]
        self.events = list(state["events"])
        self._event_times = list(state["event_times"])
        self.ivshmem_channels = []
        for channel, channel_state in state["ivshmem"]:
            channel.restore_state(channel_state)
            self.ivshmem_channels.append(channel)
        self.panic_reason = state["panic_reason"]
        self._next_cell_id = state["next_cell_id"]
        self._config_blobs = dict(state["config_blobs"])
        self._next_config_address = state["next_config_address"]
        self._system_config = state["system_config"]
        self.handlers.restore_state(state["handlers"])
