"""Cell and system configuration structures.

Jailhouse cells are configured statically with C structures compiled into a
binary blob that the root cell passes to the ``CELL_CREATE`` hypercall. This
module models those structures in Python: a :class:`SystemConfig` describing
the root cell and hypervisor memory, and :class:`CellConfig` objects
describing each non-root cell (assigned CPUs, guest-physical memory
assignments, interrupt lines, console). Configurations validate themselves
and serialize to a binary blob with a magic signature, so the hypervisor's
``cell_create`` path can reject corrupted/unreadable configs with
``-EINVAL`` exactly as the real hypervisor does.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.hw.memory import MemoryFlags

#: Signature bytes at the start of a serialized cell configuration
#: (the real Jailhouse uses "JHCELL"/"JHSYST").
CELL_CONFIG_MAGIC = b"JHCELL"
SYSTEM_CONFIG_MAGIC = b"JHSYST"
CONFIG_REVISION = 13


@dataclass(frozen=True)
class MemoryAssignment:
    """One guest-physical memory assignment of a cell."""

    name: str
    virt_start: int
    phys_start: int
    size: int
    flags: MemoryFlags = MemoryFlags.RW
    shared: bool = False     # shared regions (ivshmem) may appear in two cells
    loadable: bool = False   # root cell may load an image here before start

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(
                f"memory assignment {self.name!r} must have positive size"
            )
        if self.virt_start < 0 or self.phys_start < 0:
            raise ConfigurationError(
                f"memory assignment {self.name!r} must have non-negative addresses"
            )

    @property
    def virt_end(self) -> int:
        return self.virt_start + self.size

    @property
    def phys_end(self) -> int:
        return self.phys_start + self.size

    def overlaps_phys(self, other: "MemoryAssignment") -> bool:
        return self.phys_start < other.phys_end and other.phys_start < self.phys_end

    def overlaps_virt(self, other: "MemoryAssignment") -> bool:
        return self.virt_start < other.virt_end and other.virt_start < self.virt_end


@dataclass(frozen=True)
class ConsoleConfig:
    """Which UART (if any) a cell may write its console output to."""

    uart_name: str = "uart0"
    enabled: bool = True


@dataclass
class CellConfig:
    """Static configuration of one cell."""

    name: str
    cpus: Set[int] = field(default_factory=set)
    memory: List[MemoryAssignment] = field(default_factory=list)
    irqs: Set[int] = field(default_factory=set)
    console: ConsoleConfig = field(default_factory=ConsoleConfig)
    is_root: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for structural problems."""
        if not self.name or len(self.name) > 31:
            raise ConfigurationError("cell name must be 1..31 characters")
        if not self.cpus:
            raise ConfigurationError(f"cell {self.name!r} must own at least one CPU")
        if any(cpu < 0 for cpu in self.cpus):
            raise ConfigurationError(f"cell {self.name!r} has negative CPU ids")
        if not self.memory:
            raise ConfigurationError(
                f"cell {self.name!r} must have at least one memory assignment"
            )
        for index, assignment in enumerate(self.memory):
            for other in self.memory[index + 1:]:
                if assignment.overlaps_virt(other):
                    raise ConfigurationError(
                        f"cell {self.name!r}: regions {assignment.name!r} and "
                        f"{other.name!r} overlap in guest-physical space"
                    )
        if any(irq < 0 for irq in self.irqs):
            raise ConfigurationError(f"cell {self.name!r} has negative IRQ ids")

    # -- convenience ------------------------------------------------------------

    def ram_assignments(self) -> List[MemoryAssignment]:
        """Assignments that are plain RAM (not IO)."""
        return [m for m in self.memory if not m.flags & MemoryFlags.IO]

    def total_ram(self) -> int:
        return sum(m.size for m in self.ram_assignments())

    def find_assignment(self, name: str) -> Optional[MemoryAssignment]:
        for assignment in self.memory:
            if assignment.name == name:
                return assignment
        return None

    # -- serialization -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the binary blob passed to ``CELL_CREATE``."""
        name_bytes = self.name.encode("ascii", errors="replace")[:31]
        header = struct.pack(
            "<6sH32sIII",
            CELL_CONFIG_MAGIC,
            CONFIG_REVISION,
            name_bytes.ljust(32, b"\0"),
            len(self.cpus),
            len(self.memory),
            len(self.irqs),
        )
        body = b""
        for cpu in sorted(self.cpus):
            body += struct.pack("<I", cpu)
        for assignment in self.memory:
            region_name = assignment.name.encode("ascii", errors="replace")[:31]
            body += struct.pack(
                "<32sQQQIBB2x",
                region_name.ljust(32, b"\0"),
                assignment.virt_start,
                assignment.phys_start,
                assignment.size,
                int(assignment.flags),
                int(assignment.shared),
                int(assignment.loadable),
            )
        for irq in sorted(self.irqs):
            body += struct.pack("<I", irq)
        return header + body

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CellConfig":
        """Parse a serialized configuration; raises on bad magic/truncation."""
        header_size = struct.calcsize("<6sH32sIII")
        if len(blob) < header_size:
            raise ConfigurationError("configuration blob is truncated")
        magic, revision, raw_name, n_cpus, n_mem, n_irqs = struct.unpack(
            "<6sH32sIII", blob[:header_size]
        )
        if magic != CELL_CONFIG_MAGIC:
            raise ConfigurationError("configuration blob has a bad signature")
        if revision != CONFIG_REVISION:
            raise ConfigurationError(
                f"configuration revision {revision} != {CONFIG_REVISION}"
            )
        name = raw_name.rstrip(b"\0").decode("ascii", errors="replace")
        offset = header_size
        cpus: Set[int] = set()
        for _ in range(n_cpus):
            (cpu,) = struct.unpack_from("<I", blob, offset)
            cpus.add(cpu)
            offset += 4
        memory: List[MemoryAssignment] = []
        mem_size = struct.calcsize("<32sQQQIBB2x")
        for index in range(n_mem):
            raw_region_name, virt, phys, size, flags, shared, loadable = struct.unpack_from(
                "<32sQQQIBB2x", blob, offset
            )
            region_name = raw_region_name.rstrip(b"\0").decode("ascii", errors="replace")
            memory.append(
                MemoryAssignment(
                    name=region_name or f"mem{index}",
                    virt_start=virt,
                    phys_start=phys,
                    size=size,
                    flags=MemoryFlags(flags),
                    shared=bool(shared),
                    loadable=bool(loadable),
                )
            )
            offset += mem_size
        irqs: Set[int] = set()
        for _ in range(n_irqs):
            (irq,) = struct.unpack_from("<I", blob, offset)
            irqs.add(irq)
            offset += 4
        config = cls(name=name, cpus=cpus, memory=memory, irqs=irqs)
        config.validate()
        return config


@dataclass
class SystemConfig:
    """System-wide configuration: hypervisor memory plus the root cell."""

    root_cell: CellConfig
    hypervisor_memory: MemoryAssignment = field(
        default_factory=lambda: MemoryAssignment(
            name="hypervisor",
            virt_start=0x7C00_0000,
            phys_start=0x7C00_0000,
            size=4 << 20,
            flags=MemoryFlags.RWX,
        )
    )

    def validate(self) -> None:
        if not self.root_cell.is_root:
            raise ConfigurationError("system configuration requires a root cell")
        self.root_cell.validate()
        for assignment in self.root_cell.memory:
            if assignment.overlaps_phys(self.hypervisor_memory):
                raise ConfigurationError(
                    "root cell memory overlaps the hypervisor's reserved region"
                )


# -- canonical Banana Pi configurations ------------------------------------------

#: Physical layout used by the canonical configurations below. The root cell
#: (Linux) keeps most of DRAM; a small window is carved out for the FreeRTOS
#: cell and a shared ivshmem page, mirroring the demo configs shipped with
#: Jailhouse for this board.
BANANAPI_DRAM_BASE = 0x4000_0000
FREERTOS_CELL_RAM_BASE = 0x7800_0000
FREERTOS_CELL_RAM_SIZE = 1 << 20          # 1 MiB
IVSHMEM_BASE = 0x7BF0_0000
IVSHMEM_SIZE = 0x0010_0000                # 1 MiB shared window
IVSHMEM_IRQ = 155
UART0_BASE = 0x01C2_8000
UART0_SIZE = 0x400
UART0_IRQ = 33


def bananapi_root_config(name: str = "BananaPi-Linux") -> CellConfig:
    """Root-cell configuration: Linux owning CPU 0 and most of DRAM."""
    config = CellConfig(
        name=name,
        cpus={0, 1},
        memory=[
            MemoryAssignment(
                name="ram-low",
                virt_start=BANANAPI_DRAM_BASE,
                phys_start=BANANAPI_DRAM_BASE,
                size=FREERTOS_CELL_RAM_BASE - BANANAPI_DRAM_BASE,
                flags=MemoryFlags.RWX,
            ),
            MemoryAssignment(
                name="uart0",
                virt_start=UART0_BASE,
                phys_start=UART0_BASE,
                size=UART0_SIZE,
                flags=MemoryFlags.RW | MemoryFlags.IO,
                shared=True,
            ),
            MemoryAssignment(
                name="ivshmem",
                virt_start=IVSHMEM_BASE,
                phys_start=IVSHMEM_BASE,
                size=IVSHMEM_SIZE,
                flags=MemoryFlags.RW,
                shared=True,
            ),
        ],
        irqs={UART0_IRQ, IVSHMEM_IRQ},
        console=ConsoleConfig(uart_name="uart0", enabled=True),
        is_root=True,
    )
    config.validate()
    return config


def freertos_cell_config(name: str = "FreeRTOS") -> CellConfig:
    """Non-root cell configuration: FreeRTOS on CPU 1 with 1 MiB of RAM."""
    config = CellConfig(
        name=name,
        cpus={1},
        memory=[
            MemoryAssignment(
                name="ram",
                virt_start=0x0,
                phys_start=FREERTOS_CELL_RAM_BASE,
                size=FREERTOS_CELL_RAM_SIZE,
                flags=MemoryFlags.RWX,
                loadable=True,
            ),
            MemoryAssignment(
                name="uart0",
                virt_start=UART0_BASE,
                phys_start=UART0_BASE,
                size=UART0_SIZE,
                flags=MemoryFlags.RW | MemoryFlags.IO,
                shared=True,
            ),
            MemoryAssignment(
                name="ivshmem",
                virt_start=0x3000_0000,
                phys_start=IVSHMEM_BASE,
                size=IVSHMEM_SIZE,
                flags=MemoryFlags.RW,
                shared=True,
            ),
        ],
        irqs={IVSHMEM_IRQ},
        console=ConsoleConfig(uart_name="uart0", enabled=True),
    )
    config.validate()
    return config


def bananapi_system_config() -> SystemConfig:
    """Full system configuration used by the paper's experiments."""
    system = SystemConfig(root_cell=bananapi_root_config())
    system.validate()
    return system
