"""Inter-cell shared-memory communication (ivshmem device model).

Jailhouse allows controlled communication between otherwise isolated cells
through the ``ivshmem`` device: a shared memory window plus a doorbell
interrupt. The paper's workload uses a send/receive task pair in the FreeRTOS
cell; this channel is what those tasks exchange messages over, and it gives
the integration tests a way to verify that isolation does *not* mean the cells
cannot cooperate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import HypervisorError
from repro.hw.gic import Gic


@dataclass(frozen=True)
class IvshmemMessage:
    """One message exchanged over the shared window."""

    sender: str
    payload: bytes
    sequence: int


class IvshmemChannel:
    """Point-to-point shared-memory channel between two cells."""

    def __init__(self, name: str, peer_a: str, peer_b: str, *,
                 capacity: int = 64, doorbell_irq: int = 155,
                 gic: Optional[Gic] = None) -> None:
        if peer_a == peer_b:
            raise HypervisorError("ivshmem peers must be two distinct cells")
        if capacity <= 0:
            raise HypervisorError("ivshmem capacity must be positive")
        self.name = name
        self.peers = (peer_a, peer_b)
        self.capacity = capacity
        self.doorbell_irq = doorbell_irq
        self._gic = gic
        self._queues: Dict[str, Deque[IvshmemMessage]] = {
            peer_a: deque(), peer_b: deque(),
        }
        self._sequence = 0
        self._doorbell_targets: Dict[str, Optional[int]] = {peer_a: None, peer_b: None}
        self.dropped = 0

    def _check_peer(self, cell_name: str) -> None:
        if cell_name not in self.peers:
            raise HypervisorError(
                f"cell {cell_name!r} is not a peer of ivshmem channel {self.name!r}"
            )

    def other_peer(self, cell_name: str) -> str:
        self._check_peer(cell_name)
        return self.peers[1] if cell_name == self.peers[0] else self.peers[0]

    def set_doorbell_target(self, cell_name: str, cpu_id: Optional[int]) -> None:
        """Configure which CPU receives the doorbell when ``cell_name`` is notified."""
        self._check_peer(cell_name)
        self._doorbell_targets[cell_name] = cpu_id

    def send(self, sender: str, payload: bytes) -> bool:
        """Send a message to the other peer. Returns False if the queue is full."""
        self._check_peer(sender)
        receiver = self.other_peer(sender)
        queue = self._queues[receiver]
        if len(queue) >= self.capacity:
            self.dropped += 1
            return False
        self._sequence += 1
        queue.append(
            IvshmemMessage(sender=sender, payload=bytes(payload), sequence=self._sequence)
        )
        self._ring_doorbell(receiver)
        return True

    def receive(self, receiver: str) -> Optional[IvshmemMessage]:
        """Pop the oldest pending message for ``receiver`` (None if empty)."""
        self._check_peer(receiver)
        queue = self._queues[receiver]
        if not queue:
            return None
        return queue.popleft()

    def pending(self, receiver: str) -> int:
        self._check_peer(receiver)
        return len(self._queues[receiver])

    def _ring_doorbell(self, receiver: str) -> None:
        if self._gic is None:
            return
        cpu_id = self._doorbell_targets.get(receiver)
        if cpu_id is None:
            return
        self._gic.raise_irq(self.doorbell_irq, cpu_id=cpu_id)

    def reset(self) -> None:
        """Drop all pending messages (used when a peer cell is destroyed)."""
        for queue in self._queues.values():
            queue.clear()

    # -- snapshot / restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture queued messages, sequence counter and doorbell routing."""
        return {
            "queues": {peer: list(queue) for peer, queue in self._queues.items()},
            "sequence": self._sequence,
            "doorbell_targets": dict(self._doorbell_targets),
            "dropped": self.dropped,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        for peer, queue in self._queues.items():
            queue.clear()
            queue.extend(state["queues"].get(peer, ()))
        self._sequence = state["sequence"]
        self._doorbell_targets = dict(state["doorbell_targets"])
        self.dropped = state["dropped"]
