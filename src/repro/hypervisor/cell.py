"""Cell object and state machine.

A *cell* is Jailhouse's unit of partitioning: a static set of CPUs, memory
assignments, and interrupt lines, optionally running a guest OS ("inmate").
The state machine mirrors Jailhouse v0.12: a cell is created in the
``SHUT_DOWN`` state, images are loaded while it is shut down, ``cell start``
moves it to ``RUNNING``, and shutdown/destroy return its resources to the
root cell. The paper's "inconsistent state" finding is precisely a divergence
between this reported state and the actual behaviour of the cell's CPUs.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.errors import CellStateError
from repro.hypervisor.config import CellConfig
from repro.hypervisor.paging import CellMemoryMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.guests.base import GuestOS


class CellState(enum.Enum):
    """Externally visible cell states (as reported by ``jailhouse cell list``)."""

    SHUT_DOWN = "shut down"
    RUNNING = "running"
    RUNNING_LOCKED = "running/locked"
    FAILED = "failed"

    @property
    def is_running(self) -> bool:
        return self in (CellState.RUNNING, CellState.RUNNING_LOCKED)


@dataclass
class CellStats:
    """Per-cell counters used by the analytics layer."""

    hypercalls: int = 0
    traps: int = 0
    interrupts: int = 0
    mmio_accesses: int = 0
    uart_lines: int = 0
    state_transitions: int = 0


@dataclass
class LoadedImage:
    """An image loaded into a loadable region of a shut-down cell."""

    region_name: str
    entry_point: int
    size: int
    description: str = ""


class Cell:
    """One Jailhouse cell (root or non-root)."""

    def __init__(self, cell_id: int, config: CellConfig) -> None:
        config.validate()
        self.cell_id = cell_id
        self.config = config
        self.state = CellState.SHUT_DOWN
        self.memory_map = CellMemoryMap.from_assignments(config.name, config.memory)
        self.cpus: Set[int] = set(config.cpus)
        self.irqs: Set[int] = set(config.irqs)
        self.guest: Optional["GuestOS"] = None
        self.loaded_images: List[LoadedImage] = []
        self.stats = CellStats()
        self._state_history: List[CellState] = [self.state]
        #: CPUs of this cell that actually came online; the divergence between
        #: this set and ``self.cpus`` while ``state`` reports RUNNING is the
        #: "inconsistent state" outcome observed by the paper.
        self.online_cpus: Set[int] = set()

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def is_root(self) -> bool:
        return self.config.is_root

    # -- state machine ------------------------------------------------------------

    def _transition(self, new_state: CellState) -> None:
        self.state = new_state
        self._state_history.append(new_state)
        self.stats.state_transitions += 1

    @property
    def state_history(self) -> List[CellState]:
        return list(self._state_history)

    def mark_running(self) -> None:
        """Record that ``cell start`` completed (the hypervisor's view)."""
        if self.state is CellState.RUNNING:
            raise CellStateError(f"cell {self.name!r} is already running")
        self._transition(CellState.RUNNING)

    def mark_shut_down(self) -> None:
        self._transition(CellState.SHUT_DOWN)
        self.online_cpus.clear()

    def mark_failed(self) -> None:
        self._transition(CellState.FAILED)

    # -- images and guests -----------------------------------------------------------

    def load_image(self, image: LoadedImage) -> None:
        """Load an image into a loadable region (cell must be shut down)."""
        if self.state.is_running:
            raise CellStateError(
                f"cannot load an image into running cell {self.name!r}"
            )
        assignment = self.config.find_assignment(image.region_name)
        if assignment is None:
            raise CellStateError(
                f"cell {self.name!r} has no region named {image.region_name!r}"
            )
        if not assignment.loadable and not self.is_root:
            raise CellStateError(
                f"region {image.region_name!r} of cell {self.name!r} is not loadable"
            )
        if image.size > assignment.size:
            raise CellStateError(
                f"image of {image.size} bytes does not fit region "
                f"{image.region_name!r} ({assignment.size} bytes)"
            )
        self.loaded_images.append(image)

    def attach_guest(self, guest: "GuestOS") -> None:
        """Associate a guest OS model with this cell."""
        self.guest = guest

    def entry_point(self) -> Optional[int]:
        """Entry point of the most recently loaded image, if any."""
        if not self.loaded_images:
            return None
        return self.loaded_images[-1].entry_point

    # -- availability ------------------------------------------------------------------

    def cpu_online(self, cpu_id: int) -> None:
        if cpu_id not in self.cpus:
            raise CellStateError(f"CPU {cpu_id} does not belong to cell {self.name!r}")
        self.online_cpus.add(cpu_id)

    def cpu_offline(self, cpu_id: int) -> None:
        self.online_cpus.discard(cpu_id)

    def is_consistent(self) -> bool:
        """Whether the reported state matches the actual CPU availability.

        A RUNNING cell whose CPUs never came online (or all went away) is the
        inconsistent situation the paper flags as "particularly dangerous".
        """
        if self.state.is_running:
            return bool(self.online_cpus)
        return not self.online_cpus

    # -- snapshot / restore -------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture the cell's mutable state (config and memory map are static)."""
        return {
            "state": self.state,
            "cpus": set(self.cpus),
            "irqs": set(self.irqs),
            "online_cpus": set(self.online_cpus),
            "guest": self.guest,
            "loaded_images": list(self.loaded_images),
            "stats": dataclasses.replace(self.stats),
            "state_history": list(self._state_history),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        self.state = state["state"]
        self.cpus = set(state["cpus"])
        self.irqs = set(state["irqs"])
        self.online_cpus = set(state["online_cpus"])
        self.guest = state["guest"]
        self.loaded_images = list(state["loaded_images"])
        self.stats = dataclasses.replace(state["stats"])
        self._state_history = list(state["state_history"])

    def describe(self) -> str:
        cpu_list = ",".join(str(cpu) for cpu in sorted(self.cpus)) or "-"
        return (
            f"{self.cell_id:>4}  {self.name:<24} {self.state.value:<15} "
            f"cpus: {cpu_list}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cell(id={self.cell_id}, name={self.name!r}, state={self.state.value})"
