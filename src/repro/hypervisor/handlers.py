"""The three virtualization entry points profiled by the paper.

The paper's profiling of golden runs identified three candidate injection
points in Jailhouse's ARMv7 port: the hardware interrupt request function
(``irqchip_handle_irq()``), the trap exception handler
(``arch_handle_trap()``), and the hypervisor call handler
(``arch_handle_hvc()``). This module implements those handlers against the
hypervisor model and exposes *entry hooks*: callables invoked with the saved
guest context at the top of each handler, which is exactly where the paper's
~dozen-line patch injects its bit flips.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.hw.cpu import CpuCore, CpuState
from repro.hw.gic import SPURIOUS_IRQ
from repro.hw.registers import (
    CPSR_MODE_MASK,
    GUEST_RETURNABLE_MODES,
    Register,
    TrapContext,
)
from repro.hypervisor.hypercalls import HypercallRequest, HypercallResult, ReturnCode
from repro.hypervisor.traps import (
    ExceptionClass,
    UNHANDLED_TRAP_ERROR,
    decode_exception_class,
    describe_trap,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hypervisor.core import Hypervisor

#: Names of the hookable handlers, as used by injection targets.
HANDLER_IRQCHIP = "irqchip_handle_irq"
HANDLER_TRAP = "arch_handle_trap"
HANDLER_HVC = "arch_handle_hvc"
ALL_HANDLERS = (HANDLER_IRQCHIP, HANDLER_TRAP, HANDLER_HVC)

#: PSCI function identifiers (SMC calling convention) used for CPU hotplug.
PSCI_CPU_ON = 0x8400_0003
PSCI_CPU_OFF = 0x8400_0002

EntryHook = Callable[[str, CpuCore, TrapContext], None]


class TrapResult(enum.Enum):
    """How a handler disposed of a trap."""

    HANDLED = "handled"
    UNHANDLED_PARKED = "unhandled_parked"
    PANIC = "panic"
    CPU_ONLINE_FAILED = "cpu_online_failed"


@dataclass
class HandlerStats:
    """Per-handler call and disposition counters."""

    calls: int = 0
    handled: int = 0
    parked: int = 0
    panics: int = 0


class ArchHandlers:
    """Hookable implementation of the three ARMv7 entry points."""

    def __init__(self, hypervisor: "Hypervisor") -> None:
        self._hv = hypervisor
        self._hooks: Dict[str, List[EntryHook]] = {name: [] for name in ALL_HANDLERS}
        self.stats: Dict[str, HandlerStats] = {
            name: HandlerStats() for name in ALL_HANDLERS
        }

    # -- hook management (the paper's "dozen lines of code added to Jailhouse") ----

    def add_entry_hook(self, handler_name: str, hook: EntryHook) -> None:
        """Install ``hook`` at the entry of ``handler_name``."""
        if handler_name not in self._hooks:
            raise KeyError(f"unknown handler {handler_name!r}")
        self._hooks[handler_name].append(hook)

    def remove_entry_hook(self, handler_name: str, hook: EntryHook) -> None:
        self._hooks[handler_name].remove(hook)

    def clear_hooks(self) -> None:
        for hooks in self._hooks.values():
            hooks.clear()

    def call_count(self, handler_name: str) -> int:
        return self.stats[handler_name].calls

    # -- snapshot / restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture per-handler counters and installed hooks."""
        return {
            "stats": {
                name: (s.calls, s.handled, s.parked, s.panics)
                for name, s in self.stats.items()
            },
            "hooks": {name: list(hooks) for name, hooks in self._hooks.items()},
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        for name, (calls, handled, parked, panics) in state["stats"].items():
            stats = self.stats[name]
            stats.calls, stats.handled = calls, handled
            stats.parked, stats.panics = parked, panics
        self._hooks = {name: list(hooks) for name, hooks in state["hooks"].items()}

    def _enter(self, handler_name: str, cpu: CpuCore, context: TrapContext) -> None:
        self.stats[handler_name].calls += 1
        for hook in self._hooks[handler_name]:
            hook(handler_name, cpu, context)

    # -- arch_handle_hvc -------------------------------------------------------------

    def arch_handle_hvc(self, cpu: CpuCore, context: TrapContext) -> TrapResult:
        """Hypervisor-call handler: dispatch the hypercall held in r0..r2."""
        self._enter(HANDLER_HVC, cpu, context)
        cell = self._hv.cell_of_cpu(cpu.cpu_id)
        request = HypercallRequest(
            code=context.read(Register.R0),
            arg1=context.read(Register.R1),
            arg2=context.read(Register.R2),
            cpu_id=cpu.cpu_id,
            cell_id=cell.cell_id if cell is not None else None,
        )
        result = self._hv.handle_hypercall(cell, request)
        context.write(Register.R0, result.code & 0xFFFF_FFFF)
        if cell is not None:
            cell.stats.hypercalls += 1
        return self._return_to_guest(HANDLER_HVC, cpu, context)

    # -- arch_handle_trap --------------------------------------------------------------

    def arch_handle_trap(self, cpu: CpuCore, context: TrapContext,
                         fault_address: Optional[int] = None) -> TrapResult:
        """General trap handler: dispatch on the HSR exception class."""
        self._enter(HANDLER_TRAP, cpu, context)
        cell = self._hv.cell_of_cpu(cpu.cpu_id)
        if cell is not None:
            cell.stats.traps += 1
        exception = decode_exception_class(context.hsr)

        if exception is ExceptionClass.HVC32:
            # The HVC path shares the register-save area with the trap path.
            return self.arch_handle_hvc(cpu, context)

        if exception is ExceptionClass.WFI_WFE:
            # Emulated wait-for-interrupt: nothing to do besides returning.
            return self._return_to_guest(HANDLER_TRAP, cpu, context)

        if exception in (ExceptionClass.CP15_TRAP, ExceptionClass.CP14_TRAP):
            # System-register access emulation (reads return 0).
            context.write(Register.R0, 0)
            return self._return_to_guest(HANDLER_TRAP, cpu, context)

        if exception is ExceptionClass.SMC32:
            return self._handle_smc(cpu, context)

        if exception is ExceptionClass.DATA_ABORT_LOWER:
            return self._handle_data_abort(cpu, context, fault_address)

        if exception is ExceptionClass.PREFETCH_ABORT_LOWER:
            return self._handle_prefetch_abort(cpu, context, fault_address)

        # Anything else is an unhandled trap: dump the context and park the CPU.
        self.stats[HANDLER_TRAP].parked += 1
        self._hv.report_unhandled_trap(cpu, context, error_code=UNHANDLED_TRAP_ERROR)
        return TrapResult.UNHANDLED_PARKED

    def _handle_smc(self, cpu: CpuCore, context: TrapContext) -> TrapResult:
        """PSCI secure-monitor calls: CPU hotplug used during cell start."""
        function = context.read(Register.R0)
        if function == PSCI_CPU_ON:
            entry_point = context.read(Register.R2)
            ok = self._hv.psci_cpu_on(cpu, entry_point, context)
            if not ok:
                self.stats[HANDLER_TRAP].handled += 1
                return TrapResult.CPU_ONLINE_FAILED
            return self._return_to_guest(HANDLER_TRAP, cpu, context)
        if function == PSCI_CPU_OFF:
            self._hv.psci_cpu_off(cpu)
            self.stats[HANDLER_TRAP].handled += 1
            return TrapResult.HANDLED
        # Unknown SMC: report not-supported to the caller, keep running.
        context.write(Register.R0, (-1) & 0xFFFF_FFFF)
        return self._return_to_guest(HANDLER_TRAP, cpu, context)

    def _handle_data_abort(self, cpu: CpuCore, context: TrapContext,
                           fault_address: Optional[int]) -> TrapResult:
        """Stage-2 data abort: MMIO emulation or the 0x24 unhandled-trap park."""
        cell = self._hv.cell_of_cpu(cpu.cpu_id)
        address = fault_address if fault_address is not None else context.read(Register.R1)
        if cell is not None:
            mapping = cell.memory_map.find(address, 4)
            if mapping is not None:
                # The access targets a mapped window: emulate it and move on.
                cell.stats.mmio_accesses += 1
                return self._return_to_guest(HANDLER_TRAP, cpu, context)
        # No mapping claims the address: this is the unhandled trap the paper
        # reports as error code 0x24, which parks the faulting CPU only.
        self.stats[HANDLER_TRAP].parked += 1
        self._hv.report_unhandled_trap(
            cpu, context, error_code=UNHANDLED_TRAP_ERROR, fault_address=address
        )
        return TrapResult.UNHANDLED_PARKED

    def _handle_prefetch_abort(self, cpu: CpuCore, context: TrapContext,
                               fault_address: Optional[int]) -> TrapResult:
        """Stage-2 instruction abort: the guest's PC left its executable mappings.

        Jailhouse has no recovery path for a lower-EL instruction fetch fault;
        the hypervisor state on this CPU can no longer be trusted, so the
        failure propagates to the whole system (the paper's "panic park").
        """
        cell = self._hv.cell_of_cpu(cpu.cpu_id)
        address = fault_address if fault_address is not None else context.pc
        if cell is not None and cell.memory_map.is_executable(address):
            # Spurious abort on a mapped page: treat as handled.
            return self._return_to_guest(HANDLER_TRAP, cpu, context)
        reason = (
            f"unhandled prefetch abort at 0x{address:08x} "
            f"({describe_trap(context.hsr)})"
        )
        if (self._hv.contains_guest_faults and cell is not None
                and not cell.is_root):
            # Bao-like containment policy: the offending cell dies, the rest
            # of the system keeps running.
            self.stats[HANDLER_TRAP].parked += 1
            self._hv.fail_cell(cell, reason,
                               error_code=int(ExceptionClass.PREFETCH_ABORT_LOWER))
            return TrapResult.UNHANDLED_PARKED
        self.stats[HANDLER_TRAP].panics += 1
        self._hv.panic(reason, cpu_id=cpu.cpu_id)
        return TrapResult.PANIC

    # -- irqchip_handle_irq ---------------------------------------------------------------

    def irqchip_handle_irq(self, cpu: CpuCore, context: TrapContext) -> TrapResult:
        """Interrupt entry: acknowledge pending IRQs and route them to the owner cell."""
        self._enter(HANDLER_IRQCHIP, cpu, context)
        interface = self._hv.board.gic.cpu_interfaces[cpu.cpu_id]
        delivered = 0
        while True:
            irq = interface.acknowledge()
            if irq == SPURIOUS_IRQ:
                break
            self._hv.route_irq(cpu, irq)
            interface.end_of_interrupt(irq)
            delivered += 1
            if delivered > 64:  # pragma: no cover - runaway guard
                break
        return self._return_to_guest(HANDLER_IRQCHIP, cpu, context)

    # -- common return path -------------------------------------------------------------------

    def _return_to_guest(self, handler_name: str, cpu: CpuCore,
                         context: TrapContext) -> TrapResult:
        """Validate the (possibly corrupted) context and resume the guest.

        An exception return to an illegal or hypervisor-privileged mode leaves
        the HYP banked state inconsistent; Jailhouse treats this as an
        unrecoverable internal error, so the failure escalates to a panic.

        A CPU that is still waiting to be powered on for a cell (the hotplug
        swap) has no guest context to return to, so no exception return — and
        therefore no mode check — happens for it.
        """
        if cpu.state is CpuState.WAIT_FOR_POWERON:
            self.stats[handler_name].handled += 1
            return TrapResult.HANDLED
        # Inlined is_valid_guest_cpsr(context.cpsr): this runs once per trap.
        cpsr = context.registers[Register.CPSR]
        if cpsr & CPSR_MODE_MASK not in GUEST_RETURNABLE_MODES:
            reason = f"illegal exception return (cpsr=0x{cpsr:08x})"
            cell = self._hv.cell_of_cpu(cpu.cpu_id)
            if (self._hv.contains_guest_faults and cell is not None
                    and not cell.is_root):
                self.stats[handler_name].parked += 1
                self._hv.fail_cell(cell, reason,
                                   error_code=int(ExceptionClass.DATA_ABORT_HYP))
                return TrapResult.UNHANDLED_PARKED
            self.stats[handler_name].panics += 1
            self._hv.panic(reason, cpu_id=cpu.cpu_id)
            return TrapResult.PANIC
        self.stats[handler_name].handled += 1
        cpu.exit_trap(context)
        return TrapResult.HANDLED
