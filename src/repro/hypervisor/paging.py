"""Stage-2 address-space model (per-cell memory isolation).

Jailhouse enforces cell isolation with stage-2 translation: each cell can only
reach the guest-physical ranges listed in its configuration, and those map to
host-physical regions owned exclusively by that cell (unless explicitly marked
shared, e.g. the ivshmem window). This module provides the per-cell
:class:`CellMemoryMap` used by the trap handlers to decide whether a faulting
access is a legal MMIO emulation, an isolation violation, or an unhandled
abort — the distinction at the heart of the paper's outcome taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, IsolationViolationError
from repro.hw.memory import ACCESS_BIT, AccessType, MemoryFlags
from repro.hypervisor.config import MemoryAssignment

_EXECUTE_BIT = int(MemoryFlags.EXECUTE)
_IO_BIT = int(MemoryFlags.IO)


@dataclass(frozen=True)
class Stage2Mapping:
    """One guest-physical to host-physical mapping of a cell."""

    name: str
    virt_start: int
    phys_start: int
    size: int
    flags: MemoryFlags
    shared: bool = False

    @property
    def virt_end(self) -> int:
        return self.virt_start + self.size

    @property
    def phys_end(self) -> int:
        return self.phys_start + self.size

    def contains_virt(self, address: int, size: int = 1) -> bool:
        return self.virt_start <= address and address + size <= self.virt_end

    def translate(self, address: int) -> int:
        """Translate one guest-physical address to a host-physical address."""
        if not self.contains_virt(address):
            raise IsolationViolationError(
                f"address 0x{address:08x} outside mapping {self.name!r}"
            )
        return self.phys_start + (address - self.virt_start)

    def permits(self, access: AccessType) -> bool:
        return bool(self.flags & access.required_flag())

    @classmethod
    def from_assignment(cls, assignment: MemoryAssignment) -> "Stage2Mapping":
        return cls(
            name=assignment.name,
            virt_start=assignment.virt_start,
            phys_start=assignment.phys_start,
            size=assignment.size,
            flags=assignment.flags,
            shared=assignment.shared,
        )


class CellMemoryMap:
    """The stage-2 view of one cell."""

    def __init__(self, cell_name: str,
                 mappings: Optional[Iterable[Stage2Mapping]] = None) -> None:
        self.cell_name = cell_name
        self._mappings: List[Stage2Mapping] = []
        #: Flat ``(virt_start, virt_end, flags int, mapping)`` tuples used by
        #: the per-access queries: tuple indexing and plain-int flag tests are
        #: several times cheaper than dataclass attribute access plus
        #: ``IntFlag.__and__``, and these run a handful of times per
        #: simulation step (every resume-context validation).
        self._spans: List[Tuple[int, int, int, Stage2Mapping]] = []
        self._ram_cache: Optional[Tuple[Stage2Mapping, ...]] = None
        if mappings:
            for mapping in mappings:
                self.add(mapping)

    def _reindex(self) -> None:
        self._mappings.sort(key=lambda m: m.virt_start)
        self._spans = [
            (m.virt_start, m.virt_end, int(m.flags), m) for m in self._mappings
        ]
        self._ram_cache: Optional[Tuple[Stage2Mapping, ...]] = None

    def add(self, mapping: Stage2Mapping) -> None:
        """Add a mapping; overlapping guest-physical ranges are rejected."""
        for existing in self._mappings:
            if (mapping.virt_start < existing.virt_end
                    and existing.virt_start < mapping.virt_end):
                raise ConfigurationError(
                    f"cell {self.cell_name!r}: mapping {mapping.name!r} overlaps "
                    f"{existing.name!r} in guest-physical space"
                )
        self._mappings.append(mapping)
        self._reindex()

    def remove(self, name: str) -> None:
        mapping = self.find_by_name(name)
        if mapping is None:
            raise KeyError(f"no mapping named {name!r}")
        self._mappings.remove(mapping)
        self._reindex()

    @property
    def mappings(self) -> Tuple[Stage2Mapping, ...]:
        return tuple(self._mappings)

    def find(self, address: int, size: int = 1) -> Optional[Stage2Mapping]:
        """Mapping containing the guest-physical window, or ``None``."""
        end = address + size
        for virt_start, virt_end, _flags, mapping in self._spans:
            if virt_start <= address and end <= virt_end:
                return mapping
        return None

    def find_by_name(self, name: str) -> Optional[Stage2Mapping]:
        for mapping in self._mappings:
            if mapping.name == name:
                return mapping
        return None

    def is_mapped(self, address: int, size: int = 1,
                  access: AccessType = AccessType.READ) -> bool:
        """Whether the cell may perform ``access`` on the given window."""
        bit = ACCESS_BIT[access]
        end = address + size
        for virt_start, virt_end, flags, _mapping in self._spans:
            if virt_start <= address and end <= virt_end:
                return bool(flags & bit)
        return False

    def is_executable(self, address: int) -> bool:
        """Whether the cell may fetch instructions from ``address``."""
        end = address + 4
        for virt_start, virt_end, flags, _mapping in self._spans:
            if virt_start <= address and end <= virt_end:
                return bool(flags & _EXECUTE_BIT)
        return False

    def translate(self, address: int) -> int:
        """Translate a guest-physical address, raising on isolation violations."""
        mapping = self.find(address)
        if mapping is None:
            raise IsolationViolationError(
                f"cell {self.cell_name!r}: stage-2 fault at 0x{address:08x}"
            )
        return mapping.translate(address)

    def io_mappings(self) -> Tuple[Stage2Mapping, ...]:
        """Mappings that describe MMIO windows."""
        return tuple(m for m in self._mappings if int(m.flags) & _IO_BIT)

    def ram_mappings(self) -> Tuple[Stage2Mapping, ...]:
        cached = self._ram_cache
        if cached is None:
            cached = self._ram_cache = tuple(
                m for m in self._mappings if not int(m.flags) & _IO_BIT
            )
        return cached

    def host_ranges(self) -> Tuple[Tuple[int, int, bool], ...]:
        """Host-physical ``(start, end, shared)`` tuples covered by this cell."""
        return tuple((m.phys_start, m.phys_end, m.shared) for m in self._mappings)

    @classmethod
    def from_assignments(cls, cell_name: str,
                         assignments: Iterable[MemoryAssignment]) -> "CellMemoryMap":
        return cls(
            cell_name,
            (Stage2Mapping.from_assignment(a) for a in assignments),
        )


def check_host_exclusivity(maps: Iterable[CellMemoryMap]) -> None:
    """Verify that no two cells share a host-physical range unless both mark it shared.

    This is the isolation invariant the paper's experiments probe: the
    hypervisor enforces it at ``cell_create`` time and the property-based
    tests assert it over arbitrary configurations.
    """
    seen: List[Tuple[int, int, bool, str]] = []
    for cell_map in maps:
        for start, end, shared in cell_map.host_ranges():
            for o_start, o_end, o_shared, o_cell in seen:
                if o_cell == cell_map.cell_name:
                    continue
                if start < o_end and o_start < end:
                    if not (shared and o_shared):
                        raise IsolationViolationError(
                            f"cells {cell_map.cell_name!r} and {o_cell!r} both map "
                            f"host range 0x{max(start, o_start):08x}-"
                            f"0x{min(end, o_end) - 1:08x} without marking it shared"
                        )
            seen.append((start, end, shared, cell_map.cell_name))
