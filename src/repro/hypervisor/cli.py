"""``jailhouse``-style management front-end.

The root cell's Linux manages cells with the ``jailhouse`` command-line tool
(``jailhouse enable``, ``jailhouse cell create/load/start/shutdown/destroy``).
This module models that tool: every command is translated into the
corresponding hypercall issued from the root cell's CPU, and the textual
output mirrors the real tool so the examples and the paper's test procedure
read naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import HypervisorError
from repro.hypervisor.cell import LoadedImage
from repro.hypervisor.config import CellConfig, SystemConfig
from repro.hypervisor.core import Hypervisor, ManagementCallOutcome
from repro.hypervisor.hypercalls import Hypercall, ReturnCode, RETURN_MESSAGES


@dataclass
class CliResult:
    """Result of one CLI command."""

    command: str
    success: bool
    output: str
    code: int = 0


class JailhouseCli:
    """Management tool issuing hypercalls from the root cell."""

    def __init__(self, hypervisor: Hypervisor, *, root_cpu: int = 0) -> None:
        self._hv = hypervisor
        self._root_cpu = root_cpu
        self._staged_configs: Dict[str, int] = {}
        self._created_cells: Dict[str, int] = {}
        self.history: List[CliResult] = []

    # -- helpers --------------------------------------------------------------------

    def _finish(self, command: str, success: bool, output: str,
                code: int = 0) -> CliResult:
        result = CliResult(command=command, success=success, output=output, code=code)
        self.history.append(result)
        return result

    def _error_text(self, outcome: ManagementCallOutcome) -> str:
        try:
            message = RETURN_MESSAGES[ReturnCode(outcome.code)]
        except ValueError:
            message = f"error {outcome.code}"
        return message

    def _resolve_cell_id(self, name_or_id: "str | int") -> Optional[int]:
        if isinstance(name_or_id, int):
            return name_or_id
        if name_or_id in self._created_cells:
            return self._created_cells[name_or_id]
        cell = self._hv.cell_by_name(name_or_id)
        return cell.cell_id if cell is not None else None

    # -- commands ----------------------------------------------------------------------

    def enable(self, system_config: SystemConfig) -> CliResult:
        """``jailhouse enable <sysconfig>``"""
        try:
            root = self._hv.enable(system_config)
        except HypervisorError as exc:
            return self._finish("enable", False, f"Error: {exc}")
        return self._finish(
            "enable", True, f"The Jailhouse is opening.\nRoot cell \"{root.name}\""
        )

    def disable(self) -> CliResult:
        """``jailhouse disable``"""
        outcome = self._hv.issue_hypercall(self._root_cpu, int(Hypercall.DISABLE))
        if not outcome.ok:
            return self._finish("disable", False,
                                f"Error: {self._error_text(outcome)}", outcome.code)
        return self._finish("disable", True, "The Jailhouse was closed.")

    def cell_create(self, config: CellConfig) -> CliResult:
        """``jailhouse cell create <cellconfig>``"""
        address = self._hv.stage_config(config)
        self._staged_configs[config.name] = address
        outcome = self._hv.issue_hypercall(
            self._root_cpu, int(Hypercall.CELL_CREATE), address
        )
        command = f"cell create {config.name}"
        if not outcome.ok:
            return self._finish(
                command, False,
                f"Error: {self._error_text(outcome)}", outcome.code,
            )
        self._created_cells[config.name] = outcome.code
        return self._finish(command, True, f"Created cell \"{config.name}\"",
                            outcome.code)

    def cell_load(self, name_or_id: "str | int", image: LoadedImage) -> CliResult:
        """``jailhouse cell load <cell> <image>``"""
        cell_id = self._resolve_cell_id(name_or_id)
        command = f"cell load {name_or_id}"
        if cell_id is None:
            return self._finish(command, False, "Error: No such cell",
                                int(ReturnCode.ENOENT))
        cell = self._hv.cell_by_id(cell_id)
        if cell is None:
            return self._finish(command, False, "Error: No such cell",
                                int(ReturnCode.ENOENT))
        try:
            cell.load_image(image)
        except HypervisorError as exc:
            return self._finish(command, False, f"Error: {exc}",
                                int(ReturnCode.EINVAL))
        return self._finish(command, True,
                            f"Loaded image into cell \"{cell.name}\"")

    def cell_start(self, name_or_id: "str | int") -> CliResult:
        """``jailhouse cell start <cell>``"""
        cell_id = self._resolve_cell_id(name_or_id)
        command = f"cell start {name_or_id}"
        if cell_id is None:
            return self._finish(command, False, "Error: No such cell",
                                int(ReturnCode.ENOENT))
        outcome = self._hv.issue_hypercall(
            self._root_cpu, int(Hypercall.CELL_START), cell_id
        )
        if not outcome.ok:
            return self._finish(command, False,
                                f"Error: {self._error_text(outcome)}", outcome.code)
        cell = self._hv.cell_by_id(cell_id)
        name = cell.name if cell is not None else str(cell_id)
        return self._finish(command, True, f"Started cell \"{name}\"")

    def cell_shutdown(self, name_or_id: "str | int") -> CliResult:
        """``jailhouse cell shutdown <cell>``"""
        cell_id = self._resolve_cell_id(name_or_id)
        command = f"cell shutdown {name_or_id}"
        if cell_id is None:
            return self._finish(command, False, "Error: No such cell",
                                int(ReturnCode.ENOENT))
        outcome = self._hv.issue_hypercall(
            self._root_cpu, int(Hypercall.CELL_SET_LOADABLE), cell_id
        )
        if not outcome.ok:
            return self._finish(command, False,
                                f"Error: {self._error_text(outcome)}", outcome.code)
        cell = self._hv.cell_by_id(cell_id)
        name = cell.name if cell is not None else str(cell_id)
        return self._finish(command, True, f"Cell \"{name}\" shut down")

    def cell_destroy(self, name_or_id: "str | int") -> CliResult:
        """``jailhouse cell destroy <cell>``"""
        cell_id = self._resolve_cell_id(name_or_id)
        command = f"cell destroy {name_or_id}"
        if cell_id is None:
            return self._finish(command, False, "Error: No such cell",
                                int(ReturnCode.ENOENT))
        outcome = self._hv.issue_hypercall(
            self._root_cpu, int(Hypercall.CELL_DESTROY), cell_id
        )
        if not outcome.ok:
            return self._finish(command, False,
                                f"Error: {self._error_text(outcome)}", outcome.code)
        name = next(
            (n for n, cid in self._created_cells.items() if cid == cell_id),
            str(cell_id),
        )
        self._created_cells.pop(name, None)
        return self._finish(command, True, f"Closed cell \"{name}\"")

    def cell_list(self) -> CliResult:
        """``jailhouse cell list``"""
        return self._finish("cell list", True, self._hv.cell_list())

    # -- snapshot / restore ------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture staged configs, created-cell ids and command history."""
        return {
            "staged": dict(self._staged_configs),
            "created": dict(self._created_cells),
            "history": list(self.history),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        self._staged_configs = dict(state["staged"])
        self._created_cells = dict(state["created"])
        self.history = list(state["history"])
