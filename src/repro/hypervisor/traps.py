"""ARMv7 virtualization-extension trap encoding.

When a guest traps into HYP mode, the Hyp Syndrome Register (HSR) describes
why: its top six bits hold the *exception class* (EC). The hypervisor's
``arch_handle_trap()`` dispatches on the EC; exception classes it does not
know how to handle are reported as *unhandled traps*. The paper observes the
error code ``0x24`` — a data abort from a lower exception level — as the
signature of the "CPU park" outcome.
"""

from __future__ import annotations

import enum
from typing import Optional

HSR_EC_SHIFT = 26
HSR_EC_MASK = 0x3F
HSR_ISS_MASK = (1 << 25) - 1


class ExceptionClass(enum.IntEnum):
    """HSR exception classes relevant to the model (ARMv7-A encoding)."""

    UNKNOWN = 0x00
    WFI_WFE = 0x01
    CP15_TRAP = 0x03
    CP14_TRAP = 0x05
    HVC32 = 0x12
    SMC32 = 0x13
    PREFETCH_ABORT_LOWER = 0x20
    PREFETCH_ABORT_HYP = 0x21
    DATA_ABORT_LOWER = 0x24
    DATA_ABORT_HYP = 0x25


#: Error code reported by the paper for the CPU-park outcome.
UNHANDLED_TRAP_ERROR = int(ExceptionClass.DATA_ABORT_LOWER)  # 0x24

#: Exception classes the Jailhouse model knows how to handle for guest traps.
HANDLED_CLASSES = frozenset(
    {
        ExceptionClass.WFI_WFE,
        ExceptionClass.CP15_TRAP,
        ExceptionClass.HVC32,
        ExceptionClass.SMC32,
        ExceptionClass.PREFETCH_ABORT_LOWER,
        ExceptionClass.DATA_ABORT_LOWER,
    }
)


class TrapCode(enum.Enum):
    """Why a guest exited to the hypervisor (guest-event vocabulary)."""

    HYPERCALL = "hypercall"
    WFI = "wfi"
    CP15_ACCESS = "cp15"
    SMC = "smc"
    DATA_ABORT = "data_abort"
    PREFETCH_ABORT = "prefetch_abort"
    IRQ = "irq"
    UNKNOWN = "unknown"


_TRAP_TO_EC = {
    TrapCode.HYPERCALL: ExceptionClass.HVC32,
    TrapCode.WFI: ExceptionClass.WFI_WFE,
    TrapCode.CP15_ACCESS: ExceptionClass.CP15_TRAP,
    TrapCode.SMC: ExceptionClass.SMC32,
    TrapCode.DATA_ABORT: ExceptionClass.DATA_ABORT_LOWER,
    TrapCode.PREFETCH_ABORT: ExceptionClass.PREFETCH_ABORT_LOWER,
    TrapCode.UNKNOWN: ExceptionClass.UNKNOWN,
}


#: Precomputed HSR base values (EC field already shifted) and the reverse EC
#: lookup: both run once per trap dispatch, where the enum-constructor path
#: is measurably slow.
_HSR_FOR_TRAP = {
    trap: int(ec) << HSR_EC_SHIFT for trap, ec in _TRAP_TO_EC.items()
}
_EC_BY_RAW = {int(ec): ec for ec in ExceptionClass}


def encode_hsr(trap: TrapCode, iss: int = 0) -> int:
    """Build an HSR value for a trap of kind ``trap`` with syndrome ``iss``."""
    base = _HSR_FOR_TRAP.get(trap)
    if base is None:
        base = int(ExceptionClass.UNKNOWN) << HSR_EC_SHIFT
    return base | (iss & HSR_ISS_MASK)


def exception_class(hsr: int) -> int:
    """Extract the raw EC field from an HSR value."""
    return (hsr >> HSR_EC_SHIFT) & HSR_EC_MASK


def decode_exception_class(hsr: int) -> Optional[ExceptionClass]:
    """Return the :class:`ExceptionClass`, or ``None`` for unknown encodings."""
    return _EC_BY_RAW.get((hsr >> HSR_EC_SHIFT) & HSR_EC_MASK)


def iss(hsr: int) -> int:
    """Extract the instruction-specific syndrome field."""
    return hsr & HSR_ISS_MASK


def is_handled(hsr: int) -> bool:
    """Whether ``arch_handle_trap`` has a handler for this exception class."""
    decoded = decode_exception_class(hsr)
    return decoded is not None and decoded in HANDLED_CLASSES


def describe_trap(hsr: int) -> str:
    """Human-readable description of an HSR value (for register dumps)."""
    decoded = decode_exception_class(hsr)
    ec = exception_class(hsr)
    name = decoded.name if decoded is not None else "INVALID"
    return f"EC=0x{ec:02x} ({name}) ISS=0x{iss(hsr):07x}"
