"""Bao-like static partitioning baseline.

Bao (Martins et al., NG-RES 2020) is the other open-source static partitioning
hypervisor the paper discusses: a small codebase that does not depend on Linux
to boot and manage partitions. For the isolation comparison, the property that
matters is its containment policy: a guest that takes an unrecoverable fault
is stopped without bringing down the other partitions.

The baseline reuses the same board, guests, and workload as the Jailhouse
system under test — only the containment policy differs — so outcome
differences in the comparison bench are attributable to that policy alone.
The "no Linux root dependency" difference is out of scope for these
experiments and is documented rather than modeled.
"""

from __future__ import annotations

from typing import Optional

from repro.core.registry import SUTS
from repro.core.sut import JailhouseSUT, SutConfig, SystemUnderTest
from repro.hw.board import BananaPiBoard, BoardConfig
from repro.hypervisor.cli import JailhouseCli
from repro.hypervisor.core import Hypervisor


class BaoLikeSUT(JailhouseSUT):
    """Static partitioning hypervisor with per-cell fault containment."""

    name = "bao-like"

    def __init__(self, config: Optional[SutConfig] = None) -> None:
        super().__init__(config)
        # Replace the hypervisor with one configured for containment; the
        # management front-end must point at the new instance.
        self.hypervisor = Hypervisor(self.board, contains_guest_faults=True)
        self.cli = JailhouseCli(self.hypervisor)


def bao_sut_factory(seed: int) -> SystemUnderTest:
    """SUT factory for campaigns against the Bao-like baseline."""
    return BaoLikeSUT(SutConfig(seed=seed))


@SUTS.register("bao-like", "bao")
def build_bao_like_sut(seed: int = 0, **config_params) -> BaoLikeSUT:
    """Bao-like containment baseline: guest faults kill only the offending cell."""
    return BaoLikeSUT(SutConfig(seed=seed, **config_params))
