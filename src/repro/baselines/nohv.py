"""No-partitioning baseline.

The alternative the paper's introduction motivates against: consolidating the
safety-critical RTOS and the infotainment OS on the same SoC *without* a
partitioning hypervisor. The workload is identical to the Jailhouse system
under test, but there is no containment at all — an unhandled fault anywhere
takes the shared kernel (and with it every function) down.

This is modeled by keeping the same execution machinery and removing the
containment reactions: what would have been a CPU park under Jailhouse
escalates to a whole-system failure.
"""

from __future__ import annotations

from typing import Optional

from repro.core.registry import SUTS
from repro.core.sut import JailhouseSUT, SutConfig, SystemUnderTest
from repro.hypervisor.cli import JailhouseCli
from repro.hypervisor.core import Hypervisor


class NoIsolationSUT(JailhouseSUT):
    """Consolidation without a partitioning hypervisor."""

    name = "no-isolation"

    def __init__(self, config: Optional[SutConfig] = None) -> None:
        super().__init__(config)
        self.hypervisor = Hypervisor(self.board, escalate_parks_to_panic=True)
        self.cli = JailhouseCli(self.hypervisor)


def no_isolation_sut_factory(seed: int) -> SystemUnderTest:
    """SUT factory for campaigns against the no-isolation baseline."""
    return NoIsolationSUT(SutConfig(seed=seed))


@SUTS.register("no-isolation", "nohv")
def build_no_isolation_sut(seed: int = 0, **config_params) -> NoIsolationSUT:
    """Consolidation without partitioning: any unhandled fault takes it all down."""
    return NoIsolationSUT(SutConfig(seed=seed, **config_params))
