"""Comparison baselines for the hypervisor-comparison ablation.

The paper's related-work section surveys alternative partitioning solutions
(Bao, PikeOS, VOSYSmonitor) and motivates partitioning in the first place.
These baselines make that comparison measurable with the same campaigns used
against the Jailhouse model:

* :class:`BaoLikeSUT` — a static partitioning hypervisor with a stricter
  containment policy: unrecoverable guest faults kill only the offending cell.
* :class:`NoIsolationSUT` — consolidation without partitioning: the same
  workload, but any unhandled fault takes the shared kernel down.
"""

from repro.baselines.bao import BaoLikeSUT, bao_sut_factory
from repro.baselines.nohv import NoIsolationSUT, no_isolation_sut_factory

__all__ = [
    "BaoLikeSUT",
    "NoIsolationSUT",
    "bao_sut_factory",
    "no_isolation_sut_factory",
]
