"""Guest OS protocol and shared fault-propagation behaviour.

A guest model does three things:

1. **Generate traps.** Each simulation quantum it reports the VM exits its
   workload caused (hypercalls, WFI, system-register accesses, MMIO) as
   :class:`GuestEvent` objects. The system-under-test feeds those through the
   hypervisor's hookable entry points.
2. **Produce observable output.** Tasks print to the cell's UART; the paper
   judges availability purely from this output.
3. **React to a (possibly corrupted) resume context.** After a trap returns,
   the guest inspects the architectural state it was resumed with. A PC
   outside the cell's executable mappings faults at the next fetch; a stack
   pointer outside mapped RAM faults at the next stack access (unless the
   scheduler reloads SP first); a corrupted link register only matters if the
   running task returns through it before it is overwritten. These rules are
   what turn the paper's random bit flips into the outcome distribution of
   Figure 3 — they are behavioural properties of the guest, not of the
   injector.
"""

from __future__ import annotations

import abc
import copy
import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hw.board import BananaPiBoard
from repro.hw.memory import AccessType
from repro.hw.registers import Register, TrapContext
from repro.hypervisor.cell import Cell
from repro.hypervisor.traps import TrapCode

#: Probability that a task dereferences its (corrupted) stack pointer before
#: the scheduler reloads SP from the task control block at the next switch.
DEFAULT_STACK_USE_PROBABILITY = 0.35
#: Probability that the running task returns through a corrupted link register
#: before overwriting it with a new call.
DEFAULT_LINK_RETURN_PROBABILITY = 0.10


class GuestState(enum.Enum):
    """Lifecycle state of a guest model."""

    STOPPED = "stopped"
    RUNNING = "running"
    CRASHED = "crashed"
    PANICKED = "panicked"


@dataclass(slots=True)
class GuestEvent:
    """One VM exit requested by the guest (slotted: built every quantum)."""

    trap: TrapCode
    registers: Dict[Register, int] = field(default_factory=dict)
    fault_address: Optional[int] = None
    description: str = ""


@dataclass
class GuestStats:
    """Counters kept by every guest model."""

    steps: int = 0
    traps_generated: int = 0
    uart_lines: int = 0
    interrupts_received: int = 0
    faults_after_resume: int = 0
    silent_corruptions: int = 0


class GuestOS(abc.ABC):
    """Base class for guest OS models."""

    def __init__(self, name: str, *, seed: int = 0,
                 stack_use_probability: float = DEFAULT_STACK_USE_PROBABILITY,
                 link_return_probability: float = DEFAULT_LINK_RETURN_PROBABILITY) -> None:
        self.name = name
        self.state = GuestState.STOPPED
        self.stats = GuestStats()
        self.cell: Optional[Cell] = None
        self.board: Optional[BananaPiBoard] = None
        self.rng = np.random.default_rng(seed)
        self.stack_use_probability = stack_use_probability
        self.link_return_probability = link_return_probability
        self.crash_reason: Optional[str] = None
        #: Cached (cell, base, size, code_hi, stack_lo, stack_hi) draw bounds.
        # repro: allow[snapshot-complete] -- self-validating cache keyed on cell identity; recomputed whenever the cell changes
        self._nominal_bounds: Optional[tuple] = None

    # -- lifecycle --------------------------------------------------------------------

    def attach(self, cell: Cell, board: BananaPiBoard) -> None:
        """Bind the guest to its cell and board; called at cell load time."""
        self.cell = cell
        self.board = board
        cell.attach_guest(self)

    def boot(self) -> None:
        """Mark the guest as running and emit its boot banner."""
        if self.cell is None or self.board is None:
            raise RuntimeError(f"guest {self.name!r} must be attached before boot")
        self.state = GuestState.RUNNING
        # Establish sane architectural state on every online vCPU: a real guest
        # sets up its own stack and code pointers long before the first trap.
        for cpu_id in sorted(self.cell.online_cpus):
            self.place_registers(cpu_id, self.nominal_registers(cpu_id))
        self.console(self.boot_banner())

    def boot_banner(self) -> str:
        return f"{self.name} booting"

    @property
    def alive(self) -> bool:
        return self.state is GuestState.RUNNING

    # -- console ------------------------------------------------------------------------

    def console(self, text: str) -> None:
        """Write one line to the cell's UART, tagged with the cell name."""
        if self.board is None or self.cell is None:
            return
        if not self.cell.config.console.enabled:
            return
        self.board.uart.write_line(self.cell.name, text)
        self.stats.uart_lines += 1
        self.cell.stats.uart_lines += 1

    # -- abstract workload ------------------------------------------------------------------

    @abc.abstractmethod
    def step(self, cpu_id: int, now: float, dt: float) -> List[GuestEvent]:
        """Run one quantum on ``cpu_id`` and return the traps it caused."""

    def on_interrupt(self, irq: int, cpu_id: int) -> None:
        """An interrupt owned by this cell was delivered."""
        self.stats.interrupts_received += 1

    def on_cpu_online(self, cpu_id: int) -> None:
        """A CPU just came online for this guest's cell.

        Models the guest's secondary-CPU startup code, which establishes a
        valid stack and return pointer before interrupts are enabled.
        """
        self.place_registers(cpu_id, self.nominal_registers(cpu_id))

    def on_system_panic(self, reason: str) -> None:
        """The hypervisor panicked underneath this guest."""
        self.state = GuestState.PANICKED

    # -- fault propagation after resume ----------------------------------------------------------

    def resume_from_trap(self, cpu_id: int, context: TrapContext) -> Optional[GuestEvent]:
        """Inspect the resumed state; return a follow-up fault event if it is bad.

        The returned event (if any) is dispatched immediately by the system
        under test, modelling the fact that a corrupted PC faults on the very
        next instruction fetch.
        """
        if self.cell is None:
            return None
        memory_map = self.cell.memory_map
        registers = context.registers

        pc = registers[Register.PC]
        if not memory_map.is_executable(pc):
            self.stats.faults_after_resume += 1
            return GuestEvent(
                trap=TrapCode.PREFETCH_ABORT,
                registers=dict(registers),
                fault_address=pc,
                description=f"instruction fetch from unmapped 0x{pc:08x}",
            )

        sp = registers[Register.SP]
        if not memory_map.is_mapped(sp, 4, AccessType.WRITE):
            if self.rng.random() < self.stack_use_probability:
                self.stats.faults_after_resume += 1
                return GuestEvent(
                    trap=TrapCode.DATA_ABORT,
                    registers=dict(context.registers),
                    fault_address=sp,
                    description=f"stack access at unmapped 0x{sp:08x}",
                )
            # The scheduler reloads SP from the task control block before the
            # corrupted value is ever dereferenced.
            self._restore_stack_pointer(cpu_id)

        lr = registers[Register.LR]
        if not memory_map.is_executable(lr):
            if self.rng.random() < self.link_return_probability:
                self.stats.faults_after_resume += 1
                return GuestEvent(
                    trap=TrapCode.PREFETCH_ABORT,
                    registers=dict(context.registers),
                    fault_address=lr,
                    description=f"return to unmapped 0x{lr:08x}",
                )

        return None

    def _restore_stack_pointer(self, cpu_id: int) -> None:
        """Reload a sane SP on the vCPU (models the next context switch)."""
        if self.board is None or self.cell is None:
            return
        ram = self.cell.memory_map.ram_mappings()
        if not ram:
            return
        top = ram[0].virt_start + ram[0].size - 0x100
        self.board.cpu(cpu_id).registers.write(Register.SP, top)

    # -- vCPU register housekeeping ---------------------------------------------------------------------

    def place_registers(self, cpu_id: int, values: Dict[Register, int]) -> None:
        """Write workload register values onto the vCPU before trapping.

        Hot path: callers pass :class:`Register`-keyed dicts built by the
        guest models, so the per-register validation of
        :meth:`~repro.hw.registers.RegisterFile.write` is skipped.
        """
        if self.board is None:
            return
        self.board.cpus[cpu_id].registers.load_masked(values)

    def nominal_registers(self, cpu_id: int) -> Dict[Register, int]:
        """Plausible architectural state for this guest while it executes."""
        cell = self.cell
        if cell is None:
            return {}
        # The RAM geometry is static per cell; cache the draw bounds (this
        # runs once per guest per simulation step).
        cached = self._nominal_bounds
        if cached is None or cached[0] is not cell:
            ram = cell.memory_map.ram_mappings()
            if not ram:
                return {}
            first = ram[0]
            size = first.size
            cached = self._nominal_bounds = (
                cell, first.virt_start, size,
                max(0x200, size // 4), size // 2, size - 0x100,
            )
        _, base, size, code_hi, stack_lo, stack_hi = cached
        rng = self.rng
        code_offset = int(rng.integers(0x100, code_hi)) & ~0x3
        stack_offset = int(rng.integers(stack_lo, stack_hi)) & ~0x7
        return {
            Register.PC: base + code_offset,
            Register.SP: base + stack_offset,
            Register.LR: base + ((code_offset + 0x40) % size),
        }

    def crash(self, reason: str) -> None:
        """Mark the guest as crashed (stops producing output)."""
        self.state = GuestState.CRASHED
        self.crash_reason = reason

    # -- snapshot / restore ------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture guest lifecycle state, counters, RNG stream and bindings.

        Subclasses extend the returned dict via ``super().snapshot_state()``.
        The RNG is captured as the bit-generator state so a restored guest
        replays exactly the same random draws a cold-booted one would.
        """
        return {
            "state": self.state,
            "stats": dataclasses.replace(self.stats),
            "cell": self.cell,
            "board": self.board,
            "rng": copy.deepcopy(self.rng.bit_generator.state),
            "crash_reason": self.crash_reason,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        self.state = state["state"]
        self.stats = dataclasses.replace(state["stats"])
        self.cell = state["cell"]
        self.board = state["board"]
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])
        self.crash_reason = state["crash_reason"]
