"""Guest operating-system models.

The paper's workload consists of a general-purpose Linux in the root cell and
FreeRTOS in the non-root cell, the latter running a blink task, a send/receive
task pair, two floating-point tasks, and fifteen integer tasks. These models
reproduce the *observable behaviour* of those guests — the traps they take
into the hypervisor and the serial output they produce — which is all the
fault-injection experiments measure.
"""

from repro.guests.base import GuestEvent, GuestOS, GuestState
from repro.guests.linux import LinuxGuest
from repro.guests.freertos.kernel import FreeRTOSKernel
from repro.guests.freertos.workloads import build_paper_workload

__all__ = [
    "FreeRTOSKernel",
    "GuestEvent",
    "GuestOS",
    "GuestState",
    "LinuxGuest",
    "build_paper_workload",
]
