"""FreeRTOS-like real-time OS model (the non-root cell's inmate)."""

from repro.guests.freertos.kernel import FreeRTOSKernel, KernelConfig
from repro.guests.freertos.queue import MessageQueue
from repro.guests.freertos.task import Task, TaskState
from repro.guests.freertos.workloads import build_paper_workload

__all__ = [
    "FreeRTOSKernel",
    "KernelConfig",
    "MessageQueue",
    "Task",
    "TaskState",
    "build_paper_workload",
]
