"""FreeRTOS-style message queue.

The paper's workload includes "a couple of send/receive tasks"; they exchange
messages over a bounded FIFO queue like FreeRTOS's ``xQueueSend`` /
``xQueueReceive``. The queue is also used as the local endpoint of the
inter-cell ivshmem channel in the communication example.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from repro.errors import SchedulerError


@dataclass(frozen=True)
class QueueItem:
    """One queued message."""

    payload: Any
    enqueued_at: float
    sequence: int


class MessageQueue:
    """Bounded FIFO queue with send/receive counters."""

    def __init__(self, name: str, capacity: int = 16) -> None:
        if capacity <= 0:
            raise SchedulerError(f"queue {name!r} must have positive capacity")
        self.name = name
        self.capacity = capacity
        self._items: Deque[QueueItem] = deque()
        self._sequence = 0
        self.sent = 0
        self.received = 0
        self.dropped = 0
        self.high_watermark = 0

    def send(self, payload: Any, *, now: float = 0.0) -> bool:
        """Enqueue a message; returns False (and counts a drop) when full."""
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._sequence += 1
        self._items.append(QueueItem(payload=payload, enqueued_at=now,
                                     sequence=self._sequence))
        self.sent += 1
        self.high_watermark = max(self.high_watermark, len(self._items))
        return True

    def receive(self) -> Optional[QueueItem]:
        """Dequeue the oldest message, or ``None`` when empty."""
        if not self._items:
            return None
        self.received += 1
        return self._items.popleft()

    def peek(self) -> Optional[QueueItem]:
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def clear(self) -> None:
        self._items.clear()

    def snapshot_state(self) -> dict:
        """Capture queued items and counters."""
        return {
            "items": list(self._items),
            "sequence": self._sequence,
            "sent": self.sent,
            "received": self.received,
            "dropped": self.dropped,
            "high_watermark": self.high_watermark,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        self._items.clear()
        self._items.extend(state["items"])
        self._sequence = state["sequence"]
        self.sent = state["sent"]
        self.received = state["received"]
        self.dropped = state["dropped"]
        self.high_watermark = state["high_watermark"]
