"""FreeRTOS-like kernel: fixed-priority preemptive scheduler plus trap model.

The kernel schedules the paper's task set (blink, send/receive, floating
point, integer) with fixed priorities, executes due task bodies each quantum,
and reports the hypervisor traps the cell generates while doing so (WFI on
idle, occasional system-register accesses, MMIO accesses to the ivshmem
window, and rare debug-console hypercalls). Those traps are what the paper's
medium-intensity campaign injects into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.registry import GUESTS
from repro.guests.base import GuestEvent, GuestOS, GuestState
from repro.guests.freertos.queue import MessageQueue
from repro.guests.freertos.task import EffectKind, Task, TaskEffect, TaskState
from repro.hw.registers import Register
from repro.hypervisor.hypercalls import Hypercall
from repro.hypervisor.ivshmem import IvshmemChannel
from repro.hypervisor.traps import TrapCode
from repro.errors import SchedulerError


@dataclass
class KernelConfig:
    """Tuning knobs of the FreeRTOS model.

    The trap probabilities are calibrated so the non-root cell takes roughly
    25 hypervisor traps per second — the order of magnitude that makes the
    paper's "one injection every 100 calls over a one-minute test" produce a
    double-digit number of injections per test.
    """

    tick_period: float = 0.010          # 100 Hz tick, FreeRTOS default
    wfi_probability: float = 0.35       # idle WFI trap per quantum
    cp15_probability: float = 0.05      # system-register access per quantum
    ivshmem_mmio_probability: float = 0.08
    debug_putc_probability: float = 0.02
    status_print_period: float = 1.0    # heartbeat line cadence per task group


@GUESTS.register("freertos")
class FreeRTOSKernel(GuestOS):
    """The non-root cell's RTOS."""

    def __init__(self, name: str = "FreeRTOS", *, seed: int = 0,
                 config: Optional[KernelConfig] = None) -> None:
        super().__init__(name, seed=seed)
        self.config = config or KernelConfig()
        self.tasks: List[Task] = []
        self._priority_order: List[Task] = []
        # repro: allow[snapshot-complete] -- pure memo of dt -> tick count; a hit and a recompute yield identical state
        self._ticks_cache: Optional[tuple] = None
        self.queues: Dict[str, MessageQueue] = {}
        self.ivshmem: Optional[IvshmemChannel] = None
        self.tick_count = 0
        self.idle_ticks = 0
        self.context_switches = 0
        self.float_accumulator = 0.0
        self.int_accumulator = 0
        self._last_status_print = 0.0

    # -- task and queue management -----------------------------------------------------

    def create_task(self, task: Task) -> None:
        """Register a task with the scheduler (unique names required)."""
        if any(existing.name == task.name for existing in self.tasks):
            raise SchedulerError(f"task {task.name!r} already exists")
        self.tasks.append(task)
        # Fixed priorities: precompute the dispatch order (highest priority
        # first, FIFO among equals) instead of re-sorting every quantum.
        self._priority_order = sorted(self.tasks, key=lambda t: -t.priority)

    def create_queue(self, name: str, capacity: int = 16) -> MessageQueue:
        if name in self.queues:
            raise SchedulerError(f"queue {name!r} already exists")
        queue = MessageQueue(name, capacity)
        self.queues[name] = queue
        return queue

    def attach_ivshmem(self, channel: IvshmemChannel) -> None:
        """Give the send/receive tasks an inter-cell channel to talk over."""
        self.ivshmem = channel

    def task_by_name(self, name: str) -> Optional[Task]:
        for task in self.tasks:
            if task.name == name:
                return task
        return None

    def boot_banner(self) -> str:
        return (
            f"FreeRTOS V10 starting on cell \"{self.name}\" "
            f"with {len(self.tasks)} tasks"
        )

    # -- scheduler --------------------------------------------------------------------------

    def _ready_tasks(self, now: float) -> List[Task]:
        # Inlined Task.release_if_due: this runs once per task per quantum,
        # and the method-call version dominates the scheduler's step cost.
        ready = TaskState.READY
        suspended = TaskState.SUSPENDED
        deleted = TaskState.DELETED
        deadline = now + 1e-12
        for task in self.tasks:
            state = task.state
            if state is ready or state is suspended or state is deleted:
                continue
            if deadline >= task.next_release:
                if task.run_count and now - task.next_release >= task.period:
                    task.missed_deadlines += 1
                task.state = ready
        # Fixed-priority: highest priority first, FIFO among equals (the
        # precomputed order is a stable sort of the creation order).
        return [task for task in self._priority_order if task.state is ready]

    def step(self, cpu_id: int, now: float, dt: float) -> List[GuestEvent]:
        """Run one scheduling quantum and return the traps it generated."""
        if self.state is not GuestState.RUNNING:
            return []
        self.stats.steps += 1
        ticks_cache = self._ticks_cache
        if ticks_cache is not None and ticks_cache[0] == dt:
            ticks = ticks_cache[1]
        else:
            ticks = max(1, int(round(dt / self.config.tick_period)))
            self._ticks_cache = (dt, ticks)
        self.tick_count += ticks

        events: List[GuestEvent] = []
        ready = self._ready_tasks(now)
        if ready:
            apply_effect = self._apply_effect
            self.context_switches += len(ready)
            for task in ready:
                for effect in task.run(now):
                    apply_effect(task, effect, now)
        else:
            self.idle_ticks += ticks

        self._maybe_print_status(now)
        self._generate_traps(cpu_id, now, events, idle=not ready)
        self.stats.traps_generated += len(events)
        return events

    def _apply_effect(self, task: Task, effect: TaskEffect, now: float) -> None:
        # Dispatch ordered by frequency: the 17 arithmetic tasks emit a
        # COMPUTE effect every release, queue traffic comes next, prints and
        # LED toggles are comparatively rare.
        kind = effect.kind
        if kind is EffectKind.COMPUTE:
            value = effect.value
            if isinstance(value, float) and not value.is_integer():
                self.float_accumulator += value
            else:
                self.int_accumulator += int(value)
        elif kind is EffectKind.QUEUE_SEND:
            queue = self.queues.get(effect.queue_name)
            if queue is not None:
                queue.send(effect.payload, now=now)
        elif kind is EffectKind.QUEUE_RECEIVE:
            queue = self.queues.get(effect.queue_name)
            if queue is not None:
                queue.receive()
        elif kind is EffectKind.IVSHMEM_SEND:
            if self.ivshmem is not None and self.cell is not None:
                payload = effect.payload
                if not isinstance(payload, (bytes, bytearray)):
                    payload = str(payload).encode()
                self.ivshmem.send(self.cell.name, bytes(payload))
        elif kind is EffectKind.PRINT:
            self.console(f"[{task.name}] {effect.text}")
        elif kind is EffectKind.LED_TOGGLE:
            if self.board is not None:
                self.board.led.toggle()

    def _maybe_print_status(self, now: float) -> None:
        if now - self._last_status_print < self.config.status_print_period:
            return
        self._last_status_print = now
        alive = sum(1 for task in self.tasks if task.state is not TaskState.DELETED)
        self.console(
            f"tick={self.tick_count} tasks={alive} "
            f"switches={self.context_switches} idle={self.idle_ticks}"
        )

    # -- trap generation ------------------------------------------------------------------------

    def _generate_traps(self, cpu_id: int, now: float,
                        events: Optional[List[GuestEvent]] = None, *,
                        idle: bool) -> List[GuestEvent]:
        if events is None:
            events = []
        nominal = self.nominal_registers(cpu_id)
        self.place_registers(cpu_id, nominal)

        if idle and self.rng.random() < self.config.wfi_probability:
            events.append(GuestEvent(trap=TrapCode.WFI, registers=dict(nominal),
                                     description="idle loop WFI"))
        if self.rng.random() < self.config.cp15_probability:
            events.append(GuestEvent(trap=TrapCode.CP15_ACCESS,
                                     registers=dict(nominal),
                                     description="performance counter read"))
        if self.ivshmem is not None and self.rng.random() < self.config.ivshmem_mmio_probability:
            doorbell = self._ivshmem_doorbell_address()
            if doorbell is not None:
                events.append(
                    GuestEvent(
                        trap=TrapCode.DATA_ABORT,
                        registers=dict(nominal),
                        fault_address=doorbell,
                        description="ivshmem doorbell write",
                    )
                )
        if self.rng.random() < self.config.debug_putc_probability:
            registers = dict(nominal)
            registers[Register.R0] = int(Hypercall.DEBUG_CONSOLE_PUTC)
            registers[Register.R1] = ord(".")
            events.append(GuestEvent(trap=TrapCode.HYPERCALL, registers=registers,
                                     description="debug console putc"))
        return events

    def _ivshmem_doorbell_address(self) -> Optional[int]:
        if self.cell is None:
            return None
        mapping = self.cell.memory_map.find_by_name("ivshmem")
        if mapping is None:
            return None
        return mapping.virt_start + 0x10

    # -- interrupts and panic -----------------------------------------------------------------------

    def on_interrupt(self, irq: int, cpu_id: int) -> None:
        super().on_interrupt(irq, cpu_id)
        if self.ivshmem is not None and irq == self.ivshmem.doorbell_irq:
            self._drain_ivshmem(cpu_id)

    def _drain_ivshmem(self, cpu_id: int) -> None:
        assert self.ivshmem is not None and self.cell is not None
        message = self.ivshmem.receive(self.cell.name)
        while message is not None:
            queue = self.queues.get("rx")
            if queue is not None:
                queue.send(message.payload, now=self.board.clock.now if self.board else 0.0)
            message = self.ivshmem.receive(self.cell.name)

    def on_system_panic(self, reason: str) -> None:
        super().on_system_panic(reason)
        # The cell's CPUs are parked; no further output will appear.

    # -- health metrics used by tests and monitors -----------------------------------------------------

    def healthy(self) -> bool:
        """Whether the RTOS is still scheduling tasks."""
        return self.state is GuestState.RUNNING and bool(self.tasks)

    def runs_per_task(self) -> Dict[str, int]:
        return {task.name: task.run_count for task in self.tasks}

    # -- snapshot / restore -----------------------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["freertos"] = (
            self.tick_count, self.idle_ticks, self.context_switches,
            self.float_accumulator, self.int_accumulator,
            self._last_status_print, self.ivshmem,
        )
        # The dispatch order is a list of the same Task objects restore
        # mutates in place; copying the list (not the tasks) is enough to
        # bring back the order that was live at capture time even if
        # create_task() ran in between.
        state["priority_order"] = list(self._priority_order)
        state["tasks"] = [task.snapshot_state() for task in self.tasks]
        state["queues"] = {
            name: queue.snapshot_state() for name, queue in self.queues.items()
        }
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        (self.tick_count, self.idle_ticks, self.context_switches,
         self.float_accumulator, self.int_accumulator,
         self._last_status_print, self.ivshmem) = state["freertos"]
        self._priority_order = list(state["priority_order"])
        for task, task_state in zip(self.tasks, state["tasks"]):
            task.restore_state(task_state)
        for name, queue_state in state["queues"].items():
            self.queues[name].restore_state(queue_state)
