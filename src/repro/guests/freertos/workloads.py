"""The paper's FreeRTOS workload.

Section III of the paper describes the non-root cell's task set: "a task to
blink an onboard led, a couple of send/receive tasks, two floating-point
arithmetic tasks, and fifteen integer ones". This module builds exactly that
task set on top of :class:`~repro.guests.freertos.kernel.FreeRTOSKernel`.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.registry import WORKLOADS
from repro.guests.freertos.kernel import FreeRTOSKernel, KernelConfig
from repro.guests.freertos.queue import MessageQueue
from repro.guests.freertos.task import EffectKind, Task, TaskEffect

#: Number of integer arithmetic tasks in the paper's workload.
NUM_INTEGER_TASKS = 15
#: Number of floating-point arithmetic tasks in the paper's workload.
NUM_FLOAT_TASKS = 2


def _blink_body(task: Task, now: float) -> List[TaskEffect]:
    """Toggle the onboard LED and report every few blinks."""
    effects = [TaskEffect(kind=EffectKind.LED_TOGGLE)]
    if task.run_count % 10 == 0:
        effects.append(
            TaskEffect(kind=EffectKind.PRINT, text=f"blink #{task.run_count}")
        )
    return effects


def _sender_body(task: Task, now: float) -> List[TaskEffect]:
    """Push a message onto the tx queue and over the inter-cell channel."""
    payload = f"msg-{task.run_count}"
    effects = [
        TaskEffect(kind=EffectKind.QUEUE_SEND, queue_name="tx", payload=payload),
        TaskEffect(kind=EffectKind.IVSHMEM_SEND, payload=payload),
    ]
    if task.run_count % 20 == 0:
        effects.append(
            TaskEffect(kind=EffectKind.PRINT, text=f"sent {task.run_count} messages")
        )
    return effects


def _receiver_body(task: Task, now: float) -> List[TaskEffect]:
    """Drain the tx queue (the paired receive task)."""
    effects = [TaskEffect(kind=EffectKind.QUEUE_RECEIVE, queue_name="tx")]
    if task.run_count % 20 == 0:
        effects.append(
            TaskEffect(kind=EffectKind.PRINT, text=f"received batch {task.run_count}")
        )
    return effects


def _make_float_body(index: int):
    def body(task: Task, now: float) -> List[TaskEffect]:
        value = math.sin(task.run_count * 0.1 + index) * math.sqrt(task.run_count + 1.5)
        effects = [TaskEffect(kind=EffectKind.COMPUTE, value=value)]
        if task.run_count % 50 == 0:
            effects.append(
                TaskEffect(kind=EffectKind.PRINT,
                           text=f"fp[{index}] iteration {task.run_count} value {value:.4f}")
            )
        return effects

    return body


def _make_integer_body(index: int):
    def body(task: Task, now: float) -> List[TaskEffect]:
        value = (task.run_count * 2654435761 + index * 97) % 104729
        effects = [TaskEffect(kind=EffectKind.COMPUTE, value=float(value))]
        if task.run_count % 100 == 0:
            effects.append(
                TaskEffect(kind=EffectKind.PRINT,
                           text=f"int[{index}] iteration {task.run_count} value {value}")
            )
        return effects

    return body


@WORKLOADS.register("paper", "freertos-paper")
def build_paper_workload(name: str = "FreeRTOS", *, seed: int = 0,
                         config: Optional[KernelConfig] = None) -> FreeRTOSKernel:
    """Build the FreeRTOS kernel loaded with the paper's task set."""
    kernel = FreeRTOSKernel(name, seed=seed, config=config)
    kernel.create_queue("tx", capacity=32)
    kernel.create_queue("rx", capacity=32)

    kernel.create_task(
        Task(name="blink", priority=3, period=0.5, body=_blink_body)
    )
    kernel.create_task(
        Task(name="sender", priority=4, period=0.1, body=_sender_body)
    )
    kernel.create_task(
        Task(name="receiver", priority=4, period=0.1, body=_receiver_body)
    )
    for index in range(NUM_FLOAT_TASKS):
        kernel.create_task(
            Task(name=f"float-{index}", priority=2, period=0.05,
                 body=_make_float_body(index))
        )
    for index in range(NUM_INTEGER_TASKS):
        kernel.create_task(
            Task(name=f"integer-{index}", priority=1, period=0.05,
                 body=_make_integer_body(index))
        )
    return kernel
