"""FreeRTOS-style task model.

Tasks are periodic: each has a priority, a release period, and a body that
runs when the scheduler picks it. Bodies return :class:`TaskEffect` objects —
console prints, LED toggles, queue operations, compute results, ivshmem
messages — which the kernel turns into observable behaviour and, for some of
them, into hypervisor traps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import SchedulerError


class TaskState(enum.Enum):
    """FreeRTOS task states."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SUSPENDED = "suspended"
    DELETED = "deleted"


class EffectKind(enum.Enum):
    """Kinds of observable effects a task body may produce."""

    PRINT = "print"
    LED_TOGGLE = "led_toggle"
    QUEUE_SEND = "queue_send"
    QUEUE_RECEIVE = "queue_receive"
    IVSHMEM_SEND = "ivshmem_send"
    COMPUTE = "compute"


@dataclass(slots=True)
class TaskEffect:
    """One effect produced by a task body.

    ``slots=True``: task bodies construct effects every release, making this
    one of the most-allocated classes in the simulation.
    """

    kind: EffectKind
    text: str = ""
    queue_name: str = ""
    payload: Any = None
    value: float = 0.0


#: Signature of a task body: ``body(task, now) -> list of effects``.
TaskBody = Callable[["Task", float], List[TaskEffect]]


@dataclass
class Task:
    """A periodic FreeRTOS task."""

    name: str
    priority: int
    period: float
    body: TaskBody
    state: TaskState = TaskState.BLOCKED
    next_release: float = 0.0
    run_count: int = 0
    missed_deadlines: int = 0
    last_started: Optional[float] = None
    stack_words: int = 128

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulerError("task name must not be empty")
        if self.priority < 0:
            raise SchedulerError(f"task {self.name!r} must have priority >= 0")
        if self.period <= 0:
            raise SchedulerError(f"task {self.name!r} must have a positive period")

    def release_if_due(self, now: float) -> bool:
        """Move the task to READY if its period has elapsed."""
        if self.state in (TaskState.SUSPENDED, TaskState.DELETED):
            return False
        if self.state is TaskState.READY:
            return False
        if now + 1e-12 >= self.next_release:
            # Detect overruns: if we are a whole period late, a deadline was missed.
            if self.run_count and now - self.next_release >= self.period:
                self.missed_deadlines += 1
            self.state = TaskState.READY
            return True
        return False

    def run(self, now: float) -> List[TaskEffect]:
        """Execute the task body once and block until the next period."""
        if self.state is not TaskState.READY:
            raise SchedulerError(
                f"task {self.name!r} cannot run from state {self.state.value}"
            )
        self.state = TaskState.RUNNING
        self.last_started = now
        self.run_count += 1
        effects = self.body(self, now)
        self.state = TaskState.BLOCKED
        self.next_release = now + self.period
        return effects

    def snapshot_state(self) -> tuple:
        """Capture the scheduler-visible state of the task."""
        return (self.state, self.next_release, self.run_count,
                self.missed_deadlines, self.last_started)

    def restore_state(self, state: tuple) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        (self.state, self.next_release, self.run_count,
         self.missed_deadlines, self.last_started) = state

    def suspend(self) -> None:
        self.state = TaskState.SUSPENDED

    def resume(self, now: float) -> None:
        if self.state is TaskState.SUSPENDED:
            self.state = TaskState.BLOCKED
            self.next_release = now

    def delete(self) -> None:
        self.state = TaskState.DELETED
