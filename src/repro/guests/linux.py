"""Root-cell Linux model.

The root cell runs a general-purpose Linux whose roles in the experiments are
(1) to host the ``jailhouse`` management tool (cell create/load/start/
shutdown/destroy — modeled by :class:`~repro.hypervisor.cli.JailhouseCli`),
(2) to generate background trap traffic on CPU 0, and (3) to make the
whole-system consequence of a hypervisor panic observable: when the
hypervisor dies underneath it, the console shows a kernel panic — the
signature the paper calls "panic park".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.registry import GUESTS
from repro.guests.base import GuestEvent, GuestOS, GuestState
from repro.hw.registers import Register
from repro.hypervisor.hypercalls import Hypercall
from repro.hypervisor.traps import TrapCode


@GUESTS.register("linux")
class LinuxGuest(GuestOS):
    """General-purpose OS running in the root cell."""

    def __init__(self, name: str = "BananaPi-Linux", *, seed: int = 0,
                 hypercall_probability: float = 0.02,
                 wfi_probability: float = 0.20,
                 cp15_probability: float = 0.05,
                 log_period: float = 2.0) -> None:
        super().__init__(name, seed=seed)
        self.hypercall_probability = hypercall_probability
        self.wfi_probability = wfi_probability
        self.cp15_probability = cp15_probability
        self.log_period = log_period
        self.jiffies = 0
        self.syscalls_serviced = 0
        # repro: allow[snapshot-complete] -- pure memo of dt -> jiffy increment; a hit and a recompute yield identical state
        self._jiffy_cache: Optional[tuple] = None
        self._last_log = 0.0
        self.kernel_panicked = False
        self.panic_message: Optional[str] = None

    def boot_banner(self) -> str:
        return "Linux version 5.10.0-jailhouse (root cell) booting"

    def step(self, cpu_id: int, now: float, dt: float) -> List[GuestEvent]:
        """One quantum of root-cell activity on ``cpu_id``."""
        if self.state is not GuestState.RUNNING:
            return []
        self.stats.steps += 1
        jiffy_cache = self._jiffy_cache
        if jiffy_cache is not None and jiffy_cache[0] == dt:
            self.jiffies += jiffy_cache[1]
        else:
            increment = max(1, int(round(dt / 0.010)))
            self._jiffy_cache = (dt, increment)
            self.jiffies += increment
        self.syscalls_serviced += int(self.rng.integers(5, 40))

        if now - self._last_log >= self.log_period:
            self._last_log = now
            self.console(
                f"systemd[1]: heartbeat jiffies={self.jiffies} "
                f"syscalls={self.syscalls_serviced}"
            )

        events: List[GuestEvent] = []
        nominal = self.nominal_registers(cpu_id)
        self.place_registers(cpu_id, nominal)

        if self.rng.random() < self.wfi_probability:
            events.append(GuestEvent(trap=TrapCode.WFI, registers=dict(nominal),
                                     description="cpuidle WFI"))
        if self.rng.random() < self.cp15_probability:
            events.append(GuestEvent(trap=TrapCode.CP15_ACCESS,
                                     registers=dict(nominal),
                                     description="arch timer register access"))
        if self.rng.random() < self.hypercall_probability:
            registers = dict(nominal)
            registers[Register.R0] = int(Hypercall.HYPERVISOR_GET_INFO)
            events.append(GuestEvent(trap=TrapCode.HYPERCALL, registers=registers,
                                     description="jailhouse driver info query"))
        self.stats.traps_generated += len(events)
        return events

    def on_system_panic(self, reason: str) -> None:
        """The hypervisor died: the root kernel panics with it."""
        super().on_system_panic(reason)
        self.kernel_panicked = True
        self.panic_message = reason
        self.console(f"Kernel panic - not syncing: {reason}")
        self.console("---[ end Kernel panic - not syncing ]---")

    def healthy(self) -> bool:
        return self.state is GuestState.RUNNING and not self.kernel_panicked

    # -- snapshot / restore ------------------------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["linux"] = (self.jiffies, self.syscalls_serviced, self._last_log,
                          self.kernel_panicked, self.panic_message)
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        (self.jiffies, self.syscalls_serviced, self._last_log,
         self.kernel_panicked, self.panic_message) = state["linux"]
