"""Deterministic sharding and work-queue ordering for campaign execution.

The paper's campaigns are thousands of *independent* one-minute tests (e.g.
hundreds of tests per target function and intensity level), so the execution
order carries no semantic weight — only the per-spec seed does. That makes the
plan trivially shardable: this module turns a :class:`~repro.core.plan.TestPlan`
into an ordered work queue of :class:`WorkItem`\\ s (plan position + spec),
splits the queue into deterministic shards/chunks for the worker pool, and
keeps everything reproducible: the same plan always yields the same queue, the
same shards, and — because results are re-assembled by plan position — the
same :class:`~repro.core.campaign.CampaignResult` regardless of how many
workers ran it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

from repro.core.experiment import ExperimentSpec
from repro.core.plan import TestPlan
from repro.errors import CampaignError


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit: a spec plus its position in the plan.

    The position is what lets the engine stream results out of order (workers
    finish whenever they finish) and still hand back a campaign result whose
    ``results`` list matches sequential execution exactly.
    """

    index: int
    spec: ExperimentSpec


@dataclass(frozen=True)
class Shard:
    """A deterministic slice of the work queue assigned to one worker lane."""

    shard_index: int
    items: Sequence[WorkItem]

    def __len__(self) -> int:
        return len(self.items)


def build_work_queue(plan: TestPlan,
                     skip_indices: Set[int] = frozenset()) -> List[WorkItem]:
    """Turn a plan into the ordered queue of still-to-run work items.

    ``skip_indices`` holds plan positions whose records already exist in a
    checkpoint; they are simply left out of the queue, which is how resume
    avoids re-executing completed specs.
    """
    return [
        WorkItem(index=index, spec=spec)
        for index, spec in enumerate(plan)
        if index not in skip_indices
    ]


def shard_work(items: Sequence[WorkItem], num_shards: int) -> List[Shard]:
    """Split the queue into ``num_shards`` round-robin shards.

    Round-robin (item ``i`` goes to shard ``i % num_shards``) keeps shards
    balanced even when a plan interleaves short and long experiments (the
    paper mixes 20 s lifecycle tests with 60 s steady-state tests), and it is
    fully determined by the queue order — no randomness, no timing.
    """
    if num_shards <= 0:
        raise CampaignError(f"shard count must be positive, got {num_shards}")
    num_shards = min(num_shards, max(len(items), 1))
    buckets: List[List[WorkItem]] = [[] for _ in range(num_shards)]
    for position, item in enumerate(items):
        buckets[position % num_shards].append(item)
    return [
        Shard(shard_index=index, items=tuple(bucket))
        for index, bucket in enumerate(buckets)
    ]


def shard_for_pool(items: Sequence[WorkItem],
                   chunk_size: int) -> List[Shard]:
    """Group the queue into pool tasks of roughly ``chunk_size`` items each.

    Grouping amortizes task-dispatch overhead when experiments are very
    short; ``chunk_size=1`` gives the finest streaming/checkpoint granularity
    and is the right choice for the paper's one-minute tests. Groups are the
    round-robin shards of :func:`shard_work`, so a plan whose durations vary
    systematically (short lifecycle tests first, long steady-state tests
    last) still spreads evenly across workers.
    """
    if chunk_size <= 0:
        raise CampaignError(f"chunk size must be positive, got {chunk_size}")
    if not items:
        return []
    num_tasks = (len(items) + chunk_size - 1) // chunk_size
    return shard_work(items, num_tasks)


def suggest_chunk_size(num_items: int, jobs: int) -> int:
    """Pick a per-task item count for *very short* experiments (opt-in).

    The engine defaults to one item per pool task so every completed
    experiment checkpoints and streams immediately — right for the paper's
    minute-long tests. When experiments are milliseconds (simulation sweeps,
    benchmarks), dispatch overhead dominates; this heuristic aims for several
    tasks per worker (so the pool stays busy near the end of the campaign)
    while capping at 8 items per task so checkpointing never gets too coarse.
    Pass the result as ``chunk_size`` explicitly.
    """
    if num_items <= 0 or jobs <= 0:
        return 1
    per_worker = num_items / (jobs * 4)
    return max(1, min(8, int(per_worker)))
