"""Deterministic sharding and work-queue ordering for campaign execution.

The paper's campaigns are thousands of *independent* one-minute tests (e.g.
hundreds of tests per target function and intensity level), so the execution
order carries no semantic weight — only the per-spec seed does. That makes the
plan trivially shardable: this module turns a :class:`~repro.core.plan.TestPlan`
into an ordered work queue of :class:`WorkItem`\\ s (plan position + spec),
splits the queue into deterministic shards/chunks for the worker pool, and
keeps everything reproducible: the same plan always yields the same queue, the
same shards, and — because results are re-assembled by plan position — the
same :class:`~repro.core.campaign.CampaignResult` regardless of how many
workers ran it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.experiment import ExperimentSpec
from repro.core.plan import TestPlan
from repro.errors import CampaignError


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit: a spec plus its position in the plan.

    The position is what lets the engine stream results out of order (workers
    finish whenever they finish) and still hand back a campaign result whose
    ``results`` list matches sequential execution exactly.
    """

    index: int
    spec: ExperimentSpec


@dataclass(frozen=True)
class Shard:
    """A deterministic slice of the work queue assigned to one worker lane."""

    shard_index: int
    items: Sequence[WorkItem]

    def __len__(self) -> int:
        return len(self.items)


def build_work_queue(plan: TestPlan,
                     skip_indices: Set[int] = frozenset()) -> List[WorkItem]:
    """Turn a plan into the ordered queue of still-to-run work items.

    ``skip_indices`` holds plan positions whose records already exist in a
    checkpoint; they are simply left out of the queue, which is how resume
    avoids re-executing completed specs.
    """
    return [
        WorkItem(index=index, spec=spec)
        for index, spec in enumerate(plan)
        if index not in skip_indices
    ]


def shard_work(items: Sequence[WorkItem], num_shards: int) -> List[Shard]:
    """Split the queue into ``num_shards`` round-robin shards.

    Round-robin (item ``i`` goes to shard ``i % num_shards``) keeps shards
    balanced even when a plan interleaves short and long experiments (the
    paper mixes 20 s lifecycle tests with 60 s steady-state tests), and it is
    fully determined by the queue order — no randomness, no timing.
    """
    if num_shards <= 0:
        raise CampaignError(f"shard count must be positive, got {num_shards}")
    num_shards = min(num_shards, max(len(items), 1))
    buckets: List[List[WorkItem]] = [[] for _ in range(num_shards)]
    for position, item in enumerate(items):
        buckets[position % num_shards].append(item)
    return [
        Shard(shard_index=index, items=tuple(bucket))
        for index, bucket in enumerate(buckets)
    ]


def shard_for_pool(items: Sequence[WorkItem],
                   chunk_size: int) -> List[Shard]:
    """Group the queue into pool tasks of roughly ``chunk_size`` items each.

    Grouping amortizes task-dispatch overhead when experiments are very
    short; ``chunk_size=1`` gives the finest streaming/checkpoint granularity
    and is the right choice for the paper's one-minute tests. Groups are the
    round-robin shards of :func:`shard_work`, so a plan whose durations vary
    systematically (short lifecycle tests first, long steady-state tests
    last) still spreads evenly across workers.
    """
    if chunk_size <= 0:
        raise CampaignError(f"chunk size must be positive, got {chunk_size}")
    if not items:
        return []
    num_tasks = (len(items) + chunk_size - 1) // chunk_size
    return shard_work(items, num_tasks)


@dataclass(frozen=True)
class PrefixFamily:
    """All queued work items that share one pre-injection prefix.

    Every spec in a family executes the identical golden bring-up before the
    injector is armed (same :meth:`~repro.core.experiment.ExperimentSpec.
    prefix_key`), so a worker that owns the whole family pays that prefix
    exactly once and forks the fault variants from its snapshot.
    """

    key: str
    items: Tuple[WorkItem, ...]

    def __len__(self) -> int:
        return len(self.items)


def group_by_prefix(items: Sequence[WorkItem], *,
                    sut_token: str = "") -> List[PrefixFamily]:
    """Group the queue into prefix families, in first-appearance order.

    Grouping is fully determined by the queue: families appear in the order
    their first member does, and members keep their relative queue order —
    no randomness, no timing, so repeated runs schedule identically.
    Specs opting out of snapshot reuse (``cold_boot=True``) are isolated
    into singleton families keyed by their plan position, so they never
    share (or populate) a snapshot.
    """
    buckets: Dict[str, List[WorkItem]] = {}
    order: List[str] = []
    for item in items:
        key = item.spec.prefix_key(sut=sut_token)
        if item.spec.cold_boot:
            key = f"{key}!cold@{item.index}"
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = []
            order.append(key)
        bucket.append(item)
    return [PrefixFamily(key=key, items=tuple(buckets[key])) for key in order]


def shard_families(families: Sequence[PrefixFamily], chunk_size: int = 1,
                   min_shards: int = 1) -> List[Shard]:
    """Turn pre-grouped prefix families into pool tasks.

    The pool hands tasks out round-robin over the family sequence, so one
    worker owns a family end to end and pays its prefix once. ``chunk_size``
    greater than one merges consecutive small families into one task until
    the item count reaches it, trading checkpoint granularity for dispatch
    overhead exactly like :func:`shard_for_pool` does for chunks.

    ``min_shards`` (the worker count) guards against the opposite problem:
    fewer families than workers would silently idle the surplus workers, so
    the largest tasks are bisected until there are enough — a family slice
    re-pays the prefix once per worker that got a piece, which is still far
    cheaper than running a many-variant family serially.
    """
    if chunk_size <= 0:
        raise CampaignError(f"chunk size must be positive, got {chunk_size}")
    tasks: List[List[WorkItem]] = []
    current: List[WorkItem] = []
    for family in families:
        current.extend(family.items)
        if len(current) >= chunk_size:
            tasks.append(current)
            current = []
    if current:
        tasks.append(current)
    while tasks and len(tasks) < min_shards:
        largest = max(range(len(tasks)), key=lambda index: len(tasks[index]))
        task = tasks[largest]
        if len(task) < 2:
            break                        # nothing left worth splitting
        middle = len(task) // 2
        tasks[largest:largest + 1] = [task[:middle], task[middle:]]
    return [Shard(shard_index=index, items=tuple(task))
            for index, task in enumerate(tasks)]


def plan_family_batches(family: PrefixFamily, batch_size: int,
                        is_batchable) -> Tuple[List[List[WorkItem]],
                                               List[WorkItem]]:
    """Split one prefix family into lockstep batch tasks + scalar leftovers.

    ``is_batchable`` decides spec eligibility for the batched lockstep core
    (:func:`repro.engine.batch.batchable_spec` in production). Eligible
    members form consecutive batches of at most ``batch_size`` lanes; the
    rest run scalar. A batch needs at least two lanes to be worth the
    boundary bookkeeping, so a lone eligible member — including a trailing
    one left over by the split — joins the scalar leftovers. Deterministic:
    members keep their family order, so repeated runs form identical batches.
    """
    if batch_size <= 0:
        raise CampaignError(f"batch size must be positive, got {batch_size}")
    eligible = [item for item in family.items if is_batchable(item.spec)]
    scalar = [item for item in family.items if not is_batchable(item.spec)]
    if len(eligible) < 2:
        return [], list(family.items)
    batches = [list(eligible[start:start + batch_size])
               for start in range(0, len(eligible), batch_size)]
    if len(batches[-1]) == 1:
        scalar.append(batches.pop()[0])
    return batches, scalar


@dataclass(frozen=True)
class PlanShard:
    """One fleet lease unit: a deterministic slice of a plan.

    ``shard_id`` is a stable hash of the member spec identities, so the same
    plan sharded the same way yields the same ids on every host — the
    coordinator and a resumed coordinator agree on shard membership without
    exchanging anything beyond the campaign config. ``spec_ids`` are the
    members' :meth:`~repro.core.experiment.ExperimentSpec.identity` values in
    plan order (the wire format names specs by identity, never by position,
    so a worker compiling the config itself maps them back unambiguously).
    """

    shard_id: str
    spec_ids: Tuple[str, ...]
    spec_names: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.spec_ids)


def plan_shards(plan: TestPlan, *, shard_size: int,
                skip_identities: Set[str] = frozenset()) -> List[PlanShard]:
    """Split a plan into deterministic fleet shards of whole prefix families.

    The fleet's lease unit. Specs already completed (``skip_identities``,
    e.g. the identity stamps in a resumed coordinator's checkpoint) are left
    out, so a resume re-offers exactly the unfinished work. Shards are built
    from whole prefix families (:func:`group_by_prefix`) merged up to
    ``shard_size`` specs per shard, so a worker that owns a shard pays each
    pre-injection prefix once and its ``--prefix-cache``/``--batch`` engine
    runs at full effect. Fully determined by the plan and ``shard_size`` —
    no randomness, no timing — so every host derives the same shards.
    """
    if shard_size <= 0:
        raise CampaignError(f"shard size must be positive, got {shard_size}")
    identities: Dict[int, str] = {}
    items: List[WorkItem] = []
    for index, spec in enumerate(plan):
        identity = spec.identity()
        if identity in skip_identities:
            continue
        identities[index] = identity
        items.append(WorkItem(index=index, spec=spec))
    families = group_by_prefix(items)
    shards: List[PlanShard] = []
    current: List[WorkItem] = []
    def close(members: List[WorkItem]) -> None:
        ids = tuple(identities[item.index] for item in members)
        names = tuple(item.spec.name for item in members)
        digest = hashlib.sha256("|".join(ids).encode("utf-8")).hexdigest()
        shards.append(PlanShard(shard_id=digest[:16], spec_ids=ids,
                                spec_names=names))
    for family in families:
        current.extend(family.items)
        if len(current) >= shard_size:
            close(current)
            current = []
    if current:
        close(current)
    return shards


def normalize_chunk_size(value) -> "int | str | None":
    """Validate a chunk-size selector and return it unchanged.

    The one rule every front-end shares: ``None`` (engine default of one
    experiment per task), a positive ``int``, or the string ``"auto"``
    (sized from the queue via :func:`suggest_chunk_size`). Anything else —
    including ``bool``, which is an ``int`` subclass — raises
    :class:`~repro.errors.CampaignError`; callers with their own error
    vocabulary (config files, CLI) re-wrap it.
    """
    if value is None or value == "auto":
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise CampaignError(
            f"chunk size must be a positive integer or 'auto', got {value!r}"
        )
    if value <= 0:
        raise CampaignError(
            f"chunk size must be positive (or 'auto'), got {value}"
        )
    return value


def suggest_chunk_size(num_items: int, jobs: int) -> int:
    """Pick a per-task item count for *very short* experiments (opt-in).

    The engine defaults to one item per pool task so every completed
    experiment checkpoints and streams immediately — right for the paper's
    minute-long tests. When experiments are milliseconds (simulation sweeps,
    benchmarks), dispatch overhead dominates; this heuristic aims for several
    tasks per worker (so the pool stays busy near the end of the campaign)
    while capping at 8 items per task so checkpointing never gets too coarse.
    Pass the result as ``chunk_size`` explicitly.
    """
    if num_items <= 0 or jobs <= 0:
        return 1
    per_worker = num_items / (jobs * 4)
    return max(1, min(8, int(per_worker)))
