"""Supervised worker pool: liveness, timeouts, retries, quarantine.

Injected faults are *designed* to make the simulated system misbehave, so a
worker that wedges in an infinite trap loop or dies outright is an expected
operating condition of a large campaign, not an exceptional one. The bare
``multiprocessing.Pool`` the engine used before PR 7 had no answer to either:
a hung task stalled ``imap_unordered`` forever and a SIGKILLed worker could
deadlock the whole pool on its shared queues.

This module replaces it with an explicitly supervised pool:

* every worker gets its **own duplex pipe** — there is no shared queue whose
  internal lock a dying worker could take to its grave, so any worker can be
  SIGKILLed at any instant without affecting its siblings;
* the parent multiplexes pipes *and* process sentinels through
  :func:`multiprocessing.connection.wait`, so both results and deaths wake it
  immediately;
* each worker announces every experiment before running it (``start``
  messages double as heartbeats), giving the parent an exact in-flight item
  to time out, retry, or blame when the worker dies;
* dead workers are respawned (bounded by :attr:`RunPolicy.max_worker_restarts`
  for unexpected deaths; deliberate timeout kills are bounded per spec by
  :attr:`RunPolicy.retries` instead) and the untouched remainder of their
  shard is requeued;
* a spec that keeps crashing or timing out is **quarantined**: the campaign
  receives a synthesized infrastructure result
  (:attr:`~repro.core.outcomes.Outcome.INFRA_TIMEOUT` /
  :attr:`~repro.core.outcomes.Outcome.INFRA_CRASH`) so it still completes
  with one result per plan position, and the supervisor reports the spec
  through the event callback so the runner can record it for later re-offer.

Supervision events (``worker_crash``, ``worker_respawn``,
``experiment_retry``, ``experiment_timeout``, ``spec_quarantined``) are
delivered through a plain callback invoked in the parent process; the runner
wires it to the telemetry bus and the quarantine log.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import pickle
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.experiment import ExperimentResult
from repro.core.outcomes import Outcome
from repro.engine.scheduler import Shard, WorkItem
from repro.errors import CampaignError

#: Event callback: ``on_event(kind, **payload)``, invoked in the parent
#: process before the related result (if any) is yielded downstream.
EventCallback = Callable[..., None]

#: Default campaign-wide budget of unexpected worker respawns.
DEFAULT_MAX_WORKER_RESTARTS = 8

#: Default number of additional attempts before a failing spec is quarantined.
DEFAULT_RETRIES = 1


@dataclass(frozen=True)
class RunPolicy:
    """Fault-tolerance policy for campaign execution.

    ``retries`` is the number of *additional* attempts a spec gets after its
    first failure (crash, hang, or in-experiment exception) before it is
    quarantined; retried specs re-run with their original seed, so a retry
    that succeeds is bit-identical to a run that never failed.

    ``fail_fast`` restores the pre-supervision library semantics: worker
    exceptions propagate to the caller with their original type and exhausted
    crash/timeout retries raise :class:`~repro.errors.CampaignError` instead
    of quarantining. The CLI never sets it; ``CampaignEngine`` uses it when
    the caller asked for no policy at all.
    """

    timeout_s: Optional[float] = None
    retries: int = DEFAULT_RETRIES
    backoff_s: float = 0.25
    backoff_cap_s: float = 5.0
    max_worker_restarts: int = DEFAULT_MAX_WORKER_RESTARTS
    fail_fast: bool = False
    poll_s: float = 0.05
    shutdown_grace_s: float = 5.0

    def validate(self) -> "RunPolicy":
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise CampaignError(
                f"timeout must be positive, got {self.timeout_s}")
        if self.retries < 0:
            raise CampaignError(
                f"retries must be >= 0, got {self.retries}")
        if self.max_worker_restarts < 0:
            raise CampaignError(
                f"max worker restarts must be >= 0, "
                f"got {self.max_worker_restarts}")
        if self.backoff_s < 0:
            raise CampaignError(
                f"retry backoff must be >= 0, got {self.backoff_s}")
        return self


#: Policy reproducing the pre-supervision engine contract: no timeouts, no
#: retries, exceptions propagate. Worker *deaths* are still survived (they
#: used to wedge the pool) up to the restart budget.
LEGACY_POLICY = RunPolicy(timeout_s=None, retries=0, fail_fast=True)


def infra_result(spec, outcome: Outcome, *, attempts: int,
                 error: str) -> ExperimentResult:
    """Synthesize the result recorded for a quarantined spec.

    Fills the spec's plan slot so the campaign completes; carries no
    simulation evidence (``injections=0``, empty availability) because none
    was obtained. The attempt count and last error ride in ``extras`` so
    ``--output`` files and the analysis layer can see why.
    """
    if not outcome.is_infrastructure:
        raise CampaignError(
            f"synthesized results must use an infrastructure outcome, "
            f"got {outcome.value}")
    reason = ("hung past the watchdog timeout"
              if outcome is Outcome.INFRA_TIMEOUT
              else "crashed the worker process")
    return ExperimentResult(
        spec_name=spec.name,
        outcome=outcome,
        rationale=(f"quarantined after {attempts} attempt(s): every attempt "
                   f"{reason} (last error: {error})"),
        injections=0,
        duration=spec.duration,
        seed=spec.seed,
        scenario=spec.scenario.value,
        target=spec.target.describe(),
        fault_model=spec.fault_model.describe(),
        intensity=spec.intensity,
        extras={"quarantined": True,
                "infra_attempts": attempts,
                "infra_error": error},
    )


def _sendable_error(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else a portable stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return CampaignError(f"{type(exc).__name__}: {exc}")


def _supervised_worker(conn, init_args: tuple) -> None:
    """Worker process main loop: run shards received over the pipe.

    Messages to the parent: ``("start", shard_id, index)`` before every
    experiment (heartbeat + timeout anchor), ``("done_item", shard_id, index,
    result)`` / ``("error_item", shard_id, index, exc)`` after it, and
    ``("done_shard", shard_id)`` when the shard is exhausted, at which point
    the worker is idle and waits for the next ``("task", ...)`` or
    ``("stop",)``.
    """
    # Imported here, not at module top: workers.py imports this module.
    from repro.engine.workers import _WORKER_STATE, _init_worker, _run_item
    _init_worker(*init_args)
    sut_factory = _WORKER_STATE["sut_factory"]
    classifier = _WORKER_STATE["classifier"]
    prefix_cache = _WORKER_STATE.get("prefix_cache")
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == "stop":
                return
            _, shard_id, items = message
            batch_size = _WORKER_STATE.get("batch_size")
            if batch_size and prefix_cache is not None:
                _run_shard_batched(conn, shard_id, items, sut_factory,
                                   classifier, prefix_cache, batch_size)
            else:
                for item in items:
                    conn.send(("start", shard_id, item.index))
                    try:
                        index, result = _run_item(item, sut_factory,
                                                  classifier, prefix_cache)
                        conn.send(("done_item", shard_id, index, result))
                    except Exception as exc:  # noqa: BLE001 - forwarded
                        conn.send(("error_item", shard_id, item.index,
                                   _sendable_error(exc)))
            conn.send(("done_shard", shard_id))
    except (BrokenPipeError, OSError):
        return                           # parent went away: just exit
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _run_shard_batched(conn, shard_id: int, items, sut_factory, classifier,
                       cache, batch_size: int) -> None:
    """Batched lockstep variant of the shard loop, same message protocol.

    Each family's lockstep batches are announced with one ``start`` (their
    first lane): that lane is the parent's watchdog anchor and the crash/
    timeout victim, and the remaining lanes are requeued innocent if the
    worker dies — a retried lane re-runs as a singleton shard, i.e. scalar.
    Any batch failure resets the worker's SUT state and falls back to the
    scalar per-item loop for the whole family, so supervision accounting
    (retries, quarantine) stays per experiment.
    """
    from repro.engine.workers import (
        _reset_worker_state, _run_family_batched, _run_item,
        batchable_spec, group_by_prefix, plan_family_batches)
    for family in group_by_prefix(items, sut_token=cache.sut_token):
        batches, scalar_items = plan_family_batches(family, batch_size,
                                                    batchable_spec)
        batched = None
        if batches:
            conn.send(("start", shard_id, batches[0][0].index))
            try:
                batched = _run_family_batched(batches, sut_factory,
                                              classifier, cache)
            except Exception:  # noqa: BLE001 - scalar rerun surfaces it
                _reset_worker_state(sut_factory, cache)
        if batched is None:
            scalar_items = family.items
        else:
            for index, result in batched:
                conn.send(("done_item", shard_id, index, result))
        for item in scalar_items:
            conn.send(("start", shard_id, item.index))
            try:
                index, result = _run_item(item, sut_factory, classifier,
                                          cache)
                conn.send(("done_item", shard_id, index, result))
            except Exception as exc:  # noqa: BLE001 - forwarded to parent
                conn.send(("error_item", shard_id, item.index,
                           _sendable_error(exc)))


class _Worker:
    """Parent-side handle for one supervised worker process."""

    def __init__(self, context, init_args: tuple) -> None:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        self.process = context.Process(
            target=_supervised_worker, args=(child_conn, init_args),
            daemon=True)
        self.process.start()
        # Close our copy of the child's end so its EOF is observable. (Under
        # fork, siblings spawned later still inherit copies of this end, so
        # death detection never relies on EOF alone — the process sentinel is
        # always watched too.)
        child_conn.close()
        self.conn = parent_conn
        self.shard_id: Optional[int] = None
        self.items_by_index: Dict[int, WorkItem] = {}
        self.current: Optional[WorkItem] = None
        self.started_at: Optional[float] = None
        self.killed_for_timeout = False

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    @property
    def busy(self) -> bool:
        return self.shard_id is not None

    def assign(self, shard_id: int, items: Tuple[WorkItem, ...]) -> bool:
        """Dispatch a shard; ``False`` means the pipe is dead."""
        self.shard_id = shard_id
        self.items_by_index = {item.index: item for item in items}
        self.current = None
        self.started_at = None
        try:
            self.conn.send(("task", shard_id, items))
            return True
        except (BrokenPipeError, OSError):
            return False

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class SupervisedPool:
    """Streams ``(index, result)`` pairs while supervising worker processes.

    Drive it through :meth:`run`, a generator; closing the generator early
    (consumer abandons the stream) kills busy workers and reaps everything —
    the pipe-per-worker design leaves no shared queues or semaphores behind.
    """

    def __init__(self, shards: Sequence[Shard], *,
                 jobs: int,
                 context,
                 init_args: tuple,
                 policy: RunPolicy,
                 on_event: Optional[EventCallback] = None) -> None:
        self.policy = policy.validate()
        self.context = context
        self.init_args = init_args
        self.on_event = on_event
        self._pending: Deque[Tuple[int, Tuple[WorkItem, ...]]] = deque(
            (shard.shard_index, tuple(shard.items)) for shard in shards)
        self._next_shard_id = len(shards)
        self._expected: Set[int] = {
            item.index for shard in shards for item in shard.items}
        self._done: Set[int] = set()
        self._delayed: List[Tuple[float, int, Tuple[WorkItem, ...]]] = []
        self._attempts: Dict[int, int] = {}
        self._workers: List[_Worker] = []
        self._restarts_used = 0
        self._target_workers = max(1, min(jobs, max(len(shards), 1)))

    # -- bookkeeping --------------------------------------------------------------------

    def _emit(self, kind: str, **payload) -> None:
        if self.on_event is not None:
            self.on_event(kind, **payload)

    def _new_shard_id(self) -> int:
        self._next_shard_id += 1
        return self._next_shard_id

    def _spawn(self) -> _Worker:
        worker = _Worker(self.context, self.init_args)
        self._workers.append(worker)
        return worker

    # -- failure handling ---------------------------------------------------------------

    def _register_failure(self, item: WorkItem, reason: str, error: str,
                          out: List[Tuple[int, ExperimentResult]]) -> None:
        """One failed attempt of ``item``: schedule a retry or quarantine."""
        attempts = self._attempts.get(item.index, 0) + 1
        self._attempts[item.index] = attempts
        if attempts <= self.policy.retries:
            delay = min(self.policy.backoff_s * (2 ** (attempts - 1)),
                        self.policy.backoff_cap_s)
            self._emit("experiment_retry", spec=item.spec.name,
                       index=item.index, attempt=attempts, reason=reason,
                       delay_s=delay, error=error)
            self._delayed.append((time.monotonic() + delay,
                                  self._new_shard_id(), (item,)))
            return
        if self.policy.fail_fast:
            raise CampaignError(
                f"experiment {item.spec.name!r} {reason} "
                f"({attempts} attempt(s), last error: {error}); "
                f"pass retries/timeout to quarantine instead of aborting")
        outcome = (Outcome.INFRA_TIMEOUT if reason == "timeout"
                   else Outcome.INFRA_CRASH)
        self._emit("spec_quarantined", spec=item.spec.name, index=item.index,
                   spec_id=item.spec.identity(), seed=item.spec.seed,
                   scenario=item.spec.scenario.value, attempts=attempts,
                   reason=reason, error=error)
        self._done.add(item.index)
        out.append((item.index,
                    infra_result(item.spec, outcome, attempts=attempts,
                                 error=error)))

    def _handle_message(self, worker: _Worker, message,
                        out: List[Tuple[int, ExperimentResult]]) -> None:
        kind = message[0]
        if kind == "start":
            _, _, index = message
            worker.current = worker.items_by_index.get(index)
            worker.started_at = time.monotonic()
        elif kind == "done_item":
            _, _, index, result = message
            worker.current = None
            worker.started_at = None
            if index not in self._done:
                self._done.add(index)
                out.append((index, result))
        elif kind == "error_item":
            _, _, index, error = message
            worker.current = None
            worker.started_at = None
            item = worker.items_by_index.get(index)
            if index in self._done or item is None:
                return
            if self.policy.fail_fast:
                if isinstance(error, BaseException):
                    raise error
                raise CampaignError(str(error))
            self._register_failure(item, "error",
                                   f"{type(error).__name__}: {error}", out)
        elif kind == "done_shard":
            worker.shard_id = None
            worker.items_by_index = {}
            worker.current = None
            worker.started_at = None

    def _drain(self, worker: _Worker,
               out: List[Tuple[int, ExperimentResult]]) -> None:
        """Process every message currently readable on a worker's pipe."""
        while True:
            try:
                if not worker.conn.poll(0):
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                return
            except Exception:            # torn pickle from a dying worker
                return
            self._handle_message(worker, message, out)

    def _handle_death(self, worker: _Worker,
                      out: List[Tuple[int, ExperimentResult]]) -> None:
        """A worker process is gone: salvage, requeue, blame, respawn."""
        # Results may be sitting in the pipe buffer (including one for the
        # very item a timeout kill targeted): drain before deciding what
        # failed, so a completed experiment is never retried or duplicated.
        self._drain(worker, out)
        worker.process.join()
        exitcode = worker.process.exitcode
        pid = worker.pid
        worker.close()
        self._workers.remove(worker)

        timeout_kill = worker.killed_for_timeout
        victim: Optional[WorkItem] = None
        if worker.busy:
            remaining = [item for item in worker.items_by_index.values()
                         if item.index not in self._done]
            current = worker.current
            if current is not None and current.index not in self._done:
                victim = current
                remaining = [item for item in remaining
                             if item.index != current.index]
            if remaining:
                # Untouched work is innocent: requeue it (front of the queue,
                # it was already scheduled) with no attempt penalty.
                self._pending.appendleft(
                    (self._new_shard_id(),
                     tuple(sorted(remaining, key=lambda item: item.index))))
        if not timeout_kill:
            self._emit("worker_crash", worker=pid, exitcode=exitcode,
                       spec=victim.spec.name if victim else None,
                       index=victim.index if victim else None,
                       restarts_used=self._restarts_used)
        if victim is not None:
            if timeout_kill:
                self._register_failure(
                    victim, "timeout",
                    f"exceeded the {self.policy.timeout_s:g}s watchdog "
                    f"timeout (worker pid {pid} killed)", out)
            else:
                self._register_failure(
                    victim, "crash",
                    f"worker pid {pid} died (exitcode {exitcode})", out)

        # Respawn: timeout kills are deliberate and bounded per spec by the
        # retry budget, so they always earn a replacement; unexpected deaths
        # draw down the campaign-wide restart budget.
        if timeout_kill:
            replacement = self._spawn()
            self._emit("worker_respawn", worker=replacement.pid,
                       replaced=pid, restarts_used=self._restarts_used)
        elif self._restarts_used < self.policy.max_worker_restarts:
            self._restarts_used += 1
            replacement = self._spawn()
            self._emit("worker_respawn", worker=replacement.pid,
                       replaced=pid, restarts_used=self._restarts_used)

    def _check_timeouts(self,
                        out: List[Tuple[int, ExperimentResult]]) -> None:
        timeout_s = self.policy.timeout_s
        if timeout_s is None:
            return
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.started_at is None or worker.current is None:
                continue
            if now - worker.started_at < timeout_s:
                continue
            item = worker.current
            self._emit("experiment_timeout", spec=item.spec.name,
                       index=item.index, timeout_s=timeout_s,
                       attempt=self._attempts.get(item.index, 0) + 1,
                       worker=worker.pid)
            worker.killed_for_timeout = True
            worker.process.kill()
            self._handle_death(worker, out)

    # -- scheduling ---------------------------------------------------------------------

    def _promote_delayed(self) -> None:
        if not self._delayed:
            return
        now = time.monotonic()
        ready = [entry for entry in self._delayed if entry[0] <= now]
        if not ready:
            return
        self._delayed = [entry for entry in self._delayed if entry[0] > now]
        for _, shard_id, items in sorted(ready):
            self._pending.append((shard_id, items))

    def _dispatch(self, out: List[Tuple[int, ExperimentResult]]) -> None:
        for worker in list(self._workers):
            if not self._pending:
                return
            if worker.busy:
                continue
            shard_id, items = self._pending[0]
            if worker.assign(shard_id, items):
                self._pending.popleft()
            else:
                self._handle_death(worker, out)

    def _wait_timeout(self) -> float:
        timeout = self.policy.poll_s
        now = time.monotonic()
        for ready_at, _, _ in self._delayed:
            timeout = min(timeout, max(0.0, ready_at - now))
        if self.policy.timeout_s is not None:
            for worker in self._workers:
                if worker.started_at is not None:
                    deadline = worker.started_at + self.policy.timeout_s
                    timeout = min(timeout, max(0.0, deadline - now))
        return max(timeout, 0.001)

    def _work_remains(self) -> bool:
        return len(self._done) < len(self._expected)

    def _assert_alive(self) -> None:
        if self._workers or not self._work_remains():
            return
        raise CampaignError(
            f"all workers are dead and the respawn budget "
            f"(max_worker_restarts={self.policy.max_worker_restarts}) is "
            f"exhausted with {len(self._expected) - len(self._done)} "
            f"experiment(s) outstanding")

    # -- main loop ----------------------------------------------------------------------

    def run(self) -> Iterator[Tuple[int, ExperimentResult]]:
        if not self._expected:
            return
        try:
            for _ in range(self._target_workers):
                self._spawn()
            while self._work_remains():
                out: List[Tuple[int, ExperimentResult]] = []
                self._promote_delayed()
                self._dispatch(out)
                self._assert_alive()
                if self._workers:
                    handles = ([worker.conn for worker in self._workers]
                               + [worker.process.sentinel
                                  for worker in self._workers])
                    multiprocessing.connection.wait(
                        handles, timeout=self._wait_timeout())
                    for worker in list(self._workers):
                        self._drain(worker, out)
                        if not worker.process.is_alive():
                            self._handle_death(worker, out)
                    self._check_timeouts(out)
                else:
                    # Only backoff-delayed retries remain; sleep until due.
                    time.sleep(self._wait_timeout())
                for indexed in out:
                    yield indexed
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        for worker in self._workers:
            if worker.busy:
                # Mid-experiment (early exit / error): release it promptly.
                worker.process.kill()
            else:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + self.policy.shutdown_grace_s
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            worker.close()
        self._workers = []
