"""Streaming aggregation of campaign results.

The paper analyses its campaigns after the fact, from the collected logs; at
production scale you also want the headline numbers — outcome distribution,
failure rate, throughput — *while* the campaign runs, so a bad configuration
is caught after a hundred experiments, not after ten thousand. The engine
feeds every completed result (including ones restored from a checkpoint) to a
:class:`LiveAggregator`, which maintains rolling counts and hands immutable
:class:`AggregateSnapshot`\\ s to the progress callback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict

from repro.core.analysis import OutcomeTally
from repro.core.experiment import ExperimentResult


@dataclass(frozen=True)
class AggregateSnapshot:
    """Point-in-time view of a running campaign."""

    total: int
    completed: int
    resumed: int
    outcome_counts: Dict[str, int]
    failures: int
    injections: int
    elapsed: float
    #: Prefix fast-forward counters: experiments forked from a cached
    #: pre-injection snapshot vs. ones that executed (and cached) their
    #: family's prefix. Both stay 0 when the cache is off or bypassed.
    prefix_hits: int = 0
    prefix_misses: int = 0

    @property
    def executed(self) -> int:
        """Experiments actually run this session (completed minus restored)."""
        return self.completed - self.resumed

    @property
    def failure_rate(self) -> float:
        return self.failures / self.completed if self.completed else 0.0

    @property
    def throughput(self) -> float:
        """Experiments executed per wall-clock second this session."""
        return self.executed / self.elapsed if self.elapsed > 0 else 0.0

    def format_line(self) -> str:
        """One-line progress summary for CLI output."""
        line = (
            f"[{self.completed:>4}/{self.total}] "
            f"failure rate {self.failure_rate:6.1%}, "
            f"{self.injections} injections, "
            f"{self.throughput:5.1f} tests/s"
        )
        if self.prefix_hits or self.prefix_misses:
            line += f", prefix cache {self.prefix_hits}h/{self.prefix_misses}m"
        return line

    def summary(self) -> str:
        """Multi-line end-of-campaign summary (CLI + watch dashboard).

        Outcome lines are ordered by descending count (count ties broken by
        name, for stable output), and the prefix-cache line appears only
        when the cache actually served something — a bare run's summary
        shows no cache noise.
        """
        lines = [
            f"campaign: {self.completed}/{self.total} experiments "
            f"({self.resumed} resumed) in {self.elapsed:.1f} s "
            f"({self.throughput:.1f} tests/s)",
            f"failure rate {self.failure_rate:.1%}, "
            f"{self.injections} injections",
        ]
        for outcome, count in sorted(self.outcome_counts.items(),
                                     key=lambda item: (-item[1], item[0])):
            share = count / self.completed if self.completed else 0.0
            lines.append(f"  {outcome:<20} {count:>6}  {share:6.1%}")
        if self.prefix_hits or self.prefix_misses:
            lines.append(
                f"prefix cache: {self.prefix_hits} hits / "
                f"{self.prefix_misses} misses"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable view (the ``/metrics.json`` snapshot body)."""
        return {
            "total": self.total,
            "completed": self.completed,
            "resumed": self.resumed,
            "executed": self.executed,
            "outcome_counts": dict(self.outcome_counts),
            "failures": self.failures,
            "failure_rate": self.failure_rate,
            "injections": self.injections,
            "elapsed_s": self.elapsed,
            "throughput_per_s": self.throughput,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
        }


#: Engine progress callback: called once per completed experiment with the
#: rolling aggregate and the result that just landed.
EngineProgress = Callable[[AggregateSnapshot, ExperimentResult], None]


class LiveAggregator:
    """Accumulates outcome statistics as results stream in.

    Counting is delegated to the same
    :class:`~repro.core.analysis.OutcomeTally` the offline streaming
    analyzers use, so the live progress numbers of a campaign and the
    ``repro analyze`` numbers computed later from its records are the same
    counts by construction.
    """

    def __init__(self, total: int) -> None:
        self.total = total
        self.resumed = 0
        self.prefix_hits = 0
        self.prefix_misses = 0
        self._tally = OutcomeTally()
        self._started = time.perf_counter()

    @property
    def completed(self) -> int:
        return self._tally.completed

    @property
    def failures(self) -> int:
        return self._tally.failures

    @property
    def injections(self) -> int:
        return self._tally.injections

    @property
    def outcome_counts(self) -> Dict[str, int]:
        return self._tally.outcome_counts

    def restore(self, result: ExperimentResult) -> AggregateSnapshot:
        """Fold in a result recovered from a checkpoint (not executed now)."""
        self.resumed += 1
        return self.update(result)

    def update(self, result: ExperimentResult) -> AggregateSnapshot:
        self._tally.add(result.outcome, injections=result.injections)
        if result.prefix_cache_hit is True:
            self.prefix_hits += 1
        elif result.prefix_cache_hit is False:
            self.prefix_misses += 1
        return self.snapshot()

    def snapshot(self) -> AggregateSnapshot:
        return AggregateSnapshot(
            total=self.total,
            completed=self.completed,
            resumed=self.resumed,
            outcome_counts=dict(self.outcome_counts),
            failures=self.failures,
            injections=self.injections,
            elapsed=time.perf_counter() - self._started,
            prefix_hits=self.prefix_hits,
            prefix_misses=self.prefix_misses,
        )
