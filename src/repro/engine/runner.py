"""The campaign execution engine.

:class:`CampaignEngine` is the parallel, resumable counterpart of the
sequential loop that used to live in ``Campaign.run`` (which now delegates
here). It composes the other engine modules:

* :mod:`repro.engine.scheduler` orders the plan into a deterministic work
  queue and chunks it for the pool;
* :mod:`repro.engine.workers` executes chunks — in-process for ``jobs=1``,
  across a multiprocessing pool otherwise, each worker rebuilding the system
  under test from spec + seed so parallel output is identical to sequential;
* :mod:`repro.engine.checkpoint` streams completed records to an append-only
  file and, on resume, skips specs whose records already exist;
* :mod:`repro.engine.aggregate` folds results into rolling statistics
  surfaced through the progress callback.

With a :class:`~repro.obs.telemetry.Telemetry` bus attached the same result
loop also emits structured events (campaign start/end, one
``experiment_complete`` per result with its timing split and worker id,
checkpoint flushes) — the seam is identical to the progress callback, so
instrumentation rides on the parent process's existing per-result work and a
disabled bus costs one attribute check per result.

At the paper's campaign sizes (hundreds of one-minute tests per target
function / register class / injection rate, several campaigns per table) the
sequential loop is the bottleneck; the engine makes a campaign scale with the
machine while keeping results reproducible experiment-for-experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is optional)
    from repro.obs.telemetry import Telemetry

from repro.core.campaign import CampaignResult
from repro.core.experiment import (
    ExperimentResult,
    SutFactory,
    default_sut_factory,
)
from repro.core.outcomes import OutcomeClassifier
from repro.core.plan import TestPlan
from repro.core.registry import resolve_sut_factory
from repro.engine.aggregate import EngineProgress, LiveAggregator
from repro.engine.checkpoint import Checkpoint
from repro.engine.quarantine import QuarantineLog, open_quarantine
from repro.engine.scheduler import (
    build_work_queue,
    normalize_chunk_size,
    suggest_chunk_size,
)
from repro.engine.supervisor import (
    DEFAULT_MAX_WORKER_RESTARTS,
    DEFAULT_RETRIES,
    RunPolicy,
)
from repro.engine.workers import (
    DEFAULT_PREFIX_CACHE_SIZE,
    execute_pool,
    execute_serial,
    resolve_jobs,
)
from repro.errors import CampaignError


class CampaignEngine:
    """Executes a test plan across workers, with checkpoint/resume."""

    def __init__(self, plan: TestPlan, *,
                 jobs: int = 1,
                 sut_factory: "SutFactory | str" = default_sut_factory,
                 classifier: Optional[OutcomeClassifier] = None,
                 checkpoint_path: Optional[str] = None,
                 resume: bool = False,
                 chunk_size: "int | str | None" = None,
                 pooling: bool = False,
                 prefix_cache: bool = False,
                 prefix_cache_size: int = DEFAULT_PREFIX_CACHE_SIZE,
                 batch: bool = False,
                 batch_size: Optional[int] = None,
                 progress: Optional[EngineProgress] = None,
                 telemetry: "Telemetry | None" = None,
                 timeout_s: Optional[float] = None,
                 retries: Optional[int] = None,
                 max_worker_restarts: Optional[int] = None,
                 quarantine_path: Optional[str] = None,
                 flush_interval_s: float = 0.0) -> None:
        plan.validate()
        if resume and checkpoint_path is None:
            raise CampaignError("resume requires a checkpoint path")
        self.plan = plan
        self.jobs = resolve_jobs(jobs)
        # A registry key (e.g. "bao-like") becomes a factory that pickles by
        # value and re-resolves inside spawn-started worker processes.
        self.sut_factory = resolve_sut_factory(sut_factory)
        self.classifier = classifier or OutcomeClassifier()
        self.checkpoint = (
            Checkpoint(checkpoint_path, flush_interval_s=flush_interval_s)
            if checkpoint_path is not None else None
        )
        self.resume = resume
        #: Fault-tolerance policy. ``None`` (no timeout/retry/restart knob
        #: set) keeps the historical library contract: worker exceptions
        #: propagate with their original type and nothing is quarantined —
        #: though worker *deaths*, which used to wedge the pool forever, are
        #: still survived up to the default restart budget. Setting any knob
        #: opts into supervision: hung experiments are killed after
        #: ``timeout_s``, failing specs retry ``retries`` times with
        #: exponential backoff, and persistent offenders are quarantined with
        #: a synthesized infrastructure result so the campaign completes.
        self.policy: Optional[RunPolicy] = None
        if (timeout_s is not None or retries is not None
                or max_worker_restarts is not None):
            self.policy = RunPolicy(
                timeout_s=timeout_s,
                retries=DEFAULT_RETRIES if retries is None else retries,
                max_worker_restarts=(DEFAULT_MAX_WORKER_RESTARTS
                                     if max_worker_restarts is None
                                     else max_worker_restarts),
            ).validate()
        #: Sidecar log of quarantined specs (``<checkpoint>.quarantine`` by
        #: default). Quarantined specs are never checkpointed as complete, so
        #: ``--resume`` re-offers them; the log is the durable list of what
        #: needs attention, pruned of re-offered entries on resume.
        self.quarantine: Optional[QuarantineLog] = (
            open_quarantine(quarantine_path, checkpoint_path)
            if self.policy is not None or quarantine_path is not None
            else None
        )
        #: Supervision event counts from the last :meth:`run`
        #: (``worker_crash``/``worker_respawn``/``experiment_retry``/
        #: ``experiment_timeout``/``spec_quarantined``) — front-ends surface
        #: these in their end-of-run summaries.
        self.infra_counts: dict = {}
        #: How many quarantine entries the last resume dropped for re-offer.
        self.reoffered = 0
        #: Pool-task granularity: a positive int, ``None`` (= 1, stream every
        #: completion immediately), or ``"auto"`` to size tasks from the
        #: still-to-run queue via :func:`~repro.engine.scheduler.
        #: suggest_chunk_size`.
        self.chunk_size = normalize_chunk_size(chunk_size)
        #: Prefix fast-forward: execute each distinct pre-injection prefix
        #: once, snapshot it, and fork every fault variant of that prefix
        #: family from the snapshot. Record-for-record identical to cold
        #: execution (see the prefix parity tests); ``cold_boot=True`` specs
        #: opt out here too.
        #: Batched lockstep core: step each prefix family's steady-state
        #: members together on one shared simulated state, evicting a lane
        #: to the scalar path the moment its injector fires
        #: (:mod:`repro.engine.batch`). Record-for-record identical to
        #: scalar execution (see the batch parity tests). Implies the prefix
        #: cache — batches fork from the family's post-prefix snapshot.
        self.batch = batch
        if batch_size is not None and (isinstance(batch_size, bool)
                                       or not isinstance(batch_size, int)
                                       or batch_size <= 0):
            raise CampaignError(
                f"batch size must be a positive integer, got {batch_size!r}"
            )
        self.batch_size = batch_size
        self.prefix_cache = prefix_cache or batch
        #: Snapshot/reset pooling: each worker keeps one system under test
        #: alive and restores it between experiments instead of rebuilding.
        #: Outcomes are identical either way (see the campaign-parity tests);
        #: specs can opt out individually with ``cold_boot=True``. The prefix
        #: cache implies pooling — without it every family miss would build a
        #: fresh SUT and the LRU would pin one whole object graph per entry,
        #: whereas a pooled worker's entries all share its single SUT.
        self.pooling = pooling or prefix_cache
        self.prefix_cache_size = prefix_cache_size
        self.progress = progress
        #: Optional :class:`~repro.obs.telemetry.Telemetry` bus. ``None`` (or
        #: an inactive bus) keeps the result loop exactly as fast as before —
        #: every emit site is guarded by one truthiness check.
        self.telemetry = telemetry if (telemetry is not None
                                       and telemetry.active) else None

    def run(self) -> CampaignResult:
        """Execute the plan and return results in plan order.

        Completion order is whatever the pool produces; results are slotted
        back by plan position, so the returned ``CampaignResult`` is
        indistinguishable from a sequential run over the same seeds.
        """
        total = len(self.plan)
        slots: List[Optional[ExperimentResult]] = [None] * total
        aggregator = LiveAggregator(total)
        telemetry = self.telemetry
        if telemetry:
            telemetry.emit(
                "campaign_start",
                plan=self.plan.name,
                total=total,
                jobs=self.jobs,
                pooling=self.pooling,
                prefix_cache=self.prefix_cache,
                batch=self.batch,
                resume=self.resume,
                checkpoint=(str(self.checkpoint.path)
                            if self.checkpoint is not None else None),
            )

        skip = set()
        if self.checkpoint is not None:
            if self.resume:
                self.checkpoint.load()
                self.checkpoint.prune_stale(self.plan)
                skip = self.checkpoint.completed_indices(self.plan)
            else:
                # A fresh run must not inherit stale records at the same path.
                self.checkpoint.clear()
        self.infra_counts = {}
        self.reoffered = 0
        if self.resume and self.quarantine is not None:
            # Quarantined specs were never checkpointed, so the queue below
            # re-offers them automatically; dropping their entries keeps the
            # quarantine log a list of *currently* poisonous specs.
            self.reoffered = self.quarantine.reoffer(self.plan)

        for index, spec in enumerate(self.plan):
            if index not in skip:
                continue
            restored = self.checkpoint.result_for(spec)  # type: ignore[union-attr]
            slots[index] = restored
            if restored is not None:
                snapshot = aggregator.restore(restored)
                if telemetry:
                    telemetry.emit("experiment_restored",
                                   spec=restored.spec_name,
                                   index=index,
                                   outcome=restored.outcome.value)
                if self.progress is not None:
                    self.progress(snapshot, restored)

        queue = build_work_queue(self.plan, skip_indices=skip)
        specs_by_index = {item.index: item.spec for item in queue}
        chunk_size = self.chunk_size
        if chunk_size == "auto":
            chunk_size = suggest_chunk_size(len(queue), self.jobs)

        def on_event(kind: str, **payload) -> None:
            # Supervision events surface here, in the parent: counted for the
            # end-of-run summary, appended to the quarantine log, and put on
            # the telemetry bus for the watch dashboard.
            self.infra_counts[kind] = self.infra_counts.get(kind, 0) + 1
            if kind == "spec_quarantined" and self.quarantine is not None:
                self.quarantine.append(
                    spec=payload.get("spec", ""),
                    spec_id=payload.get("spec_id", ""),
                    seed=payload.get("seed", 0),
                    scenario=payload.get("scenario", ""),
                    attempts=payload.get("attempts", 0),
                    reason=payload.get("reason", ""),
                    error=payload.get("error", ""),
                )
            if telemetry:
                telemetry.emit(kind, **payload)

        if self.jobs == 1:
            stream = execute_serial(queue, self.sut_factory, self.classifier,
                                    self.pooling, self.prefix_cache,
                                    self.prefix_cache_size,
                                    policy=self.policy, on_event=on_event,
                                    batch=self.batch,
                                    batch_size=self.batch_size)
        else:
            stream = execute_pool(queue, self.jobs, self.sut_factory,
                                  self.classifier, chunk_size=chunk_size,
                                  pooling=self.pooling,
                                  prefix_cache=self.prefix_cache,
                                  prefix_cache_size=self.prefix_cache_size,
                                  policy=self.policy, on_event=on_event,
                                  batch=self.batch,
                                  batch_size=self.batch_size)

        # Batches execute inside worker processes, which cannot reach the
        # parent's telemetry bus; their lifecycle events are synthesized here
        # from the batch fields each result carries home.
        seen_batches: set = set()
        try:
            for index, result in stream:
                slots[index] = result
                if telemetry and result.batch_id is not None:
                    if result.batch_id not in seen_batches:
                        seen_batches.add(result.batch_id)
                        telemetry.emit("batch_formed",
                                       batch_id=result.batch_id,
                                       lanes=result.batch_lanes)
                    if result.batch_evicted:
                        telemetry.emit("lane_evicted",
                                       batch_id=result.batch_id,
                                       spec=result.spec_name,
                                       index=index,
                                       step=result.batch_eviction_step)
                # Quarantined specs are deliberately NOT committed: their
                # synthesized infra results fill the campaign, but a resume
                # must re-offer the spec, not restore a non-answer.
                if (self.checkpoint is not None
                        and not result.outcome.is_infrastructure):
                    flushes = self.checkpoint.flushes
                    self.checkpoint.commit(specs_by_index[index], result)
                    if telemetry and self.checkpoint.flushes != flushes:
                        telemetry.emit("checkpoint_flush",
                                       path=str(self.checkpoint.path),
                                       records=len(self.checkpoint))
                snapshot = aggregator.update(result)
                if telemetry:
                    telemetry.emit(
                        "experiment_complete",
                        spec=result.spec_name,
                        index=index,
                        outcome=result.outcome.value,
                        wall_s=result.wall_time,
                        prefix_wall_s=result.prefix_wall_time,
                        worker=result.worker_id,
                        prefix_cache_hit=result.prefix_cache_hit,
                        batch_id=result.batch_id,
                        batch_evicted=result.batch_evicted,
                        injections=result.injections,
                        completed=snapshot.completed,
                        queue_depth=total - snapshot.completed,
                        throughput_per_s=snapshot.throughput,
                    )
                if self.progress is not None:
                    self.progress(snapshot, result)
        finally:
            # Interval-batched commits must reach the disk even when the
            # stream dies mid-campaign — that partial checkpoint is exactly
            # what --resume picks up from.
            if self.checkpoint is not None and self.checkpoint.flush():
                if telemetry:
                    telemetry.emit("checkpoint_flush",
                                   path=str(self.checkpoint.path),
                                   records=len(self.checkpoint))

        if telemetry:
            final = aggregator.snapshot()
            telemetry.emit(
                "campaign_end",
                plan=self.plan.name,
                completed=final.completed,
                resumed=final.resumed,
                elapsed_s=final.elapsed,
                failures=final.failures,
                outcome_counts=final.outcome_counts,
                prefix_hits=final.prefix_hits,
                prefix_misses=final.prefix_misses,
            )

        missing = [index for index, slot in enumerate(slots) if slot is None]
        if missing:
            raise CampaignError(
                f"campaign {self.plan.name!r} finished with "
                f"{len(missing)} unexecuted experiments (first: {missing[:5]})"
            )
        return CampaignResult(plan_name=self.plan.name,
                              results=[slot for slot in slots if slot is not None])
