"""Poison-spec quarantine: the sidecar file of specs the campaign gave up on.

A spec that crashes or times out through every retry is *quarantined*: the
campaign completes anyway (its plan slot is filled with a synthesized
infrastructure result) and the spec's identity plus its last error are
appended here, one JSON object per line (schema ``repro-quarantine/v1``).
The file lives next to the checkpoint by default (``<checkpoint>.quarantine``)
and is intentionally not the checkpoint itself: quarantined specs are *not*
checkpointed as complete, so a later ``--resume`` naturally re-offers them —
the quarantine file is the human-readable record of what needs attention,
not a skip list.

Entry fields: ``spec`` (name), ``spec_id`` (:meth:`ExperimentSpec.identity`),
``seed``, ``scenario``, ``attempts``, ``reason`` (``timeout`` | ``crash`` |
``error``), ``error`` (last error text), ``ts`` (unix seconds).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

QUARANTINE_SCHEMA = "repro-quarantine/v1"

#: Suffix appended to a checkpoint path to derive the default location.
QUARANTINE_SUFFIX = ".quarantine"


def default_quarantine_path(checkpoint_path: "str | Path") -> Path:
    """The quarantine file that rides along a given checkpoint."""
    path = Path(checkpoint_path)
    return path.with_name(path.name + QUARANTINE_SUFFIX)


class QuarantineLog:
    """Append-only JSONL log of quarantined specs."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def append(self, *, spec: str, spec_id: str, seed: int, scenario: str,
               attempts: int, reason: str, error: str) -> Dict[str, object]:
        entry = {
            "schema": QUARANTINE_SCHEMA,
            "spec": spec,
            "spec_id": spec_id,
            "seed": seed,
            "scenario": scenario,
            "attempts": attempts,
            "reason": reason,
            "error": error,
            "ts": time.time(),  # repro: allow[determinism] -- operator-facing sidecar timestamp; never feeds records or identities
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
        return entry

    def entries(self) -> List[Dict[str, object]]:
        """All readable entries; torn/foreign lines are skipped.

        The log is advisory (the checkpoint is the source of truth for what
        completed), so a torn tail from a killed campaign is dropped rather
        than fatal.
        """
        if not self.path.exists():
            return []
        entries: List[Dict[str, object]] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(entry, dict):
                    entries.append(entry)
        return entries

    def reoffer(self, plan) -> int:
        """Drop entries for specs the given plan is about to re-run.

        Called on ``--resume``: quarantined specs were never checkpointed, so
        the engine re-executes them anyway; clearing their entries keeps the
        log a live list of *currently* poisonous specs instead of an
        ever-growing history. Entries for specs no longer in the plan are
        kept. Returns how many entries were dropped. The rewrite is atomic
        (tmp + rename) so a crash mid-reoffer cannot tear the log.
        """
        entries = self.entries()
        if not entries:
            return 0
        plan_ids = {spec.identity() for spec in plan}
        kept = [entry for entry in entries
                if entry.get("spec_id") not in plan_ids]
        dropped = len(entries) - len(kept)
        if not dropped:
            return 0
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for entry in kept:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return dropped


def open_quarantine(path: "str | Path | None",
                    checkpoint_path: "str | Path | None"
                    ) -> Optional[QuarantineLog]:
    """Resolve the quarantine log for a run, if any location is known."""
    if path is not None:
        return QuarantineLog(path)
    if checkpoint_path is not None:
        return QuarantineLog(default_quarantine_path(checkpoint_path))
    return None
