"""Worker-pool execution of experiment specs.

Each worker process rebuilds the system under test from the spec plus its
seed — exactly what :class:`~repro.core.experiment.Experiment` does in a
sequential run — so a parallel campaign is bit-identical to the sequential
one: the simulation is deterministic given the seed, and no state is shared
between experiments. Workers receive *chunks* of
:class:`~repro.engine.scheduler.WorkItem`\\ s and return ``(plan index,
ExperimentResult)`` pairs; completion order is arbitrary, re-assembly by index
happens in the parent.

Two backends share one streaming interface (an iterator of ``(index,
result)``):

* :func:`execute_serial` — in-process, used for ``jobs=1`` (the default path
  every existing ``Campaign.run`` caller goes through) and as the fallback
  when the platform offers no usable multiprocessing start method;
* :func:`execute_pool` — a ``multiprocessing`` pool, preferring the ``fork``
  start method (cheap on Linux, and it lets custom ``sut_factory`` closures
  cross into workers without pickling) and falling back to ``spawn``.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.experiment import (
    Experiment,
    ExperimentResult,
    SutFactory,
    default_sut_factory,
)
from repro.core.outcomes import OutcomeClassifier
from repro.core.registry import resolve_sut_factory
from repro.engine.scheduler import WorkItem, shard_for_pool
from repro.errors import CampaignError

#: One streamed unit of completed work: (position in the plan, its result).
IndexedResult = Tuple[int, ExperimentResult]

# Per-worker-process state, populated once by the pool initializer so chunk
# payloads stay small (specs only, no factory/classifier per task).
_WORKER_STATE: dict = {}


class PooledSutFactory:
    """SUT factory with snapshot/reset pooling.

    Keeps one system under test per process and retargets it between
    experiments instead of rebuilding the whole board + hypervisor + guest
    stack: a spec re-running the seed the SUT last booted restores the
    post-``setup()`` snapshot directly, any other seed restores the pristine
    post-construction state and re-seeds the guest RNG streams before the
    (much cheaper) warm boot. Outcomes are bit-identical to cold boots — the
    campaign-parity tests assert it record for record.

    SUTs that do not implement the pooling protocol
    (``enable_snapshot_pooling``/``reset_for_seed``) fall back to a cold
    build per call, as do specs marked ``cold_boot=True`` (handled by the
    caller via :attr:`base`).
    """

    def __init__(self, base: SutFactory) -> None:
        self.base = base
        self._sut = None

    def __call__(self, seed: int):
        sut = self._sut
        if sut is None:
            sut = self.base(seed)
            enable = getattr(sut, "enable_snapshot_pooling", None)
            if enable is None:
                return sut           # SUT cannot pool: plain cold boot
            enable()
            self._sut = sut
            return sut
        if sut.config.seed != seed:
            sut.reset_for_seed(seed)
        return sut


def _factory_for_spec(spec, sut_factory: SutFactory) -> SutFactory:
    """Honour a spec's cold-boot opt-out when the factory pools."""
    if isinstance(sut_factory, PooledSutFactory) and spec.cold_boot:
        return sut_factory.base
    return sut_factory


def _init_worker(sut_factory: SutFactory,
                 classifier: Optional[OutcomeClassifier],
                 pooling: bool = False) -> None:
    if pooling:
        sut_factory = PooledSutFactory(sut_factory)
    _WORKER_STATE["sut_factory"] = sut_factory
    _WORKER_STATE["classifier"] = classifier or OutcomeClassifier()


def _run_item(item: WorkItem, sut_factory: SutFactory,
              classifier: OutcomeClassifier) -> IndexedResult:
    experiment = Experiment(item.spec,
                            sut_factory=_factory_for_spec(item.spec, sut_factory),
                            classifier=classifier)
    return item.index, experiment.run()


def _run_chunk(chunk: Sequence[WorkItem]) -> List[IndexedResult]:
    """Pool task: run one chunk inside a worker process."""
    sut_factory = _WORKER_STATE["sut_factory"]
    classifier = _WORKER_STATE["classifier"]
    return [_run_item(item, sut_factory, classifier) for item in chunk]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return max(os.cpu_count() or 1, 1)
    if jobs < 0:
        raise CampaignError(f"jobs must be positive (or 0 for auto), got {jobs}")
    return jobs


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is only trusted on Linux: macOS lists it as available but CPython
    # made spawn the default there for a reason (forking a threaded process
    # can crash/deadlock workers).
    if (sys.platform == "linux"
            and "fork" in multiprocessing.get_all_start_methods()):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def execute_serial(items: Sequence[WorkItem],
                   sut_factory: "SutFactory | str" = default_sut_factory,
                   classifier: Optional[OutcomeClassifier] = None,
                   pooling: bool = False,
                   ) -> Iterator[IndexedResult]:
    """Run every item in queue order in this process (the ``jobs=1`` backend)."""
    classifier = classifier or OutcomeClassifier()
    sut_factory = resolve_sut_factory(sut_factory)
    if pooling:
        sut_factory = PooledSutFactory(sut_factory)
    for item in items:
        yield _run_item(item, sut_factory, classifier)


def execute_pool(items: Sequence[WorkItem],
                 jobs: int,
                 sut_factory: "SutFactory | str" = default_sut_factory,
                 classifier: Optional[OutcomeClassifier] = None,
                 chunk_size: Optional[int] = None,
                 pooling: bool = False,
                 ) -> Iterator[IndexedResult]:
    """Run items across ``jobs`` worker processes, streaming completions.

    Results are yielded as chunks finish (arbitrary order); callers that need
    plan order re-assemble by index. The pool is torn down before the iterator
    is exhausted returns, so a consumer that stops early still releases the
    workers.

    ``chunk_size`` defaults to 1: every completed experiment streams back (and
    checkpoints) immediately, which is what the paper's minute-long tests
    need. Pass a larger value (see
    :func:`~repro.engine.scheduler.suggest_chunk_size`) only when experiments
    are so short that per-task dispatch overhead dominates.
    """
    jobs = resolve_jobs(jobs)
    sut_factory = resolve_sut_factory(sut_factory)
    if jobs == 1 or len(items) <= 1:
        yield from execute_serial(items, sut_factory, classifier, pooling)
        return
    size = chunk_size or 1
    shards = shard_for_pool(items, size)
    context = _pool_context()
    pool = context.Pool(
        processes=min(jobs, len(shards)),
        initializer=_init_worker,
        initargs=(sut_factory, classifier, pooling),
    )
    try:
        tasks = [shard.items for shard in shards]
        for chunk_results in pool.imap_unordered(_run_chunk, tasks):
            for indexed in chunk_results:
                yield indexed
    finally:
        pool.terminate()
        pool.join()
