"""Worker-pool execution of experiment specs.

Each worker process rebuilds the system under test from the spec plus its
seed — exactly what :class:`~repro.core.experiment.Experiment` does in a
sequential run — so a parallel campaign is bit-identical to the sequential
one: the simulation is deterministic given the seed, and no state is shared
between experiments. Workers receive *chunks* of
:class:`~repro.engine.scheduler.WorkItem`\\ s and return ``(plan index,
ExperimentResult)`` pairs; completion order is arbitrary, re-assembly by index
happens in the parent.

Two backends share one streaming interface (an iterator of ``(index,
result)``):

* :func:`execute_serial` — in-process, used for ``jobs=1`` (the default path
  every existing ``Campaign.run`` caller goes through) and as the fallback
  when the platform offers no usable multiprocessing start method;
* :func:`execute_pool` — the supervised worker pool
  (:class:`~repro.engine.supervisor.SupervisedPool`), preferring the ``fork``
  start method (cheap on Linux, and it lets custom ``sut_factory`` closures
  cross into workers without pickling) and falling back to ``spawn``.

Both accept a :class:`~repro.engine.supervisor.RunPolicy`: per-experiment
wall-clock timeouts, retry with exponential backoff, and poison-spec
quarantine. The pool enforces the timeout by SIGKILLing the worker from the
parent watchdog; the serial path arms ``SIGALRM`` around each experiment
(main thread only — elsewhere the serial timeout is silently unavailable).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.experiment import (
    Experiment,
    ExperimentResult,
    SutFactory,
    default_sut_factory,
)
from repro.core.outcomes import OutcomeClassifier
from repro.core.registry import resolve_sut_factory
from repro.core.outcomes import Outcome
from repro.engine.batch import (
    DEFAULT_BATCH_SIZE,
    BatchDivergenceError,
    BatchStepper,
    batchable_spec,
    supports_batching,
)
from repro.engine.scheduler import (
    PrefixFamily,
    WorkItem,
    group_by_prefix,
    plan_family_batches,
    shard_families,
    shard_for_pool,
)
from repro.engine.supervisor import (
    LEGACY_POLICY,
    EventCallback,
    RunPolicy,
    SupervisedPool,
    infra_result,
)
from repro.errors import CampaignError

#: One streamed unit of completed work: (position in the plan, its result).
IndexedResult = Tuple[int, ExperimentResult]

#: Default per-process capacity of the prefix-snapshot LRU. With the
#: family-aware schedules each family is live for one contiguous stretch, so
#: a handful of slots absorbs any interleaving the chunk merging introduces.
DEFAULT_PREFIX_CACHE_SIZE = 8

# Per-worker-process state, populated once by the pool initializer so chunk
# payloads stay small (specs only, no factory/classifier per task).
_WORKER_STATE: dict = {}


class PooledSutFactory:
    """SUT factory with snapshot/reset pooling.

    Keeps one system under test per process and retargets it between
    experiments instead of rebuilding the whole board + hypervisor + guest
    stack: a spec re-running the seed the SUT last booted restores the
    post-``setup()`` snapshot directly, any other seed restores the pristine
    post-construction state and re-seeds the guest RNG streams before the
    (much cheaper) warm boot. Outcomes are bit-identical to cold boots — the
    campaign-parity tests assert it record for record.

    SUTs that do not implement the pooling protocol
    (``enable_snapshot_pooling``/``reset_for_seed``) fall back to a cold
    build per call, as do specs marked ``cold_boot=True`` (handled by the
    caller via :attr:`base`).
    """

    def __init__(self, base: SutFactory) -> None:
        self.base = base
        self._sut = None

    def __call__(self, seed: int):
        sut = self._sut
        if sut is None:
            sut = self.base(seed)
            enable = getattr(sut, "enable_snapshot_pooling", None)
            if enable is None:
                return sut           # SUT cannot pool: plain cold boot
            enable()
            self._sut = sut
            return sut
        if sut.config.seed != seed:
            sut.reset_for_seed(seed)
        return sut

    def reset(self) -> None:
        """Drop the pooled SUT so the next call builds a fresh one.

        Called after an in-process timeout or experiment error: an
        interrupted run can leave the pooled object graph mid-boot, and a
        retry must start from a provably clean state.
        """
        self._sut = None


def _factory_for_spec(spec, sut_factory: SutFactory) -> SutFactory:
    """Honour a spec's cold-boot opt-out when the factory pools."""
    if isinstance(sut_factory, PooledSutFactory) and spec.cold_boot:
        return sut_factory.base
    return sut_factory


def sut_token(sut_factory: SutFactory) -> str:
    """Deterministic identity of a SUT factory for prefix-key derivation.

    Registry-backed factories hash by key + params (stable across processes
    and runs); ad-hoc callables fall back to their qualified name. The token
    only has to separate *different* SUT definitions within one process —
    the prefix cache itself never outlives a campaign.
    """
    if isinstance(sut_factory, PooledSutFactory):
        return sut_token(sut_factory.base)
    key = getattr(sut_factory, "key", None)
    if key is not None:
        params = getattr(sut_factory, "params", {})
        return f"{key}:{sorted(params.items())!r}"
    qualname = getattr(sut_factory, "__qualname__", None)
    return qualname or type(sut_factory).__name__


@dataclass
class _PrefixCacheEntry:
    """One cached pre-injection state: the SUT it belongs to + its snapshot."""

    sut: object
    snapshot: object


class PrefixSnapshotCache:
    """Bounded per-process LRU of post-prefix SUT snapshots.

    One entry per prefix family: the snapshot of the deployment at the
    injection point, plus the SUT object graph it was captured on (snapshots
    restore in place, so they are only valid on their own graph — with
    pooling every entry shares the process's single SUT; without pooling
    each miss builds its own). The campaign-level hit/miss aggregates come
    from :attr:`ExperimentResult.prefix_cache_hit` (the cache lives inside
    worker processes); the counters here are per-process introspection for
    tests and debugging.
    """

    def __init__(self, capacity: int = DEFAULT_PREFIX_CACHE_SIZE, *,
                 sut_token: str = "",
                 shareable_keys: Optional[frozenset] = None) -> None:
        if capacity <= 0:
            raise CampaignError(
                f"prefix cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.sut_token = sut_token
        #: Keys whose family has more than one member. ``None`` means
        #: unknown (cache everything); with the set present, singleton
        #: families skip the snapshot capture entirely — a snapshot nobody
        #: will ever fork from is pure overhead.
        self.shareable_keys = shareable_keys
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self._entries: "OrderedDict[str, _PrefixCacheEntry]" = OrderedDict()

    def worth_caching(self, key: str) -> bool:
        return self.shareable_keys is None or key in self.shareable_keys

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[_PrefixCacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, sut: object, snapshot: object) -> None:
        self._entries[key] = _PrefixCacheEntry(sut=sut, snapshot=snapshot)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (after an interrupted in-process experiment)."""
        self._entries.clear()


def _supports_prefix_forking(sut: object) -> bool:
    return (getattr(sut, "snapshot", None) is not None
            and getattr(sut, "fork_from_snapshot", None) is not None)


def _run_item_prefix_cached(experiment: Experiment,
                            cache: PrefixSnapshotCache) -> ExperimentResult:
    """Run one experiment through the prefix fast-forward cache.

    Cache hit: fork the worker's SUT from the family's post-prefix snapshot
    and run only the injection suffix. Cache miss: execute the prefix once,
    snapshot it for the rest of the family, then run the suffix. SUTs that
    cannot snapshot (baseline models) bypass the cache with a plain cold run.
    """
    spec = experiment.spec
    started = time.perf_counter()
    key = spec.prefix_key(sut=cache.sut_token)
    entry = cache.get(key)
    if entry is None:
        sut = experiment.sut_factory(spec.seed)
        if not _supports_prefix_forking(sut):
            cache.misses -= 1           # not a real miss: the SUT can't cache
            cache.bypasses += 1
            try:
                experiment.run_prefix(sut)
                prefix_elapsed = time.perf_counter() - started
                result = experiment.run_from_snapshot(sut, wall_start=started)
                result.prefix_wall_time = prefix_elapsed
                return result
            finally:
                sut.teardown()
        hit = False
    else:
        sut = entry.sut
        hit = True
    try:
        if hit:
            sut.fork_from_snapshot(entry.snapshot, seed=spec.seed)
        else:
            experiment.run_prefix(sut)
            if cache.worth_caching(key):
                cache.put(key, sut, sut.snapshot())
        prefix_elapsed = time.perf_counter() - started
        result = experiment.run_from_snapshot(sut, wall_start=started)
    finally:
        sut.teardown()
    result.prefix_cache_hit = hit
    result.prefix_wall_time = prefix_elapsed
    return result


#: Per-process batch counter: batch ids must be unique campaign-wide even
#: when one family is sliced across workers (``shard_families`` bisection).
_batch_sequence = 0


def _next_batch_id(key: str) -> str:
    global _batch_sequence
    _batch_sequence += 1
    return f"{key[:8]}@{os.getpid()}#{_batch_sequence}"


def _run_family_batched(batches: Sequence[Sequence[WorkItem]],
                        sut_factory: SutFactory,
                        classifier: OutcomeClassifier,
                        cache: PrefixSnapshotCache,
                        ) -> Optional[List[IndexedResult]]:
    """Run one prefix family's batchable members in lockstep.

    The family's golden bring-up runs (or is fetched from the prefix cache)
    exactly once; every batch then forks the post-prefix snapshot and a
    :class:`~repro.engine.batch.BatchStepper` advances its lanes on one
    shared simulated state, evicting a lane to the scalar path the moment
    its injector fires. Returns ``None`` when the SUT cannot snapshot/fork
    (baseline models) — the caller runs the items scalar instead.
    """
    items = [item for batch in batches for item in batch]
    spec0 = items[0].spec
    started = time.perf_counter()
    key = spec0.prefix_key(sut=cache.sut_token)
    entry = cache.get(key)
    if entry is None:
        sut = sut_factory(spec0.seed)
        if not _supports_prefix_forking(sut) or not supports_batching(sut):
            cache.misses -= 1           # not a real miss: the SUT can't batch
            cache.bypasses += 1
            return None
        hit = False
    else:
        sut = entry.sut
        if not supports_batching(sut):
            return None
        hit = True
    results: List[IndexedResult] = []
    worker_id = os.getpid()
    try:
        if hit:
            snapshot = entry.snapshot
        else:
            Experiment(spec0, sut_factory=sut_factory,
                       classifier=classifier).run_prefix(sut)
            snapshot = sut.snapshot()
            if cache.worth_caching(key):
                cache.put(key, sut, snapshot)
        prefix_elapsed = time.perf_counter() - started
        first = True
        for batch in batches:
            fork_started = time.perf_counter()
            sut.fork_from_snapshot(snapshot, seed=spec0.seed)
            fork_elapsed = time.perf_counter() - fork_started
            stepper = BatchStepper(
                sut,
                [Experiment(item.spec, sut_factory=sut_factory,
                            classifier=classifier) for item in batch],
                batch_id=_next_batch_id(key),
            )
            for item, result in zip(batch, stepper.run()):
                # Mirror the scalar bookkeeping: the lane that executed the
                # family's prefix reports a miss, every forked lane a hit.
                result.prefix_cache_hit = hit or not first
                result.prefix_wall_time = (prefix_elapsed
                                           if not hit and first
                                           else fork_elapsed)
                result.worker_id = worker_id
                first = False
                results.append((item.index, result))
    finally:
        sut.teardown()
    return results


def shareable_keys_of(families) -> frozenset:
    """Prefix keys that more than one queued spec shares.

    Only these are worth snapshotting: a singleton family's snapshot would
    never be forked from, so capturing it (and pinning its SUT in the LRU)
    is pure overhead — e.g. the CLI ``fig3``/``campaign`` plans give every
    spec its own seed, making every family a singleton.
    """
    return frozenset(family.key for family in families
                     if len(family.items) > 1)


def _init_worker(sut_factory: SutFactory,
                 classifier: Optional[OutcomeClassifier],
                 pooling: bool = False,
                 prefix_cache: bool = False,
                 prefix_cache_size: int = DEFAULT_PREFIX_CACHE_SIZE,
                 shareable_keys: Optional[frozenset] = None,
                 batch: bool = False,
                 batch_size: Optional[int] = None) -> None:
    if pooling:
        sut_factory = PooledSutFactory(sut_factory)
    _WORKER_STATE["sut_factory"] = sut_factory
    _WORKER_STATE["classifier"] = classifier or OutcomeClassifier()
    _WORKER_STATE["prefix_cache"] = (
        PrefixSnapshotCache(prefix_cache_size,
                            sut_token=sut_token(sut_factory),
                            shareable_keys=shareable_keys)
        if prefix_cache else None
    )
    _WORKER_STATE["batch_size"] = (
        (batch_size or DEFAULT_BATCH_SIZE) if batch and prefix_cache else None
    )


def _run_item(item: WorkItem, sut_factory: SutFactory,
              classifier: OutcomeClassifier,
              prefix_cache: Optional[PrefixSnapshotCache] = None,
              ) -> IndexedResult:
    experiment = Experiment(item.spec,
                            sut_factory=_factory_for_spec(item.spec, sut_factory),
                            classifier=classifier)
    if prefix_cache is None or item.spec.cold_boot:
        result = experiment.run()
    else:
        result = _run_item_prefix_cached(experiment, prefix_cache)
    # Stamped here (not in Experiment) so the id is the executing process's —
    # the telemetry layer folds these into per-worker utilization.
    result.worker_id = os.getpid()
    return item.index, result


def _run_chunk(chunk: Sequence[WorkItem]) -> List[IndexedResult]:
    """Pool task: run one chunk inside a worker process."""
    sut_factory = _WORKER_STATE["sut_factory"]
    classifier = _WORKER_STATE["classifier"]
    prefix_cache = _WORKER_STATE.get("prefix_cache")
    batch_size = _WORKER_STATE.get("batch_size")
    if batch_size and prefix_cache is not None:
        return _run_chunk_batched(chunk, sut_factory, classifier,
                                  prefix_cache, batch_size)
    return [_run_item(item, sut_factory, classifier, prefix_cache)
            for item in chunk]


def _run_chunk_batched(chunk: Sequence[WorkItem],
                       sut_factory: SutFactory,
                       classifier: OutcomeClassifier,
                       cache: PrefixSnapshotCache,
                       batch_size: int) -> List[IndexedResult]:
    """Pool task with lockstep batching: regroup the chunk into families.

    ``shard_families`` already hands out family-contiguous chunks, so the
    regrouping is a cheap pass; each family's batchable members run through
    :func:`_run_family_batched` and everything else (lifecycle/park
    scenarios, cold boots, singleton leftovers) takes the scalar path. A
    violated lockstep invariant falls back to scalar for the whole family —
    correctness never depends on the batch succeeding.
    """
    results: List[IndexedResult] = []
    for family in group_by_prefix(chunk, sut_token=cache.sut_token):
        batches, scalar_items = plan_family_batches(
            family, batch_size, batchable_spec)
        batched = None
        if batches:
            try:
                batched = _run_family_batched(batches, sut_factory,
                                              classifier, cache)
            except BatchDivergenceError:
                _reset_worker_state(sut_factory, cache)
        if batched is None:
            scalar_items = family.items
        else:
            results.extend(batched)
        for item in scalar_items:
            results.append(_run_item(item, sut_factory, classifier, cache))
    return results


class _SerialTimeout(Exception):
    """Raised by the SIGALRM watchdog inside an in-process experiment."""


@contextmanager
def _serial_deadline(timeout_s: Optional[float]):
    """Arm a wall-clock deadline around one in-process experiment.

    Uses ``SIGALRM`` (interrupts CPU-bound pure-Python loops, which is what a
    wedged simulation is), so it only works on the main thread of a platform
    that has ``setitimer``; anywhere else the deadline is a no-op — the pool
    path, which kills the worker from outside, is the fully general one.
    """
    if (not timeout_s
            or not hasattr(signal, "setitimer")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expire(signum, frame):
        raise _SerialTimeout()

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _emit(on_event: Optional[EventCallback], kind: str, **payload) -> None:
    if on_event is not None:
        on_event(kind, **payload)


def _reset_worker_state(sut_factory, cache) -> None:
    """Scrub in-process execution state after an interrupted experiment."""
    if isinstance(sut_factory, PooledSutFactory):
        sut_factory.reset()
    if cache is not None:
        cache.invalidate()


def _run_item_with_policy(item: WorkItem, sut_factory: SutFactory,
                          classifier: OutcomeClassifier,
                          cache: Optional[PrefixSnapshotCache],
                          policy: RunPolicy,
                          on_event: Optional[EventCallback]) -> IndexedResult:
    """Serial counterpart of the pool's supervision: timeout/retry/quarantine.

    Retries re-run with the original seed, so a retry that succeeds returns
    the exact result an unfaulted run would have; exhausted budgets either
    quarantine (synthesized infrastructure result) or, under ``fail_fast``,
    raise like the engine always did.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            with _serial_deadline(policy.timeout_s):
                return _run_item(item, sut_factory, classifier, cache)
        except _SerialTimeout:
            reason = "timeout"
            error = (f"exceeded the {policy.timeout_s:g}s watchdog timeout "
                     f"(in-process)")
            _emit(on_event, "experiment_timeout", spec=item.spec.name,
                  index=item.index, timeout_s=policy.timeout_s,
                  attempt=attempts, worker=os.getpid())
        except Exception as exc:  # noqa: BLE001 - policy decides the fate
            if policy.fail_fast:
                raise
            reason = "error"
            error = f"{type(exc).__name__}: {exc}"
        _reset_worker_state(sut_factory, cache)
        if attempts <= policy.retries:
            delay = min(policy.backoff_s * (2 ** (attempts - 1)),
                        policy.backoff_cap_s)
            _emit(on_event, "experiment_retry", spec=item.spec.name,
                  index=item.index, attempt=attempts, reason=reason,
                  delay_s=delay, error=error)
            time.sleep(delay)
            continue
        if policy.fail_fast:
            raise CampaignError(
                f"experiment {item.spec.name!r} {reason} "
                f"({attempts} attempt(s), last error: {error})")
        outcome = (Outcome.INFRA_TIMEOUT if reason == "timeout"
                   else Outcome.INFRA_CRASH)
        _emit(on_event, "spec_quarantined", spec=item.spec.name,
              index=item.index, spec_id=item.spec.identity(),
              seed=item.spec.seed, scenario=item.spec.scenario.value,
              attempts=attempts, reason=reason, error=error)
        return item.index, infra_result(item.spec, outcome,
                                        attempts=attempts, error=error)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return max(os.cpu_count() or 1, 1)
    if jobs < 0:
        raise CampaignError(f"jobs must be positive (or 0 for auto), got {jobs}")
    return jobs


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is only trusted on Linux: macOS lists it as available but CPython
    # made spawn the default there for a reason (forking a threaded process
    # can crash/deadlock workers).
    if (sys.platform == "linux"
            and "fork" in multiprocessing.get_all_start_methods()):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _serial_family_batched(family: PrefixFamily,
                           sut_factory: SutFactory,
                           classifier: OutcomeClassifier,
                           cache: PrefixSnapshotCache,
                           batch_size: int,
                           policy: Optional[RunPolicy],
                           on_event: Optional[EventCallback],
                           ) -> Iterator[IndexedResult]:
    """Serial flavour of one family's lockstep execution, supervised.

    A lockstep batch does the work of all its lanes in one pass, so the
    serial deadline covers the whole family at ``timeout_s`` per lane; a
    timeout, a divergence, or (under a policy) any error resets the worker
    state and re-runs the family item by item through the ordinary
    supervised scalar path — retries and quarantine semantics included.
    """
    batches, scalar_items = plan_family_batches(family, batch_size,
                                                batchable_spec)
    batched = None
    if batches:
        lanes = sum(len(batch) for batch in batches)
        try:
            if policy is not None and policy.timeout_s:
                with _serial_deadline(policy.timeout_s * lanes):
                    batched = _run_family_batched(batches, sut_factory,
                                                  classifier, cache)
            else:
                batched = _run_family_batched(batches, sut_factory,
                                              classifier, cache)
        except (BatchDivergenceError, _SerialTimeout):
            _reset_worker_state(sut_factory, cache)
        except Exception:  # noqa: BLE001 - policy decides the fate
            if policy is None:
                raise
            _reset_worker_state(sut_factory, cache)
    if batched is None:
        scalar_items = family.items
    else:
        yield from batched
    for item in scalar_items:
        if policy is None:
            yield _run_item(item, sut_factory, classifier, cache)
        else:
            yield _run_item_with_policy(item, sut_factory, classifier, cache,
                                        policy, on_event)


def execute_serial(items: Sequence[WorkItem],
                   sut_factory: "SutFactory | str" = default_sut_factory,
                   classifier: Optional[OutcomeClassifier] = None,
                   pooling: bool = False,
                   prefix_cache: bool = False,
                   prefix_cache_size: int = DEFAULT_PREFIX_CACHE_SIZE,
                   policy: Optional[RunPolicy] = None,
                   on_event: Optional[EventCallback] = None,
                   batch: bool = False,
                   batch_size: Optional[int] = None,
                   ) -> Iterator[IndexedResult]:
    """Run every item in queue order in this process (the ``jobs=1`` backend).

    With ``prefix_cache`` the queue is first reordered family-contiguously
    (results carry their plan index, so consumers are order-agnostic) and a
    bounded LRU of post-prefix snapshots serves every follow-up member of a
    family without re-running its golden bring-up.

    With ``batch`` (implies ``prefix_cache``) each family's steady-state
    members additionally run in lockstep on one shared simulated state
    (:mod:`repro.engine.batch`), paying per-lane simulation cost only for
    lanes whose fault actually fires.

    A ``policy`` adds the serial flavour of supervision: a ``SIGALRM``
    deadline per experiment, retries with backoff, and quarantine with
    synthesized infrastructure results. ``None`` keeps the historical
    contract — exceptions propagate, nothing times out.
    """
    classifier = classifier or OutcomeClassifier()
    sut_factory = resolve_sut_factory(sut_factory)
    prefix_cache = prefix_cache or batch
    if pooling:
        sut_factory = PooledSutFactory(sut_factory)
    cache = None
    families = None
    if prefix_cache:
        token = sut_token(sut_factory)
        families = group_by_prefix(items, sut_token=token)
        cache = PrefixSnapshotCache(
            prefix_cache_size, sut_token=token,
            shareable_keys=shareable_keys_of(families))
        items = [item for family in families for item in family.items]
    if policy is not None:
        policy.validate()
    if batch and families is not None:
        size = batch_size or DEFAULT_BATCH_SIZE
        for family in families:
            yield from _serial_family_batched(family, sut_factory, classifier,
                                              cache, size, policy, on_event)
        return
    if policy is None:
        for item in items:
            yield _run_item(item, sut_factory, classifier, cache)
        return
    for item in items:
        yield _run_item_with_policy(item, sut_factory, classifier, cache,
                                    policy, on_event)


def execute_pool(items: Sequence[WorkItem],
                 jobs: int,
                 sut_factory: "SutFactory | str" = default_sut_factory,
                 classifier: Optional[OutcomeClassifier] = None,
                 chunk_size: Optional[int] = None,
                 pooling: bool = False,
                 prefix_cache: bool = False,
                 prefix_cache_size: int = DEFAULT_PREFIX_CACHE_SIZE,
                 policy: Optional[RunPolicy] = None,
                 on_event: Optional[EventCallback] = None,
                 batch: bool = False,
                 batch_size: Optional[int] = None,
                 ) -> Iterator[IndexedResult]:
    """Run items across ``jobs`` supervised worker processes, streaming.

    Results are yielded as experiments finish (arbitrary order); callers that
    need plan order re-assemble by index. Execution is supervised
    (:class:`~repro.engine.supervisor.SupervisedPool`): each worker owns a
    private pipe, dead workers are respawned with their untouched shard
    requeued, hung experiments are killed by the parent watchdog, and specs
    that fail every retry are quarantined with a synthesized infrastructure
    result. With ``policy=None`` the historical library contract holds —
    exceptions propagate and nothing times out — while worker deaths, which
    previously wedged the pool forever, are still survived up to the default
    restart budget.

    On clean exhaustion workers are asked to stop and joined; an early exit
    or exception kills busy workers instead, so a consumer that stops
    mid-stream still releases them promptly (and no shared queues or
    semaphores are left for the resource tracker to complain about — every
    worker's pipe dies with its two endpoints).

    ``chunk_size`` defaults to 1: every completed experiment streams back (and
    checkpoints) immediately, which is what the paper's minute-long tests
    need. Pass a larger value (see
    :func:`~repro.engine.scheduler.suggest_chunk_size`) only when experiments
    are so short that per-task dispatch overhead dominates.

    With ``prefix_cache`` the queue is sharded into whole prefix families
    (:func:`~repro.engine.scheduler.shard_families`) instead of round-robin
    chunks, so the worker that pulls a family pays its golden bring-up once
    and forks every fault variant from the snapshot. A family is one pool
    task, so streaming (and checkpoint) granularity becomes the family even
    at ``chunk_size=1`` — a run killed mid-family re-executes that family's
    completed variants on resume, trading a little checkpoint granularity
    for never re-paying a prefix. A retried spec re-runs as a singleton
    shard, re-paying its prefix once.
    """
    jobs = resolve_jobs(jobs)
    sut_factory = resolve_sut_factory(sut_factory)
    prefix_cache = prefix_cache or batch
    if jobs == 1 or len(items) <= 1:
        yield from execute_serial(items, sut_factory, classifier, pooling,
                                  prefix_cache, prefix_cache_size,
                                  policy=policy, on_event=on_event,
                                  batch=batch, batch_size=batch_size)
        return
    size = chunk_size or 1
    shareable = None
    if prefix_cache:
        token = sut_token(sut_factory)
        families = group_by_prefix(items, sut_token=token)
        # min_shards keeps the pool busy when there are fewer families than
        # workers: oversized families are sliced, each slice re-paying the
        # prefix once in its worker.
        shards = shard_families(families, size, min_shards=jobs)
        shareable = shareable_keys_of(families)
    else:
        shards = shard_for_pool(items, size)
    pool = SupervisedPool(
        shards,
        jobs=jobs,
        context=_pool_context(),
        init_args=(sut_factory, classifier, pooling,
                   prefix_cache, prefix_cache_size, shareable,
                   batch, batch_size),
        policy=policy or LEGACY_POLICY,
        on_event=on_event,
    )
    yield from pool.run()
