"""Checkpoint/resume bookkeeping for campaign execution.

The paper's campaigns run for hours (hundreds of one-minute tests per target
and intensity); losing a run to a crash or preemption means re-paying all of
it. The engine therefore streams every completed
:class:`~repro.core.recording.ExperimentRecord` to a JSON-Lines checkpoint
(a plain :class:`~repro.core.recording.RecordStore` file — the same format
``--output`` and the analysis layer use), flushed **atomically** (temp file
+ fsync + rename, see :meth:`Checkpoint.flush`) so even a SIGKILL mid-write
leaves a complete, loadable file, and on resume skips every spec whose
record is already present.

Completed work is keyed on :meth:`ExperimentSpec.identity` — a hash of name,
seed, scenario, and the injection setup — which the checkpoint stamps into
each record's ``extras["spec_id"]``; a spec whose definition changed between
runs hashes differently and is re-executed rather than wrongly skipped.
Records written by other code paths (e.g. a plain ``CampaignResult.save``)
lack the stamp; for those, matching falls back to the ``(spec_name, seed,
scenario)`` triple cross-checked against the setup fields the record *does*
persist (duration, target, fault model, intensity) — best-effort, but enough
to catch a spec whose setup visibly changed. On resume the checkpoint is
also reconciled with the plan: records superseded by changed definitions and
orphans of renamed/removed specs are pruned, so after a successful run the
file holds exactly one record per plan spec and downstream reporting never
double-counts.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.core.experiment import ExperimentResult, ExperimentSpec
from repro.core.plan import TestPlan
from repro.core.recording import ExperimentRecord, RecordStore
from repro.errors import AnalysisError, CampaignError, RecordSchemaError

#: Fallback identity for records without a ``spec_id`` stamp.
_Triple = Tuple[str, int, str]


class Checkpoint:
    """Crash-safe record of completed specs, enabling resume.

    Commits are buffered in memory and persisted by :meth:`flush`, which
    writes the *whole* record set to a temp file, fsyncs, and renames it over
    the checkpoint — so the on-disk file is always a complete, valid
    JSON-Lines document and a SIGKILL at any instant loses at most the
    commits since the last flush (none at all with the default
    ``flush_interval_s=0``, which flushes on every commit like the paper's
    minute-long tests want). ``flush_interval_s > 0`` batches flushes for
    campaigns of very short experiments, where an atomic rewrite per
    completion would dominate.
    """

    def __init__(self, path: "str | Path", *,
                 flush_interval_s: float = 0.0) -> None:
        if flush_interval_s < 0:
            raise CampaignError(
                f"flush interval must be >= 0, got {flush_interval_s}")
        self.store = RecordStore(path)
        self.flush_interval_s = flush_interval_s
        #: How many atomic flushes hit the disk (telemetry reads this).
        self.flushes = 0
        self._dirty = False
        # The interval clock starts now, so a batched checkpoint's first
        # flush happens one full interval in, not on the first commit.
        self._last_flush = time.monotonic()
        self._records: List[ExperimentRecord] = []
        self._records_by_id: Dict[str, ExperimentRecord] = {}
        self._records_by_triple: Dict[_Triple, ExperimentRecord] = {}

    @property
    def path(self) -> Path:
        return self.store.path

    # -- loading ------------------------------------------------------------------------

    def load(self) -> int:
        """Read existing records from disk; returns how many were found.

        A campaign killed mid-append leaves a torn final line; that is the
        exact crash resume exists for, so the torn tail is discarded (its
        spec simply re-runs) and the file is rewritten without it so later
        appends do not merge into the partial line. Malformed records
        *before* the last line mean real corruption and still raise.
        """
        path = self.store.path
        if not path.exists():
            return 0
        with path.open("r", encoding="utf-8") as handle:
            lines = [line.strip() for line in handle]
        lines = [line for line in lines if line]
        records: List[ExperimentRecord] = []
        torn_tail = False
        for position, line in enumerate(lines):
            try:
                records.append(ExperimentRecord.from_json(line))
            except RecordSchemaError:
                # A record stamped with a newer schema_version is a valid
                # record this tooling is too old to read — not a torn
                # write; discarding it would destroy data, so resume
                # refuses even when it is the last line.
                raise
            except AnalysisError:
                if position == len(lines) - 1:
                    torn_tail = True
                else:
                    raise
        if torn_tail:
            self.store.replace_all(records)
        for record in records:
            self._remember(record)
        return len(records)

    def _remember(self, record: ExperimentRecord) -> None:
        self._records.append(record)
        spec_id = record.spec_id
        if spec_id is not None:
            self._records_by_id[spec_id] = record
        self._records_by_triple[(record.spec_name, record.seed,
                                 record.scenario)] = record

    def clear(self) -> None:
        """Truncate the checkpoint file (fresh, non-resumed run)."""
        self.store.replace_all([])
        self._records.clear()
        self._records_by_id.clear()
        self._records_by_triple.clear()
        self._dirty = False

    def prune_stale(self, plan: TestPlan) -> int:
        """Reconcile the checkpoint with the plan it is resuming.

        Keeps exactly the records that are resumable for some plan spec and
        drops everything else: records superseded by a changed spec
        definition (same triple, different identity/setup) and orphans of
        specs that were renamed or removed from the plan. Non-resumable specs
        will re-run and append fresh records, so after a successful run the
        file holds one record per plan spec and downstream reporting
        (``repro report <checkpoint>``) never double-counts. The checkpoint
        is the engine's working state, not an archive — records to keep
        across plan edits belong in ``--output`` files. Returns how many
        records were removed.
        """
        resumable: Dict[_Triple, ExperimentRecord] = {}
        for spec in plan:
            record = self._record_for(spec)
            if record is not None:
                resumable[(record.spec_name, record.seed,
                           record.scenario)] = record
        kept = [
            record for record in self._records
            if resumable.get((record.spec_name, record.seed,
                              record.scenario)) is record
        ]
        removed = len(self._records) - len(kept)
        if removed:
            self._records = kept
            self._records_by_id = {
                record.spec_id: record for record in kept
                if record.spec_id is not None
            }
            self._records_by_triple = {
                (record.spec_name, record.seed, record.scenario): record
                for record in kept
            }
            self.store.replace_all(kept)
        return removed

    # -- queries ------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records_by_triple)

    def is_complete(self, spec: ExperimentSpec) -> bool:
        return self._record_for(spec) is not None

    def _record_for(self, spec: ExperimentSpec) -> Optional[ExperimentRecord]:
        record = self._records_by_id.get(spec.identity())
        if record is not None:
            return record
        # The triple fallback only applies to records written without an
        # identity stamp (e.g. a plain CampaignResult.save). A stamped record
        # whose identity does not match means the spec definition changed —
        # the spec must be re-executed, not matched loosely. Unstamped records
        # are additionally cross-checked against the setup fields they persist
        # so a changed spec is not silently "restored" from stale results.
        record = self._records_by_triple.get(
            (spec.name, spec.seed, spec.scenario.value)
        )
        if (record is not None and record.spec_id is None
                and self._legacy_matches(spec, record)):
            return record
        return None

    @staticmethod
    def _legacy_matches(spec: ExperimentSpec, record: ExperimentRecord) -> bool:
        return (record.duration == spec.duration
                and record.target == spec.target.describe()
                and record.fault_model == spec.fault_model.describe()
                and record.intensity == spec.intensity)

    def result_for(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """Rebuild the stored result for a completed spec, if any."""
        record = self._record_for(spec)
        return record.to_result() if record is not None else None

    def completed_indices(self, plan: TestPlan) -> Set[int]:
        """Plan positions whose specs already have checkpointed records."""
        return {
            index for index, spec in enumerate(plan) if self.is_complete(spec)
        }

    def completed_identities(self) -> Set[str]:
        """The ``spec_id`` stamps of every loaded record.

        The fleet coordinator keys its shard planning on these: a resumed
        ``repro serve`` loads its per-campaign checkpoint, subtracts the
        stamped identities from the plan, and re-offers exactly the
        unfinished specs. Records without a stamp (written by non-engine
        code paths) are not identities and are skipped.
        """
        return set(self._records_by_id)

    def record_by_identity(self, spec_id: str) -> Optional[ExperimentRecord]:
        """The stored record stamped with ``spec_id``, if any."""
        return self._records_by_id.get(spec_id)

    # -- writing ------------------------------------------------------------------------

    def commit(self, spec: ExperimentSpec,
               result: ExperimentResult) -> ExperimentRecord:
        """Record one completed experiment and mark its spec done.

        Called from the parent process only (workers hand results back over
        the pool), so commits never interleave. The record is stamped with
        the spec identity so a later resume matches on the strong key. The
        commit is buffered and flushed per :attr:`flush_interval_s` — with
        the default of ``0`` every commit reaches the disk atomically before
        this returns.
        """
        record = ExperimentRecord.from_result(result)
        record = replace(
            record, extras={**record.extras, "spec_id": spec.identity()}
        )
        self._remember(record)
        self._dirty = True
        if (self.flush_interval_s <= 0
                or time.monotonic() - self._last_flush
                >= self.flush_interval_s):
            self.flush()
        return record

    def commit_record(self, record: ExperimentRecord) -> ExperimentRecord:
        """Buffer one already-built record (the fleet result-merge path).

        The coordinator receives records over the wire with their
        ``spec_id`` stamps already applied by the worker that executed them;
        this commits one as-is, with the same interval-batched atomic flush
        contract as :meth:`commit`. The caller is responsible for dedup —
        committing two records with the same identity stores both.
        """
        self._remember(record)
        self._dirty = True
        if (self.flush_interval_s <= 0
                or time.monotonic() - self._last_flush
                >= self.flush_interval_s):
            self.flush()
        return record

    def replace_records(self, records: List[ExperimentRecord]) -> None:
        """Atomically rewrite the checkpoint as exactly ``records``.

        Used by the coordinator to finalize a campaign's merged store in
        plan order: the in-memory indexes are rebuilt and the file is
        rewritten through the same :meth:`~repro.core.recording.RecordStore.
        replace_all` temp-file + fsync + rename path every other flush uses.
        """
        self._records = list(records)
        self._records_by_id = {
            record.spec_id: record for record in self._records
            if record.spec_id is not None
        }
        self._records_by_triple = {
            (record.spec_name, record.seed, record.scenario): record
            for record in self._records
        }
        self._last_flush = time.monotonic()
        self.store.replace_all(self._records)
        self._dirty = False
        self.flushes += 1

    @property
    def dirty(self) -> bool:
        """Whether commits are buffered that have not reached the disk."""
        return self._dirty

    def flush(self) -> bool:
        """Atomically persist all buffered commits; ``True`` if it wrote.

        The whole record set is rewritten through
        :meth:`~repro.core.recording.RecordStore.replace_all` (temp file +
        fsync + rename), so a crash — even SIGKILL — at any instant leaves
        either the previous complete checkpoint or the new one on disk.
        """
        self._last_flush = time.monotonic()
        if not self._dirty:
            return False
        self.store.replace_all(self._records)
        self._dirty = False
        self.flushes += 1
        return True
