"""Batched lockstep execution of prefix families.

PR 4's prefix fast-forward already groups specs into *prefix families*: specs
whose pre-injection bring-up is identical, so every member can fork from one
snapshot. This module exploits the stronger property the steady-state
scenario gives us *after* the fork: until a lane's injector actually fires,
the lane's simulated evolution is bit-identical to every other lane's —
armed injectors only *observe* (counters, trigger draws, lane-private RNG
state; no board state touched) and evidence collection is read-only. So one
worker can advance a whole family in lockstep on **one shared simulated
state**, feeding each lane's injector through the observation half of the
entry hook (:meth:`~repro.core.injection.FaultInjector.observe_call`), and
only pay per-lane simulation cost for the lanes whose fault actually lands.

Divergence is handled by **eviction, not emulation**: the instant a lane's
trigger reports a fire — the exact point its scalar run would depart from
the fault-free trajectory — the lane is evicted to the existing scalar path:
the stepper rewinds to the most recent *boundary* (a periodic snapshot of
the shared state plus a deep copy of every live lane's injector), installs
the lane's boundary injector for real, and replays the lane's remaining
window scalar. The replay is deterministic (same state, same injector
counters, same RNG stream), so the fault fires exactly where a solo run
would fire it and the lane's records are byte-identical to scalar **by
construction** — no batch-side emulation of the faulted trajectory, and
therefore no new code path that could disagree with the scalar engine. A
property test over the catalog campaigns enforces this end to end
(``tests/engine/test_batch_lockstep.py``).

Restore fidelity is guarded with the structure-of-arrays hardware state from
:mod:`repro.hw.batch`: around every eviction replay the stepper captures all
CPUs' register files into a :class:`~repro.hw.batch.BatchedRegisterFile`
(plus a :func:`~repro.hw.batch.batched_read` sample of each CPU's stack top)
and verifies the post-restore capture is bit-identical — a violated
invariant raises :class:`BatchDivergenceError` and the worker reruns the
family scalar.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import Experiment, ExperimentResult, Scenario
from repro.core.injection import FaultInjector
from repro.errors import CampaignError
from repro.hw.batch import BatchedRegisterFile, batched_read
from repro.hw.memory import AccessType
from repro.hw.registers import Register
from repro.hypervisor.core import HypervisorState

#: Default number of lanes one batch steps together. Families larger than
#: this split into consecutive sub-batches re-forked from the same snapshot.
DEFAULT_BATCH_SIZE = 16

#: Shared steps between boundary captures. A boundary costs one SUT snapshot
#: plus an injector deep copy per live lane; an eviction replays from the
#: last boundary, so the interval trades boundary overhead against replay
#: length (at 0.02 s/step, 25 steps bound the replay rewind to 0.5 s).
DEFAULT_SYNC_INTERVAL = 25


class BatchDivergenceError(CampaignError):
    """The lockstep invariant was violated; the family must rerun scalar."""


def batchable_spec(spec) -> bool:
    """Whether a spec is eligible for lockstep batching.

    Only the steady-state scenario qualifies: its entire post-arm window is
    ``sut.run(duration)`` with no interleaved management operations, so the
    "identical until the fault fires" invariant holds for the whole window.
    The lifecycle and park scenarios interleave cell management with
    injection and classify mid-window state; they stay on the scalar path.
    """
    return (spec.scenario is Scenario.STEADY_STATE
            and not getattr(spec, "cold_boot", False))


def supports_batching(sut: object) -> bool:
    """Whether a SUT exposes the state surface the lockstep stepper drives."""
    return all(
        callable(getattr(sut, name, None))
        for name in ("snapshot", "restore", "install_injector", "run")
    ) and hasattr(sut, "hypervisor") and hasattr(sut, "board")


@dataclass
class BatchLane:
    """One experiment riding the shared lockstep state."""

    index: int
    experiment: Experiment
    injector: FaultInjector
    end_step: int
    fired: bool = False
    fired_step: Optional[int] = None
    result: Optional[ExperimentResult] = None


@dataclass
class _Boundary:
    """A rewind point: shared state + each live lane's injector, deep-copied.

    The deep copy captures everything a replay needs to be deterministic:
    call counters, trigger state (e.g. a one-shot's fired flag), and the
    injector's private RNG stream position.
    """

    step: int
    graph: object
    injectors: Dict[int, FaultInjector] = field(default_factory=dict)


class BatchStepper:
    """Steps every lane of one prefix-family batch on one shared state.

    ``sut`` must be positioned exactly at the family's post-prefix state
    (the caller forked it from the family snapshot); every experiment must
    satisfy :func:`batchable_spec` and share that prefix. ``run()`` returns
    one :class:`~repro.core.experiment.ExperimentResult` per experiment, in
    order, each byte-identical (in its persisted fields) to what the scalar
    path would produce.
    """

    def __init__(self, sut, experiments: Sequence[Experiment], *,
                 batch_id: str = "batch",
                 sync_interval: int = DEFAULT_SYNC_INTERVAL) -> None:
        if not experiments:
            raise ValueError("a batch needs at least one experiment")
        if sync_interval <= 0:
            raise ValueError(f"sync_interval must be positive, got {sync_interval}")
        for experiment in experiments:
            if not batchable_spec(experiment.spec):
                raise ValueError(
                    f"spec {experiment.spec.name!r} is not batchable "
                    f"(scenario {experiment.spec.scenario.value})"
                )
        self.sut = sut
        self.experiments = list(experiments)
        self.batch_id = batch_id
        self.sync_interval = sync_interval
        #: Filled by :meth:`run`.
        self.evictions = 0
        self.steps = 0
        self._current_step = 0
        self._observers: Dict[str, List[BatchLane]] = {}
        self._fired_now: List[BatchLane] = []
        self._window_start = 0.0
        self._wall_start = 0.0

    # -- the lockstep loop ---------------------------------------------------------

    def run(self) -> List[ExperimentResult]:
        sut = self.sut
        timestep = sut.config.timestep
        self._wall_start = time.perf_counter()
        self._window_start = sut.now
        lanes = self._build_lanes(timestep)
        handlers = sut.hypervisor.handlers
        self._install_probe(handlers, lanes)
        try:
            self._lockstep(lanes)
        finally:
            self._remove_probe(handlers)
        results: List[ExperimentResult] = []
        for lane in lanes:
            result = lane.result
            assert result is not None
            result.batch_id = self.batch_id
            result.batch_lanes = len(lanes)
            result.batch_evicted = lane.fired
            result.batch_eviction_step = lane.fired_step
            results.append(result)
        return results

    def _build_lanes(self, timestep: float) -> List[BatchLane]:
        lanes = []
        for index, experiment in enumerate(self.experiments):
            injector = experiment.build_injector()
            injector.arm()           # scalar arms at window start; so do lanes
            lanes.append(BatchLane(
                index=index,
                experiment=experiment,
                injector=injector,
                # Same rounding as the scalar ``sut.run(spec.duration)``.
                end_step=max(1, int(round(experiment.spec.duration / timestep))),
            ))
        return lanes

    def _lockstep(self, lanes: List[BatchLane]) -> None:
        sut = self.sut
        timestep = sut.config.timestep
        hypervisor = sut.hypervisor
        panicked = HypervisorState.PANICKED
        step = 0
        boundary = self._capture_boundary(step, lanes)
        while True:
            live = [lane for lane in lanes if lane.result is None]
            if not live:
                break
            if hypervisor.state is panicked:
                # The scalar loop checks for a panicked hypervisor before
                # every step; each live lane's solo run would break at this
                # exact step and classify from this exact state.
                for lane in live:
                    self._finalize_shared(lane)
                break
            if step - boundary.step >= self.sync_interval:
                boundary = self._capture_boundary(step, live)
            step += 1
            self._current_step = step
            self._fired_now = []
            sut.run(timestep)     # one shared step, advancing every live lane
            self.steps = step
            for lane in self._fired_now:
                self._evict(lane, boundary)
            for lane in live:
                if lane.result is None and not lane.fired and lane.end_step == step:
                    self._finalize_shared(lane)

    # -- the probe: feeding lane injectors from the shared state ---------------------

    def _install_probe(self, handlers, lanes: List[BatchLane]) -> None:
        # Per handler name, the lanes whose target listens to it: the scalar
        # entry hook is only installed on the target's handlers, so a lane's
        # call counters must only ever see calls to those same handlers.
        self._observers = {}
        for lane in lanes:
            for handler_name in lane.injector.target.handlers:
                self._observers.setdefault(handler_name, []).append(lane)
        for handler_name in self._observers:
            handlers.add_entry_hook(handler_name, self._probe)

    def _remove_probe(self, handlers) -> None:
        for handler_name in self._observers:
            handlers.remove_entry_hook(handler_name, self._probe)

    def _probe(self, handler_name: str, cpu, context) -> None:
        for lane in self._observers[handler_name]:
            if lane.fired or lane.result is not None:
                continue
            if lane.injector.observe_call(handler_name, cpu.cpu_id):
                # The exact call where this lane's scalar run would mutate
                # state. Stop feeding it; the post-step eviction replays it.
                lane.fired = True
                lane.fired_step = self._current_step
                self._fired_now.append(lane)

    # -- boundaries and eviction -----------------------------------------------------

    def _capture_boundary(self, step: int, lanes: List[BatchLane]) -> _Boundary:
        return _Boundary(
            step=step,
            graph=self.sut.snapshot(),
            injectors={
                lane.index: copy.deepcopy(lane.injector)
                for lane in lanes
                if lane.result is None and not lane.fired
            },
        )

    def _evict(self, lane: BatchLane, boundary: _Boundary) -> None:
        """Replay an evicted lane scalar from the last boundary.

        The shared state finished the firing step *without* applying the
        fault (the probe only observes), so it is still every other lane's
        correct trajectory. The evicted lane rewinds to the boundary,
        installs its boundary-time injector for real, and runs its remaining
        window through the ordinary scalar path — fault application, any
        ensuing panic/park, and early exit included.
        """
        self.evictions += 1
        sut = self.sut
        handlers = sut.hypervisor.handlers
        timestep = sut.config.timestep
        resume_point = sut.snapshot()
        guard = self._capture_guard()
        sut.restore(boundary.graph)
        # The boundary was captured with the probe installed; replaying with
        # it would feed the other lanes' counters phantom calls.
        self._remove_probe(handlers)
        replay = boundary.injectors[lane.index]
        sut.install_injector(replay)
        sut.run((lane.end_step - boundary.step) * timestep)
        replay.disarm()
        lane.result = lane.experiment.finalize_steady_state(
            sut, replay, self._window_start, wall_start=self._wall_start)
        replay.uninstall()
        sut.restore(resume_point)   # probe hooks return with the snapshot
        self._verify_restore(guard)

    def _finalize_shared(self, lane: BatchLane) -> None:
        """Finalize a lane whose injector never fired, from the shared state.

        Its scalar run would have executed the identical fault-free window
        (an armed injector that never fires applies nothing), ending at this
        exact state and time.
        """
        lane.injector.disarm()
        lane.result = lane.experiment.finalize_steady_state(
            self.sut, lane.injector, self._window_start,
            wall_start=self._wall_start)

    # -- restore-fidelity guard --------------------------------------------------------

    def _capture_guard(self) -> Tuple[BatchedRegisterFile, Tuple[int, ...]]:
        """Digest the shared state: all CPU register files + stack-top words.

        Registers land one CPU per lane in a
        :class:`~repro.hw.batch.BatchedRegisterFile` (slab equality is one
        flat compare); the stack tops are sampled with one
        :func:`~repro.hw.batch.batched_read` call, which groups the CPUs'
        same-page stack words through the page index.
        """
        board = self.sut.board
        registers = BatchedRegisterFile(len(board.cpus))
        accesses = []
        for lane_index, cpu in enumerate(board.cpus):
            registers.capture_lane(lane_index, cpu.registers)
            stack_pointer = cpu.registers.read(Register.SP)
            region = board.memory.find_region(stack_pointer)
            if (region is not None and region.contains(stack_pointer, 4)
                    and region.permits(AccessType.READ)):
                accesses.append((stack_pointer, 4))
        words = tuple(batched_read(board.memory, accesses)) if accesses else ()
        return registers, words

    def _verify_restore(self, guard: Tuple[BatchedRegisterFile, Tuple[int, ...]]) -> None:
        registers, words = guard
        after_registers, after_words = self._capture_guard()
        if registers != after_registers or words != after_words:
            raise BatchDivergenceError(
                f"batch {self.batch_id}: shared state changed across an "
                f"eviction replay (step {self.steps}); rerunning the family "
                f"on the scalar path"
            )
