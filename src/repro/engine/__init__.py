"""Parallel campaign execution engine.

The paper's methodology is thousands of independent fault-injection
experiments per campaign; this subsystem executes them at scale. It separates
*plan* from *execution* the way chaos-engineering harnesses do: a
:class:`~repro.core.plan.TestPlan` is sharded into a deterministic work
queue (:mod:`~repro.engine.scheduler`), executed across a *supervised*
worker pool that rebuilds each system under test from spec + seed and
survives worker deaths, hangs, and poison specs
(:mod:`~repro.engine.workers`, :mod:`~repro.engine.supervisor`,
:mod:`~repro.engine.quarantine`), streamed to a crash-safe checkpoint that
makes runs resumable (:mod:`~repro.engine.checkpoint`), and aggregated live
(:mod:`~repro.engine.aggregate`). :class:`CampaignEngine`
(:mod:`~repro.engine.runner`) ties the pieces together; ``Campaign.run``
delegates here with ``jobs=1``, so the sequential API is just the smallest
configuration of the same engine.
"""

from repro.engine.aggregate import (
    AggregateSnapshot,
    EngineProgress,
    LiveAggregator,
)
from repro.engine.checkpoint import Checkpoint
from repro.engine.quarantine import QuarantineLog, default_quarantine_path
from repro.engine.runner import CampaignEngine
from repro.engine.scheduler import (
    Shard,
    WorkItem,
    build_work_queue,
    shard_for_pool,
    shard_work,
    suggest_chunk_size,
)
from repro.engine.supervisor import RunPolicy, SupervisedPool
from repro.engine.workers import execute_pool, execute_serial, resolve_jobs

__all__ = [
    "AggregateSnapshot",
    "CampaignEngine",
    "Checkpoint",
    "EngineProgress",
    "LiveAggregator",
    "QuarantineLog",
    "RunPolicy",
    "Shard",
    "SupervisedPool",
    "WorkItem",
    "build_work_queue",
    "default_quarantine_path",
    "execute_pool",
    "execute_serial",
    "resolve_jobs",
    "shard_for_pool",
    "shard_work",
    "suggest_chunk_size",
]
