"""Certification-evidence report generation.

Combines the failure-mode table, the isolation metrics, and the SEooC
assumption verdicts into a single textual report — the artifact the paper
argues an integrator would need in order to "picture the right direction for
the hypervisor towards a potential certification process".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.recording import ExperimentRecord
from repro.errors import SafetyAssessmentError
from repro.safety.failure_modes import FmeaEntry, fmea_table, format_fmea
from repro.safety.metrics import IsolationMetrics, compute_isolation_metrics
from repro.safety.seooc import AssumptionStatus, AssumptionVerdict, SeoocAssessment


@dataclass
class EvidenceReport:
    """Structured certification evidence for one campaign (or several)."""

    element_name: str
    campaign_names: List[str]
    total_tests: int
    metrics: IsolationMetrics
    fmea: List[FmeaEntry]
    verdicts: List[AssumptionVerdict]
    certification_ready: bool
    remarks: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Render the report as plain text."""
        lines = [
            f"SEooC assessment evidence — {self.element_name}",
            "=" * 60,
            f"campaigns: {', '.join(self.campaign_names) or '(unnamed)'}",
            f"fault-injection tests considered: {self.total_tests}",
            "",
            "Isolation metrics",
            "-----------------",
            self.metrics.describe(),
            "",
            "Failure-mode analysis",
            "---------------------",
            format_fmea(self.fmea),
            "",
            "Assumptions of use",
            "------------------",
        ]
        for verdict in self.verdicts:
            lines.append(f"[{verdict.status.value.upper():^12}] {verdict.identifier}: "
                         f"{verdict.statement}")
            lines.append(f"              criterion: {verdict.criterion}")
            lines.append(f"              evidence : {verdict.detail}")
        lines.append("")
        conclusion = (
            "All assumptions of use validated: the element can proceed to "
            "integration-level safety activities."
            if self.certification_ready else
            "At least one assumption of use is violated or inconclusive: the "
            "element is NOT ready to be integrated as a SEooC without "
            "corrective action."
        )
        lines.append("Conclusion")
        lines.append("----------")
        lines.append(conclusion)
        for remark in self.remarks:
            lines.append(f"note: {remark}")
        return "\n".join(lines)


def build_evidence_report(
    records_by_campaign: Mapping[str, Iterable[ExperimentRecord]],
    *,
    assessment: Optional[SeoocAssessment] = None,
    remarks: Optional[List[str]] = None,
) -> EvidenceReport:
    """Build an :class:`EvidenceReport` from one or more campaigns' records.

    Each campaign's records may be any iterable — including the lazy
    generators from :meth:`~repro.core.recording.RecordStore.iter_records` —
    and is consumed exactly once. The assessment itself needs several passes
    (metrics, FMEA, assumption verdicts), so the records are materialized
    into a single combined list here rather than once per caller.
    """
    if not records_by_campaign:
        raise SafetyAssessmentError("at least one campaign is required")
    all_records: List[ExperimentRecord] = []
    for records in records_by_campaign.values():
        all_records.extend(records)
    if not all_records:
        raise SafetyAssessmentError("the provided campaigns contain no records")
    assessment = assessment or SeoocAssessment()
    verdicts = assessment.assess(all_records)
    metrics = compute_isolation_metrics(all_records)
    return EvidenceReport(
        element_name=assessment.element_name,
        campaign_names=sorted(records_by_campaign),
        total_tests=len(all_records),
        metrics=metrics,
        fmea=fmea_table(all_records),
        verdicts=verdicts,
        certification_ready=assessment.certification_ready(verdicts),
        remarks=list(remarks or []),
    )
