"""Automotive Safety Integrity Levels (ASIL).

ISO 26262 grades safety requirements from QM (quality management, no safety
relevance) through ASIL A to ASIL D (most stringent). The paper's context is
a mixed-criticality deployment where the partitions host functions of
different ASIL; the decomposition rules say which pairs of lower levels may
jointly implement a higher one, provided the elements are sufficiently
independent — which is exactly the independence the fault-injection campaign
probes.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.errors import SafetyAssessmentError


class AsilLevel(enum.IntEnum):
    """ASIL grades, ordered by stringency."""

    QM = 0
    A = 1
    B = 2
    C = 3
    D = 4

    @classmethod
    def from_name(cls, name: str) -> "AsilLevel":
        normalized = name.strip().upper().replace("ASIL", "").replace("-", "").strip()
        if normalized in ("QM", ""):
            return cls.QM if normalized == "QM" else _raise_unknown(name)
        try:
            return cls[normalized]
        except KeyError:
            return _raise_unknown(name)

    @property
    def label(self) -> str:
        return "QM" if self is AsilLevel.QM else f"ASIL {self.name}"

    def is_at_least(self, other: "AsilLevel") -> bool:
        return self >= other


def _raise_unknown(name: str) -> "AsilLevel":
    raise SafetyAssessmentError(f"unknown ASIL level {name!r}")


#: ISO 26262-9 ASIL decomposition schemes: a requirement at the key level may
#: be decomposed onto two sufficiently independent elements at the paired
#: levels.
_DECOMPOSITIONS = {
    AsilLevel.D: [(AsilLevel.C, AsilLevel.A), (AsilLevel.B, AsilLevel.B),
                  (AsilLevel.D, AsilLevel.QM)],
    AsilLevel.C: [(AsilLevel.B, AsilLevel.A), (AsilLevel.C, AsilLevel.QM)],
    AsilLevel.B: [(AsilLevel.A, AsilLevel.A), (AsilLevel.B, AsilLevel.QM)],
    AsilLevel.A: [(AsilLevel.A, AsilLevel.QM)],
    AsilLevel.QM: [],
}


def decomposition_pairs(level: AsilLevel) -> List[Tuple[AsilLevel, AsilLevel]]:
    """Allowed decomposition pairs for a requirement at ``level``."""
    return list(_DECOMPOSITIONS[level])


def valid_decomposition(level: AsilLevel, first: AsilLevel,
                        second: AsilLevel) -> bool:
    """Whether ``(first, second)`` is an allowed decomposition of ``level``."""
    pairs = _DECOMPOSITIONS[level]
    return (first, second) in pairs or (second, first) in pairs


def mixed_criticality_allowed(partition_levels: List[AsilLevel],
                              isolation_demonstrated: bool) -> bool:
    """Whether partitions of different ASIL may share the platform.

    ISO 26262-6 requires freedom from interference between coexisting elements
    of different ASIL; without demonstrated isolation every element must be
    developed at the highest level present.
    """
    if not partition_levels:
        raise SafetyAssessmentError("at least one partition level is required")
    distinct = set(partition_levels)
    if len(distinct) == 1:
        return True
    return isolation_demonstrated
