"""Safety Element out of Context (SEooC) assessment.

ISO 26262 allows integrating a software element that was developed out of
context — such as an open-source hypervisor — if its *assumptions of use* can
be validated in the target item. The paper's thesis is that fault injection is
the right tool to produce that validation evidence for Jailhouse's isolation
assumptions. This module encodes the assumptions the paper's experiments
address and checks them against campaign metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.outcomes import Outcome
from repro.core.recording import ExperimentRecord
from repro.errors import SafetyAssessmentError
from repro.safety.asil import AsilLevel
from repro.safety.metrics import IsolationMetrics, compute_isolation_metrics


class AssumptionStatus(enum.Enum):
    """Verdict for one assumption of use."""

    VALIDATED = "validated"
    VIOLATED = "violated"
    INCONCLUSIVE = "inconclusive"


@dataclass
class Assumption:
    """One assumption of use with a quantitative acceptance criterion."""

    identifier: str
    statement: str
    criterion: str
    evaluate: Callable[[IsolationMetrics, Sequence[ExperimentRecord]], AssumptionStatus]


@dataclass(frozen=True)
class AssumptionVerdict:
    """Evaluation result for one assumption."""

    identifier: str
    statement: str
    criterion: str
    status: AssumptionStatus
    detail: str


def _needs_minimum_tests(records: Sequence[ExperimentRecord],
                         minimum: int = 20) -> bool:
    return len(records) >= minimum


def _containment_assumption(threshold: float):
    def evaluate(metrics: IsolationMetrics,
                 records: Sequence[ExperimentRecord]) -> AssumptionStatus:
        if not _needs_minimum_tests(records) or metrics.effective_tests < 5:
            return AssumptionStatus.INCONCLUSIVE
        return (AssumptionStatus.VALIDATED
                if metrics.containment.fraction >= threshold
                else AssumptionStatus.VIOLATED)

    return evaluate


def _no_silent_failures(metrics: IsolationMetrics,
                        records: Sequence[ExperimentRecord]) -> AssumptionStatus:
    if not _needs_minimum_tests(records):
        return AssumptionStatus.INCONCLUSIVE
    silent = sum(
        1 for record in records
        if record.outcome_enum in (Outcome.SILENT_FAILURE, Outcome.INCONSISTENT_STATE)
    )
    return AssumptionStatus.VALIDATED if silent == 0 else AssumptionStatus.VIOLATED


def _rejection_is_safe(metrics: IsolationMetrics,
                       records: Sequence[ExperimentRecord]) -> AssumptionStatus:
    attempts = [record for record in records if record.create_attempted]
    if len(attempts) < 5:
        return AssumptionStatus.INCONCLUSIVE
    # A rejected create must never leave a cell allocated: in the records this
    # shows up as a rejected create combined with a running-but-silent cell.
    wrongly_allocated = sum(
        1 for record in attempts
        if not record.create_succeeded
        and record.outcome_enum is Outcome.INCONSISTENT_STATE
    )
    return (AssumptionStatus.VALIDATED if wrongly_allocated == 0
            else AssumptionStatus.VIOLATED)


def _root_cell_survives(metrics: IsolationMetrics,
                        records: Sequence[ExperimentRecord]) -> AssumptionStatus:
    if not _needs_minimum_tests(records):
        return AssumptionStatus.INCONCLUSIVE
    return (AssumptionStatus.VALIDATED
            if metrics.system_availability.fraction >= 0.95
            else AssumptionStatus.VIOLATED)


def default_assumptions(*, containment_threshold: float = 0.99) -> List[Assumption]:
    """The assumptions of use addressed by the paper's experiments."""
    return [
        Assumption(
            identifier="AoU-1",
            statement=(
                "A fault activated inside a non-root cell does not affect the "
                "execution of the other cells (freedom from interference)."
            ),
            criterion=(
                f"containment rate >= {containment_threshold * 100:.0f}% over the "
                "effective tests of the campaign"
            ),
            evaluate=_containment_assumption(containment_threshold),
        ),
        Assumption(
            identifier="AoU-2",
            statement=(
                "Every hypervisor-detected fault is signalled explicitly; no "
                "cell is silently lost or left in a state that diverges from "
                "what the management interface reports."
            ),
            criterion="zero silent-failure or inconsistent-state outcomes",
            evaluate=_no_silent_failures,
        ),
        Assumption(
            identifier="AoU-3",
            statement=(
                "A cell-management request carrying corrupted arguments is "
                "rejected without allocating or starting the cell."
            ),
            criterion="no rejected create ever results in an allocated cell",
            evaluate=_rejection_is_safe,
        ),
        Assumption(
            identifier="AoU-4",
            statement=(
                "The safety-relevant root cell keeps running while faults are "
                "injected into the non-root cell."
            ),
            criterion="whole-system availability >= 95% of tests",
            evaluate=_root_cell_survives,
        ),
    ]


@dataclass
class SeoocAssessment:
    """Assessment of the hypervisor as a SEooC against campaign evidence."""

    element_name: str = "Jailhouse partitioning hypervisor"
    claimed_level: AsilLevel = AsilLevel.B
    assumptions: List[Assumption] = field(default_factory=default_assumptions)

    def assess(self, records: Sequence[ExperimentRecord]) -> List[AssumptionVerdict]:
        """Evaluate every assumption of use against the campaign records."""
        if not records:
            raise SafetyAssessmentError("cannot assess a SEooC without campaign records")
        metrics = compute_isolation_metrics(records)
        verdicts: List[AssumptionVerdict] = []
        for assumption in self.assumptions:
            status = assumption.evaluate(metrics, records)
            detail = self._detail_for(status, metrics)
            verdicts.append(
                AssumptionVerdict(
                    identifier=assumption.identifier,
                    statement=assumption.statement,
                    criterion=assumption.criterion,
                    status=status,
                    detail=detail,
                )
            )
        return verdicts

    @staticmethod
    def _detail_for(status: AssumptionStatus, metrics: IsolationMetrics) -> str:
        return (
            f"containment={metrics.containment.fraction * 100:.1f}% "
            f"detection={metrics.detection.fraction * 100:.1f}% "
            f"system availability={metrics.system_availability.fraction * 100:.1f}% "
            f"({status.value})"
        )

    def certification_ready(self, verdicts: Sequence[AssumptionVerdict]) -> bool:
        """Whether every assumption of use was validated."""
        return bool(verdicts) and all(
            verdict.status is AssumptionStatus.VALIDATED for verdict in verdicts
        )
