"""Isolation and diagnostic-coverage metrics.

These metrics condense a fault-injection campaign into the numbers an ISO
26262 integrator needs when judging the hypervisor as a SEooC:

* **containment rate** — among tests where the fault had any effect, how often
  the effect stayed inside the targeted partition (the paper's CPU-park and
  invalid-argument outcomes) rather than propagating (panic park);
* **detection coverage** — how often an activated fault produced an explicit
  error indication rather than silent misbehaviour (silent failures and the
  "inconsistent state" finding count against it);
* **availability** — fraction of tests in which the non-critical and critical
  partitions kept delivering their service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.analysis.stats import ProportionSummary, summarize_proportion
from repro.core.outcomes import Outcome
from repro.core.recording import ExperimentRecord

#: Outcomes whose effect stays inside the targeted partition.
CONTAINED_OUTCOMES = frozenset(
    {Outcome.CPU_PARK, Outcome.INVALID_ARGUMENTS, Outcome.INCONSISTENT_STATE}
)
#: Outcomes where the fault escaped the targeted partition.
PROPAGATED_OUTCOMES = frozenset({Outcome.PANIC_PARK, Outcome.SILENT_FAILURE})
#: Outcomes that come with an explicit, observable error indication.
DETECTED_OUTCOMES = frozenset(
    {Outcome.PANIC_PARK, Outcome.CPU_PARK, Outcome.INVALID_ARGUMENTS}
)


@dataclass(frozen=True)
class IsolationMetrics:
    """Campaign-level isolation and coverage metrics."""

    total_tests: int
    effective_tests: int              # tests where the fault had any effect
    containment: ProportionSummary    # contained / effective
    detection: ProportionSummary      # detected / effective
    target_availability: ProportionSummary   # tests with target cell still serving
    system_availability: ProportionSummary   # tests without whole-system failure

    def describe(self) -> str:
        return "\n".join(
            [
                f"tests: {self.total_tests} (with observable effect: {self.effective_tests})",
                f"containment       : {self.containment.describe()}",
                f"detection coverage: {self.detection.describe()}",
                f"target availability: {self.target_availability.describe()}",
                f"system availability: {self.system_availability.describe()}",
            ]
        )


def compute_isolation_metrics(records: Sequence[ExperimentRecord]) -> IsolationMetrics:
    """Compute isolation metrics over a campaign's records."""
    total = len(records)
    outcomes = [record.outcome_enum for record in records]
    effective = [outcome for outcome in outcomes if outcome is not Outcome.CORRECT]
    contained = sum(1 for outcome in effective if outcome in CONTAINED_OUTCOMES)
    detected = sum(1 for outcome in effective if outcome in DETECTED_OUTCOMES)
    target_available = sum(
        1 for outcome in outcomes
        if outcome in (Outcome.CORRECT, Outcome.INVALID_ARGUMENTS)
    )
    system_available = sum(
        1 for outcome in outcomes if outcome is not Outcome.PANIC_PARK
    )
    return IsolationMetrics(
        total_tests=total,
        effective_tests=len(effective),
        containment=summarize_proportion(contained, len(effective)),
        detection=summarize_proportion(detected, len(effective)),
        target_availability=summarize_proportion(target_available, total),
        system_availability=summarize_proportion(system_available, total),
    )


def compare_metrics(metrics: Dict[str, IsolationMetrics]) -> str:
    """Render a side-by-side comparison of isolation metrics per system."""
    if not metrics:
        return "(no systems)"
    header = (
        f"{'system':<16} {'tests':>6} {'containment':>12} {'detection':>10} "
        f"{'target avail':>13} {'system avail':>13}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(metrics):
        value = metrics[name]
        lines.append(
            f"{name:<16} {value.total_tests:>6} "
            f"{value.containment.fraction * 100:>11.1f}% "
            f"{value.detection.fraction * 100:>9.1f}% "
            f"{value.target_availability.fraction * 100:>12.1f}% "
            f"{value.system_availability.fraction * 100:>12.1f}%"
        )
    return "\n".join(lines)
