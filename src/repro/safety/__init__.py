"""ISO 26262 / SEooC assessment layer.

The purpose of the paper's fault-injection campaign is to provide the
evidence required to treat the hypervisor as a *Safety Element out of Context*
(SEooC) under ISO 26262: demonstrate that the element's failure behaviour is
understood, that faults in one partition do not negatively affect the others,
and quantify how often the error-detection mechanisms catch injected faults.
This subpackage turns campaign results into that evidence: failure-mode
mapping, isolation/diagnostic-coverage metrics, assumption-of-use validation,
and a textual evidence report.
"""

from repro.safety.asil import AsilLevel, decomposition_pairs
from repro.safety.evidence import EvidenceReport, build_evidence_report
from repro.safety.failure_modes import FailureMode, classify_failure_mode, fmea_table
from repro.safety.metrics import IsolationMetrics, compute_isolation_metrics
from repro.safety.seooc import Assumption, AssumptionStatus, SeoocAssessment, default_assumptions

__all__ = [
    "AsilLevel",
    "Assumption",
    "AssumptionStatus",
    "EvidenceReport",
    "FailureMode",
    "IsolationMetrics",
    "SeoocAssessment",
    "build_evidence_report",
    "classify_failure_mode",
    "compute_isolation_metrics",
    "decomposition_pairs",
    "default_assumptions",
    "fmea_table",
]
