"""Failure-mode analysis of campaign outcomes.

ISO 26262 asks for failure modes to be analyzed "according to anomalous
conditions"; the paper's outcome vocabulary maps naturally onto hypervisor
failure modes with different safety impact. This module provides that mapping
plus a compact FMEA-style table derived from a campaign.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.outcomes import Outcome
from repro.core.recording import ExperimentRecord


class FailureMode(enum.Enum):
    """Hypervisor-level failure modes relevant to partitioning."""

    NO_FAILURE = "no failure"
    COMMON_CAUSE_FAILURE = "loss of partitioning (common-cause failure)"
    PARTITION_LOSS_CONTAINED = "loss of one partition, contained"
    SAFE_REJECTION = "management request rejected (fail-safe)"
    UNDETECTED_PARTITION_LOSS = "partition lost without detection"
    STATE_DIVERGENCE = "management state diverges from actual state"


@dataclass(frozen=True)
class FmeaEntry:
    """One row of the FMEA-style table."""

    failure_mode: FailureMode
    outcome: Outcome
    occurrences: int
    fraction: float
    severity: int           # 1 (negligible) .. 10 (catastrophic)
    detectability: int      # 1 (always detected) .. 10 (undetectable)
    effect: str

    @property
    def risk_priority(self) -> int:
        """Simplified risk priority number (severity x detectability x share)."""
        return int(round(self.severity * self.detectability * self.fraction * 100))


_MODE_MAP: Dict[Outcome, FailureMode] = {
    Outcome.CORRECT: FailureMode.NO_FAILURE,
    Outcome.PANIC_PARK: FailureMode.COMMON_CAUSE_FAILURE,
    Outcome.CPU_PARK: FailureMode.PARTITION_LOSS_CONTAINED,
    Outcome.INVALID_ARGUMENTS: FailureMode.SAFE_REJECTION,
    Outcome.INCONSISTENT_STATE: FailureMode.STATE_DIVERGENCE,
    Outcome.SILENT_FAILURE: FailureMode.UNDETECTED_PARTITION_LOSS,
}

_SEVERITY: Dict[FailureMode, int] = {
    FailureMode.NO_FAILURE: 1,
    FailureMode.COMMON_CAUSE_FAILURE: 10,
    FailureMode.PARTITION_LOSS_CONTAINED: 6,
    FailureMode.SAFE_REJECTION: 2,
    FailureMode.UNDETECTED_PARTITION_LOSS: 9,
    FailureMode.STATE_DIVERGENCE: 8,
}

_DETECTABILITY: Dict[FailureMode, int] = {
    FailureMode.NO_FAILURE: 1,
    FailureMode.COMMON_CAUSE_FAILURE: 2,   # a kernel panic is very visible
    FailureMode.PARTITION_LOSS_CONTAINED: 3,
    FailureMode.SAFE_REJECTION: 1,
    FailureMode.UNDETECTED_PARTITION_LOSS: 9,
    FailureMode.STATE_DIVERGENCE: 8,       # the paper calls this "particularly dangerous"
}

_EFFECTS: Dict[FailureMode, str] = {
    FailureMode.NO_FAILURE: "mission continues unaffected",
    FailureMode.COMMON_CAUSE_FAILURE:
        "fault propagates across partitions; every hosted function is lost",
    FailureMode.PARTITION_LOSS_CONTAINED:
        "one partition stops; remaining partitions keep their resources",
    FailureMode.SAFE_REJECTION:
        "requested operation refused; system stays in its previous safe state",
    FailureMode.UNDETECTED_PARTITION_LOSS:
        "partition output stops with no error indication to the integrator",
    FailureMode.STATE_DIVERGENCE:
        "management interface reports a running partition that is actually dead",
}


def classify_failure_mode(outcome: Outcome) -> FailureMode:
    """Map a per-test outcome to its hypervisor failure mode."""
    return _MODE_MAP[outcome]


def severity(mode: FailureMode) -> int:
    return _SEVERITY[mode]


def detectability(mode: FailureMode) -> int:
    return _DETECTABILITY[mode]


def fmea_table(records: Sequence[ExperimentRecord]) -> List[FmeaEntry]:
    """Build the FMEA-style table for a campaign (one row per observed outcome)."""
    total = len(records)
    entries: List[FmeaEntry] = []
    if total == 0:
        return entries
    counts: Dict[Outcome, int] = {}
    for record in records:
        outcome = record.outcome_enum
        counts[outcome] = counts.get(outcome, 0) + 1
    for outcome, occurrences in sorted(counts.items(), key=lambda item: item[0].value):
        mode = classify_failure_mode(outcome)
        entries.append(
            FmeaEntry(
                failure_mode=mode,
                outcome=outcome,
                occurrences=occurrences,
                fraction=occurrences / total,
                severity=_SEVERITY[mode],
                detectability=_DETECTABILITY[mode],
                effect=_EFFECTS[mode],
            )
        )
    entries.sort(key=lambda entry: -entry.risk_priority)
    return entries


def format_fmea(entries: Sequence[FmeaEntry]) -> str:
    """Render the FMEA table as text."""
    if not entries:
        return "(no experiments)"
    lines = [
        f"{'failure mode':<48} {'outcome':<20} {'share':>7} {'sev':>4} {'det':>4} {'RPN':>5}",
    ]
    lines.append("-" * len(lines[0]))
    for entry in entries:
        lines.append(
            f"{entry.failure_mode.value:<48} {entry.outcome.value:<20} "
            f"{entry.fraction * 100:6.1f}% {entry.severity:>4} "
            f"{entry.detectability:>4} {entry.risk_priority:>5}"
        )
    return "\n".join(lines)
