"""The ``repro-fleet/v1`` wire protocol: JSON over HTTP, stdlib only.

The fleet speaks a small versioned request/response protocol between one
coordinator (``repro-fi serve``) and any number of worker agents
(``repro-fi fleet-worker``), plus operator tools (``submit``,
``fleet-status``). Every message — request and response — is one JSON object
carrying ``"schema": "repro-fleet/v1"``; a peer speaking any other version
is rejected up front (:func:`validate_message`), so a protocol change bumps
the version instead of silently misinterpreting fields.

Endpoints (all under the coordinator's HTTP server):

``POST /fleet/join``
    ``{host, pid}`` → ``{host_id, lease_ttl_s, heartbeat_interval_s}``.
    Registration is cheap and repeatable: a worker whose ``host_id`` the
    coordinator no longer knows (coordinator restart) simply joins again.
``POST /fleet/lease``
    ``{host_id}`` → ``{lease}`` with ``lease_id``, ``shard_id``,
    ``campaign_id``, the campaign ``config`` (the declarative TOML/JSON dict
    — the PR-3 layer is the wire format), the shard's ``spec_ids`` and
    engine options; or ``{lease: null, state}`` where ``state`` is ``wait``
    (no work *right now*: everything is leased out or backing off) or
    ``done`` (every submitted campaign is complete).
``POST /fleet/heartbeat``
    ``{host_id, leases: {lease_id: {completed}}}`` → renews the TTL of every
    named lease; the response's ``revoked`` list names leases the
    coordinator no longer honors (expired or stolen) so the holder can stop
    working on them.
``POST /fleet/submit``
    ``{host_id, lease_id, shard_id, campaign_id, records: [...]}`` →
    ``{merged, duplicates}``. **Idempotent**: records are deduplicated by
    spec identity, so at-least-once delivery (a worker retrying after a
    dropped response, a stolen shard finishing twice) merges into exactly
    one record per spec.
``POST /fleet/campaign``
    ``{config, options}`` → ``{campaign_id}``. Operator submission.
``GET /fleet/status``
    Full fleet status (campaigns, shards, hosts, leases).
``GET /fleet/records?campaign=ID``
    The campaign's merged records as JSON-Lines, in plan order.

Transport errors map to HTTP status codes (400 protocol violation, 404
unknown resource, 409 conflict); the body is still a ``repro-fleet/v1``
object with an ``error`` field, so clients report the coordinator's words,
not an HTML error page.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.errors import (
    FleetError,
    FleetProtocolError,
    FleetUnavailableError,
)

#: Version stamp carried by every fleet message, both directions.
FLEET_SCHEMA = "repro-fleet/v1"

#: Default lease TTL: a lease not renewed by a heartbeat for this long is
#: considered lost and its shard is requeued.
DEFAULT_LEASE_TTL_S = 15.0

#: Default heartbeat interval the coordinator asks workers to use (TTL/3, so
#: a lease survives two dropped heartbeats but not three).
DEFAULT_HEARTBEAT_INTERVAL_S = 5.0


def envelope(**fields) -> dict:
    """A fleet message: the given fields under the version stamp."""
    return {"schema": FLEET_SCHEMA, **fields}


def validate_message(data: object, *, context: str = "fleet message") -> dict:
    """Check one parsed message is a ``repro-fleet/v1`` object.

    Returns the dict on success; raises :class:`FleetProtocolError` naming
    the problem otherwise. Field-level validation stays with each endpoint —
    this is the version gate every message passes first.
    """
    if not isinstance(data, dict):
        raise FleetProtocolError(f"{context}: not a JSON object")
    schema = data.get("schema")
    if schema != FLEET_SCHEMA:
        raise FleetProtocolError(
            f"{context}: schema is {schema!r}, expected {FLEET_SCHEMA!r} "
            f"(coordinator and workers must run compatible versions)"
        )
    return data


def require_fields(data: dict, fields: List[str], *,
                   context: str) -> None:
    missing = [field for field in fields if field not in data]
    if missing:
        raise FleetProtocolError(
            f"{context}: missing required field(s) {', '.join(missing)}"
        )


class FleetClient:
    """Stdlib HTTP client for the coordinator's fleet endpoints.

    Every method raises :class:`FleetError` on transport failure (connection
    refused, timeout) and :class:`FleetProtocolError` on malformed or
    version-mismatched responses, so callers can distinguish "coordinator is
    down — retry with backoff" from "wrong software on the other end — stop".
    """

    def __init__(self, base_url: str, *, timeout_s: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing -----------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(envelope(**payload)).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=body, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            # The coordinator answers errors with a fleet-schema body; relay
            # its words when it did, the HTTP status when it could not.
            raw = exc.read()
            try:
                data = validate_message(json.loads(raw.decode("utf-8")),
                                        context=f"{method} {path} error body")
            except (FleetProtocolError, ValueError, UnicodeDecodeError):
                raise FleetError(
                    f"{method} {path} failed: HTTP {exc.code} {exc.reason}"
                ) from None
            raise FleetError(
                f"{method} {path} failed: "
                f"{data.get('error', f'HTTP {exc.code}')}"
            ) from None
        except (urllib.error.URLError, socket.timeout, OSError,
                ConnectionError) as exc:
            reason = getattr(exc, "reason", exc)
            raise FleetUnavailableError(
                f"cannot reach fleet coordinator at {self.base_url}: {reason}"
            ) from None
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise FleetProtocolError(
                f"{method} {path}: response is not JSON: {exc}") from None
        return validate_message(data, context=f"{method} {path} response")

    # -- worker endpoints ---------------------------------------------------------------

    def join(self, *, host: str, pid: int) -> dict:
        response = self._request("POST", "/fleet/join",
                                 {"host": host, "pid": pid})
        require_fields(response,
                       ["host_id", "lease_ttl_s", "heartbeat_interval_s"],
                       context="join response")
        return response

    def lease(self, *, host_id: str) -> dict:
        response = self._request("POST", "/fleet/lease",
                                 {"host_id": host_id})
        if response.get("lease") is not None:
            require_fields(response["lease"],
                           ["lease_id", "shard_id", "campaign_id", "config",
                            "spec_ids", "engine"],
                           context="lease response")
        return response

    def heartbeat(self, *, host_id: str,
                  leases: Dict[str, dict]) -> dict:
        return self._request("POST", "/fleet/heartbeat",
                             {"host_id": host_id, "leases": leases})

    def submit_records(self, *, host_id: str, lease_id: str, shard_id: str,
                       campaign_id: str, records: List[dict]) -> dict:
        response = self._request("POST", "/fleet/submit", {
            "host_id": host_id,
            "lease_id": lease_id,
            "shard_id": shard_id,
            "campaign_id": campaign_id,
            "records": records,
        })
        require_fields(response, ["merged", "duplicates"],
                       context="submit response")
        return response

    # -- operator endpoints -------------------------------------------------------------

    def submit_campaign(self, *, config: dict,
                        options: Optional[dict] = None) -> dict:
        response = self._request("POST", "/fleet/campaign",
                                 {"config": config,
                                  "options": options or {}})
        require_fields(response, ["campaign_id"],
                       context="campaign submission response")
        return response

    def status(self) -> dict:
        return self._request("GET", "/fleet/status")

    def records(self, campaign_id: str) -> List[dict]:
        """The campaign's merged records, in plan order, as parsed dicts."""
        url = f"{self.base_url}/fleet/records?campaign={campaign_id}"
        request = urllib.request.Request(url)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            raise FleetError(
                f"cannot fetch records for campaign {campaign_id!r}: "
                f"HTTP {exc.code} {exc.reason}") from None
        except (urllib.error.URLError, socket.timeout, OSError,
                ConnectionError) as exc:
            raise FleetUnavailableError(
                f"cannot reach fleet coordinator at {self.base_url}: "
                f"{getattr(exc, 'reason', exc)}") from None
        records = []
        for lineno, line in enumerate(raw.decode("utf-8").splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise FleetProtocolError(
                    f"records response line {lineno} is not JSON: {exc}"
                ) from None
        return records
