"""Multi-host campaign fleet: coordinator, worker agents, record merge.

The paper's campaigns are embarrassingly parallel across experiment specs,
so they scale across machines — *if* losing a machine, a network link, or
the coordinator itself cannot lose or duplicate results. This package is
that layer:

* :mod:`repro.fleet.protocol` — the versioned ``repro-fleet/v1`` JSON/HTTP
  wire protocol and its stdlib client;
* :mod:`repro.fleet.lease` — the pure (clock-injected, I/O-free) lease
  table: TTLs, heartbeat renewal, expiry requeue with backoff, work
  stealing, host quarantine;
* :mod:`repro.fleet.coordinator` — ``repro-fi serve``: shard planning,
  lease granting, idempotent identity-keyed result merge, crash-safe state
  (atomic checkpoints + ``state.json``), fleet telemetry events;
* :mod:`repro.fleet.worker` — ``repro-fi fleet-worker``: the agent that
  leases shards and runs them through the ordinary campaign engine;
* :mod:`repro.fleet.merge` — ``repro-fi merge``: offline cross-host record
  store merge with hard conflict detection.

Imports stay lazy (mirroring :mod:`repro.obs`): pulling in
:mod:`repro.fleet` must not drag the HTTP server or the engine into
processes that only want, say, the merge helper.
"""

from __future__ import annotations

_EXPORTS = {
    "FLEET_SCHEMA": "repro.fleet.protocol",
    "FleetClient": "repro.fleet.protocol",
    "LeaseTable": "repro.fleet.lease",
    "FleetCoordinator": "repro.fleet.coordinator",
    "FleetServer": "repro.fleet.coordinator",
    "FleetWorkerAgent": "repro.fleet.worker",
    "MergeStats": "repro.fleet.merge",
    "merge_stores": "repro.fleet.merge",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
