"""The campaign fleet coordinator behind ``repro-fi serve``.

One long-running coordinator accepts :class:`~repro.core.config.
CampaignConfig` submissions, shards each compiled plan into lease units
keyed on :meth:`~repro.core.experiment.ExperimentSpec.identity`
(:func:`~repro.engine.scheduler.plan_shards` — whole prefix families, so
worker-side ``--prefix-cache``/``--batch`` stay effective), and leases the
shards to worker agents over the ``repro-fleet/v1`` protocol. Results merge
back idempotently, deduplicated by spec identity.

Durability is structural, not best-effort:

* **Results** journal through the engine's :class:`~repro.engine.checkpoint.
  Checkpoint` — every merge lands via the atomic ``RecordStore.replace_all``
  temp-file + fsync + rename path, so a SIGKILLed coordinator leaves a
  complete, loadable record store per campaign.
* **Campaigns** journal to ``state.json`` (same atomic write pattern) as
  their declarative config dicts — the wire format doubles as the journal
  format.
* **Leases are deliberately ephemeral.** On ``repro serve --resume`` the
  coordinator reloads the campaigns, subtracts each checkpoint's identity
  stamps from its plan, and re-shards *only the unfinished specs*; workers
  whose coordinator vanished keep their partial work and re-submit it (the
  merge dedups), then re-join. Nothing about who-held-what needs to survive
  a restart for the records to.

The coordinator is thread-safe (one lock; the HTTP server is a
``ThreadingHTTPServer``) and emits fleet telemetry events — ``host_joined``,
``lease_granted``, ``lease_expired``, ``host_lost``, ``shard_stolen``,
``result_merged`` — through the same bus the engine uses, so the watch
dashboard grows a fleet card for free.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http import HTTPStatus
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is optional)
    from repro.obs.telemetry import Telemetry

from repro.core.config import CampaignConfig
from repro.core.recording import ExperimentRecord
from repro.engine.checkpoint import Checkpoint
from repro.engine.scheduler import plan_shards
from repro.errors import AnalysisError, FleetError, FleetProtocolError
from repro.fleet.lease import (
    DEFAULT_BACKOFF_S,
    DEFAULT_HOST_FAILURE_LIMIT,
    LeaseTable,
)
from repro.fleet.merge import canonical_json, record_key
from repro.fleet.protocol import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_LEASE_TTL_S,
    FLEET_SCHEMA,
    envelope,
    require_fields,
    validate_message,
)

#: Schema of the coordinator's ``state.json`` journal.
STATE_SCHEMA = "repro-fleet-state/v1"

#: Schema of the quarantined-hosts sidecar (one JSON object per line) —
#: the fleet sibling of the engine's ``repro-quarantine/v1`` spec sidecar.
HOST_QUARANTINE_SCHEMA = "repro-fleet-quarantine/v1"

#: Default specs per shard (lease unit). Small enough that losing a host
#: mid-shard forfeits little work; large enough that prefix families stay
#: whole and per-lease overhead amortizes.
DEFAULT_SHARD_SIZE = 8


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` as JSON via temp file + fsync + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class CampaignEntry:
    """One submitted campaign: config, compiled plan, merged results."""

    def __init__(self, campaign_id: str, config: CampaignConfig,
                 state_dir: Path) -> None:
        self.campaign_id = campaign_id
        self.config = config
        self.plan = config.compile()
        #: identity → plan position, for plan-order finalization.
        self.position: Dict[str, int] = {
            spec.identity(): index for index, spec in enumerate(self.plan)
        }
        self.checkpoint = Checkpoint(state_dir / f"{campaign_id}.records.jsonl")
        self.merged: set = set()
        self.finalized = False

    @property
    def total(self) -> int:
        return len(self.plan)

    @property
    def done(self) -> bool:
        return len(self.merged) >= self.total

    def load_checkpoint(self) -> int:
        count = self.checkpoint.load()
        self.merged = {
            identity for identity in self.checkpoint.completed_identities()
            if identity in self.position
        }
        return count

    def ordered_records(self) -> List[ExperimentRecord]:
        """The merged records so far, in plan order."""
        records = [
            (self.position[identity], self.checkpoint.record_by_identity(identity))
            for identity in self.merged
        ]
        return [record for _, record in sorted(records, key=lambda pair: pair[0])
                if record is not None]

    def to_state(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "name": self.config.name,
            "config": self.config.to_dict(),
        }


class FleetCoordinator:
    """Shards campaigns, leases them out, merges results. Thread-safe."""

    def __init__(self, state_dir: "str | Path", *,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
                 steal_after_s: Optional[float] = None,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 host_failure_limit: int = DEFAULT_HOST_FAILURE_LIMIT,
                 backoff_s: float = DEFAULT_BACKOFF_S,
                 telemetry: "Telemetry | None" = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if lease_ttl_s <= 0:
            raise FleetError(f"lease TTL must be positive, got {lease_ttl_s}")
        if heartbeat_interval_s <= 0:
            raise FleetError(
                f"heartbeat interval must be positive, got "
                f"{heartbeat_interval_s}")
        if shard_size <= 0:
            raise FleetError(f"shard size must be positive, got {shard_size}")
        self.state_dir = Path(state_dir)
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.shard_size = shard_size
        self.clock = clock
        self._lock = threading.Lock()
        self.table = LeaseTable(
            lease_ttl_s=lease_ttl_s,
            steal_after_s=steal_after_s,
            backoff_s=backoff_s,
            host_failure_limit=host_failure_limit,
        )
        self.campaigns: Dict[str, CampaignEntry] = {}
        self._campaign_order: List[str] = []
        self.telemetry = telemetry if (telemetry is not None
                                       and telemetry.active) else None
        # The bus is single-threaded by contract (the engine emits only from
        # its parent loop); the coordinator emits from HTTP handler threads
        # and the sweeper, so fleet emission serializes through this lock.
        self._emit_lock = threading.Lock()
        #: Hosts already reported lost (one host_lost event per loss).
        self._lost_hosts: set = set()
        #: Optional hook called with each freshly merged record (the serve
        #: front-end feeds the watch hub's aggregate view through it).
        self.on_record: Optional[Callable[[ExperimentRecord], None]] = None

    def _emit(self, kind: str, **payload) -> None:
        if self.telemetry is None:
            return
        with self._emit_lock:
            self.telemetry.emit(kind, **payload)

    # -- persistence --------------------------------------------------------------------

    @property
    def state_path(self) -> Path:
        return self.state_dir / "state.json"

    @property
    def host_quarantine_path(self) -> Path:
        return self.state_dir / "hosts.quarantine"

    def _save_state(self) -> None:
        payload = {
            "schema": STATE_SCHEMA,
            "campaigns": [
                self.campaigns[campaign_id].to_state()
                for campaign_id in self._campaign_order
            ],
        }
        _atomic_write_json(self.state_path, payload)

    def resume(self) -> int:
        """Reload journaled campaigns; returns how many were recovered.

        Each campaign's checkpoint is reloaded and its plan re-sharded over
        the specs whose identities are *not* already stamped there — so a
        resumed coordinator re-offers exactly the unfinished work, and a
        record merged before the crash is never executed again.
        """
        path = self.state_path
        if not path.exists():
            raise FleetError(
                f"cannot resume: no fleet state at {path} "
                f"(start without --resume to create a fresh state dir)")
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise FleetError(f"cannot read fleet state {path}: {exc}") from exc
        if payload.get("schema") != STATE_SCHEMA:
            raise FleetError(
                f"{path}: schema is {payload.get('schema')!r}, expected "
                f"{STATE_SCHEMA!r}")
        # Resume runs before the HTTP threads start, but the campaign table
        # is guarded state: take the lock anyway so the discipline holds
        # statically, not just by start-up ordering.
        with self._lock:
            for entry in payload.get("campaigns", []):
                config = CampaignConfig.from_dict(entry["config"])
                self._add_campaign_locked(entry["campaign_id"], config,
                                          resume=True)
        return len(self._campaign_order)

    # -- submission ---------------------------------------------------------------------

    def submit(self, config: "CampaignConfig | dict") -> str:
        """Accept one campaign; returns its id. Journals synchronously."""
        if isinstance(config, dict):
            config = CampaignConfig.from_dict(config)
        with self._lock:
            campaign_id = f"c{len(self._campaign_order) + 1:03d}-{config.name}"
            if campaign_id in self.campaigns:
                raise FleetError(
                    f"campaign id collision for {campaign_id!r}")
            self._add_campaign_locked(campaign_id, config, resume=False)
            self._save_state()
        return campaign_id

    def _add_campaign_locked(self, campaign_id: str, config: CampaignConfig,
                             *, resume: bool) -> None:
        entry = CampaignEntry(campaign_id, config, self.state_dir)
        if resume:
            entry.load_checkpoint()
        else:
            entry.checkpoint.clear()
        shards = plan_shards(entry.plan, shard_size=self.shard_size,
                             skip_identities=entry.merged)
        self.campaigns[campaign_id] = entry
        self._campaign_order.append(campaign_id)
        self.table.add_shards(campaign_id, shards)
        if entry.done:
            self._finalize(entry)

    # -- worker protocol ----------------------------------------------------------------

    def handle_join(self, message: dict) -> dict:
        require_fields(message, ["host", "pid"], context="join request")
        now = self.clock()
        with self._lock:
            info = self.table.join(host=str(message["host"]),
                                   pid=int(message["pid"]), now=now)
        self._emit("host_joined", host=info.host, host_id=info.host_id)
        return envelope(
            host_id=info.host_id,
            lease_ttl_s=self.lease_ttl_s,
            heartbeat_interval_s=self.heartbeat_interval_s,
            quarantined=info.quarantined,
        )

    def handle_lease(self, message: dict) -> dict:
        require_fields(message, ["host_id"], context="lease request")
        host_id = str(message["host_id"])
        now = self.clock()
        with self._lock:
            self._sweep_locked(now)
            info = self.table.touch(host_id, now)
            if info is None:
                # Coordinator restart: the worker's registration is gone.
                # Telling it to rejoin (rather than erroring) makes recovery
                # a protocol state, not an exception path.
                return envelope(lease=None, state="rejoin")
            lease, stolen_from, state = self.table.grant(host_id, now)
        if lease is None:
            return envelope(lease=None, state=state)
        entry = self.campaigns[lease.campaign_id]
        shard = self.table.shard(lease.shard_id).shard
        if stolen_from is not None:
            self._emit("shard_stolen", shard=lease.shard_id,
                       from_host=stolen_from, to_host=lease.host)
        self._emit("lease_granted", host=lease.host, shard=lease.shard_id,
                   campaign=lease.campaign_id, specs=len(shard))
        config = entry.config
        return envelope(lease={
            "lease_id": lease.lease_id,
            "shard_id": lease.shard_id,
            "campaign_id": lease.campaign_id,
            "config": config.to_dict(),
            "spec_ids": list(shard.spec_ids),
            "spec_names": list(shard.spec_names),
            "lease_ttl_s": self.lease_ttl_s,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            # Engine options the config carries; worker-side flags override.
            "engine": {
                "prefix_cache": config.prefix_cache,
                "batch": config.batch,
                "batch_size": config.batch_size,
                "chunk_size": config.chunk_size,
                "timeout_s": config.timeout_s,
                "retries": config.retries,
                "max_worker_restarts": config.max_worker_restarts,
            },
            "stolen_from": stolen_from,
        })

    def handle_heartbeat(self, message: dict) -> dict:
        require_fields(message, ["host_id"], context="heartbeat request")
        host_id = str(message["host_id"])
        leases = message.get("leases") or {}
        if not isinstance(leases, dict):
            raise FleetProtocolError("heartbeat: 'leases' must be an object")
        now = self.clock()
        with self._lock:
            self._sweep_locked(now)
            info = self.table.touch(host_id, now)
            if info is None:
                return envelope(ok=False, rejoin=True,
                                revoked=sorted(leases))
            revoked = self.table.renew(host_id, leases, now)
        return envelope(ok=True, rejoin=False, revoked=revoked)

    def handle_submit(self, message: dict) -> dict:
        require_fields(message, ["campaign_id", "shard_id", "records"],
                       context="submit request")
        campaign_id = str(message["campaign_id"])
        shard_id = str(message["shard_id"])
        raw_records = message["records"]
        if not isinstance(raw_records, list):
            raise FleetProtocolError("submit: 'records' must be an array")
        entry = self.campaigns.get(campaign_id)
        if entry is None:
            raise FleetError(f"unknown campaign {campaign_id!r}")
        records: List[ExperimentRecord] = []
        for position, raw in enumerate(raw_records):
            try:
                record = ExperimentRecord.from_json(
                    json.dumps(raw, sort_keys=True))
            except (AnalysisError, TypeError, ValueError) as exc:
                raise FleetProtocolError(
                    f"submit: record {position} is malformed: {exc}"
                ) from None
            records.append(record)
        host_id = str(message.get("host_id", ""))
        now = self.clock()
        merged = duplicates = conflicts = 0
        fresh: List[ExperimentRecord] = []
        with self._lock:
            self.table.touch(host_id, now)
            for record in records:
                identity = record.spec_id
                if identity is None or identity not in entry.position:
                    raise FleetProtocolError(
                        f"submit: record {record.spec_name!r} carries no "
                        f"known spec identity for campaign {campaign_id!r} "
                        f"(stamp records with spec_id; identities must come "
                        f"from this campaign's plan)")
                if identity in entry.merged:
                    existing = entry.checkpoint.record_by_identity(identity)
                    if (existing is not None
                            and canonical_json(existing)
                            != canonical_json(record)):
                        conflicts += 1
                    else:
                        duplicates += 1
                    continue
                entry.checkpoint.commit_record(record)
                entry.merged.add(identity)
                merged += 1
                fresh.append(record)
            shard_entry = self.table.shard(shard_id)
            shard_done = (
                shard_entry is not None
                and all(identity in entry.merged
                        for identity in shard_entry.shard.spec_ids)
            )
            if shard_done:
                self.table.complete(shard_id, host_id=host_id or None)
            campaign_done = entry.done
            if campaign_done:
                self._finalize(entry)
        if conflicts:
            # Deterministic re-execution means a true duplicate is
            # byte-identical; a conflict is a different campaign definition
            # or code version talking to us — refuse loudly, keep ours.
            raise FleetError(
                f"submit: {conflicts} record(s) conflict with already-merged "
                f"records for campaign {campaign_id!r} (same spec identity, "
                f"different payload) — mixed code versions or configs in "
                f"the fleet; the coordinator keeps its existing records")
        self._emit(
            "result_merged",
            campaign=campaign_id,
            shard=shard_id,
            host=host_id,
            merged=merged,
            duplicates=duplicates,
            campaign_merged=len(entry.merged),
            campaign_total=entry.total,
        )
        if self.on_record is not None:
            for record in fresh:
                self.on_record(record)
        return envelope(merged=merged, duplicates=duplicates,
                        campaign_done=campaign_done)

    def _finalize(self, entry: CampaignEntry) -> None:
        """Rewrite a completed campaign's store in plan order (atomic).

        Merge order is submission order — whichever host finished first.
        The finalized store is re-ordered by plan position so it is
        byte-identical to the checkpoint a single-host ``--resume`` run of
        the same campaign would leave behind.
        """
        if entry.finalized:
            return
        entry.checkpoint.replace_records(entry.ordered_records())
        entry.finalized = True

    # -- sweeping -----------------------------------------------------------------------

    def sweep(self) -> int:
        """Expire lapsed leases; returns how many expired. Called
        periodically by the server (and inline on lease/heartbeat traffic).
        """
        now = self.clock()
        with self._lock:
            return len(self._sweep_locked(now))

    def _sweep_locked(self, now: float) -> list:
        quarantined_before = {info.host_id
                              for info in self.table.quarantined_hosts()}
        expired = self.table.expire(now)
        for lease in expired:
            entry = self.table.shard(lease.shard_id)
            self._emit("lease_expired", host=lease.host,
                       shard=lease.shard_id, campaign=lease.campaign_id,
                       failures=entry.failures if entry else 0)
            info = self.table.host(lease.host_id)
            lost = (info is None
                    or info.last_seen_ts + self.lease_ttl_s <= now)
            if lost and lease.host_id not in self._lost_hosts:
                self._lost_hosts.add(lease.host_id)
                self._emit("host_lost", host=lease.host,
                           host_id=lease.host_id)
        for info in self.table.quarantined_hosts():
            if info.host_id not in quarantined_before:
                self._append_host_quarantine(info)
        return expired

    def _append_host_quarantine(self, info) -> None:
        entry = {
            "schema": HOST_QUARANTINE_SCHEMA,
            "host": info.host,
            "host_id": info.host_id,
            "failures": dict(info.shard_failures),
            "reason": "repeated lease losses on the same shard",
            "ts": time.time(),
        }
        self.host_quarantine_path.parent.mkdir(parents=True, exist_ok=True)
        with self.host_quarantine_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    # -- status -------------------------------------------------------------------------

    def all_done(self) -> bool:
        with self._lock:
            return bool(self.campaigns) and all(
                entry.done for entry in self.campaigns.values())

    def flush(self) -> None:
        """Flush every campaign checkpoint (shutdown path)."""
        with self._lock:
            for entry in self.campaigns.values():
                entry.checkpoint.flush()

    def status(self) -> dict:
        with self._lock:
            campaigns = []
            for campaign_id in self._campaign_order:
                entry = self.campaigns[campaign_id]
                shard_counts: Dict[str, int] = {"pending": 0, "leased": 0,
                                                "done": 0}
                for shard_entry in self.table.shards():
                    if shard_entry.campaign_id == campaign_id:
                        shard_counts[shard_entry.state] += 1
                campaigns.append({
                    "campaign_id": campaign_id,
                    "name": entry.config.name,
                    "total": entry.total,
                    "merged": len(entry.merged),
                    "done": entry.done,
                    "shards": shard_counts,
                    "records": str(entry.checkpoint.path),
                })
            payload = envelope(
                state="done" if (self.campaigns
                                 and all(entry.done for entry
                                         in self.campaigns.values()))
                else ("idle" if not self.campaigns else "running"),
                lease_ttl_s=self.lease_ttl_s,
                heartbeat_interval_s=self.heartbeat_interval_s,
                shard_size=self.shard_size,
                campaigns=campaigns,
                hosts=[info.to_dict() for info in self.table.hosts()],
                shards=self.table.counts(),
                leases=[lease.to_dict()
                        for entry in self.table.shards()
                        if (lease := entry.lease) is not None],
            )
        return payload

    def records_text(self, campaign_id: str) -> str:
        with self._lock:
            entry = self.campaigns.get(campaign_id)
            if entry is None:
                raise FleetError(f"unknown campaign {campaign_id!r}")
            records = entry.ordered_records()
        return "".join(record.to_json() + "\n" for record in records)


class _FleetHandler(BaseHTTPRequestHandler):
    """One fleet request; the coordinator hangs off the server object."""

    server: "_FleetHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send(self, payload: dict,
              status: HTTPStatus = HTTPStatus.OK) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, message: str, status: HTTPStatus) -> None:
        self._send(envelope(error=message), status=status)

    def _read_message(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            data = json.loads(raw.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            raise FleetProtocolError(f"request body is not JSON: {exc}") from None
        return validate_message(data, context=f"POST {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        coordinator = self.server.coordinator
        path = self.path.split("?", 1)[0]
        handlers = {
            "/fleet/join": coordinator.handle_join,
            "/fleet/lease": coordinator.handle_lease,
            "/fleet/heartbeat": coordinator.handle_heartbeat,
            "/fleet/submit": coordinator.handle_submit,
            "/fleet/campaign": self._handle_campaign,
        }
        handler = handlers.get(path)
        if handler is None:
            self._send_error(f"unknown endpoint {path}",
                             HTTPStatus.NOT_FOUND)
            return
        try:
            message = self._read_message()
            response = handler(message)
        except FleetProtocolError as exc:
            self._send_error(str(exc), HTTPStatus.BAD_REQUEST)
        except FleetError as exc:
            self._send_error(str(exc), HTTPStatus.CONFLICT)
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error(f"internal error: {exc}",
                             HTTPStatus.INTERNAL_SERVER_ERROR)
        else:
            self._send(response)

    def _handle_campaign(self, message: dict) -> dict:
        require_fields(message, ["config"], context="campaign submission")
        try:
            campaign_id = self.server.coordinator.submit(message["config"])
        except FleetError:
            raise
        except Exception as exc:
            # CampaignConfigError and friends are the submitter's problem,
            # not an internal error: surface them as protocol-level 400s.
            raise FleetProtocolError(f"campaign config rejected: {exc}") from None
        return envelope(campaign_id=campaign_id)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        coordinator = self.server.coordinator
        path, _, query = self.path.partition("?")
        if path == "/fleet/status":
            self._send(coordinator.status())
        elif path == "/fleet/records":
            params = dict(pair.partition("=")[::2]
                          for pair in query.split("&") if pair)
            campaign_id = params.get("campaign", "")
            try:
                text = coordinator.records_text(campaign_id)
            except FleetError as exc:
                self._send_error(str(exc), HTTPStatus.NOT_FOUND)
                return
            body = text.encode("utf-8")
            self.send_response(HTTPStatus.OK)
            self.send_header("Content-Type",
                             "application/jsonl; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_error(
                f"unknown endpoint {path}: try /fleet/status or "
                f"/fleet/records?campaign=ID", HTTPStatus.NOT_FOUND)


class _FleetHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, coordinator: FleetCoordinator) -> None:
        super().__init__(address, _FleetHandler)
        self.coordinator = coordinator


class FleetServer:
    """Serves a :class:`FleetCoordinator` over HTTP from background threads.

    Binds loopback by default (a fleet coordinator on an external interface
    is an explicit operator decision, exactly like the watch dashboard); a
    sweeper thread expires lapsed leases even when no requests arrive.
    """

    def __init__(self, coordinator: FleetCoordinator, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.coordinator = coordinator
        self.host = host
        self.requested_port = port
        self._server: Optional[_FleetHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._sweeper: Optional[threading.Thread] = None
        self._closing = threading.Event()

    @property
    def port(self) -> int:
        if self._server is None:
            raise FleetError("fleet server is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FleetServer":
        if self._server is not None:
            raise FleetError("fleet server is already running")
        try:
            self._server = _FleetHTTPServer(
                (self.host, self.requested_port), self.coordinator)
        except OSError as exc:
            raise FleetError(
                f"cannot bind fleet server on {self.host}:"
                f"{self.requested_port}: {exc}") from None
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-fleet-server", daemon=True)
        self._thread.start()
        interval = max(0.1, min(1.0, self.coordinator.lease_ttl_s / 4))

        def sweep_loop() -> None:
            while not self._closing.wait(interval):
                self.coordinator.sweep()

        self._sweeper = threading.Thread(
            target=sweep_loop, name="repro-fleet-sweeper", daemon=True)
        self._sweeper.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._closing.set()
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._sweeper is not None:
            self._sweeper.join(timeout=5.0)
        self.coordinator.flush()
        self._server = None
        self._thread = None
        self._sweeper = None

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
