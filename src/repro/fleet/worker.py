"""The fleet worker agent behind ``repro-fi fleet-worker``.

A worker agent joins a coordinator, pulls shard leases, runs each shard
through the exact same :class:`~repro.engine.runner.CampaignEngine` a
single-host campaign uses (``--jobs``, ``--pooling``, ``--prefix-cache``,
``--batch``, ``--timeout``, ``--retries`` all compose unchanged — the fleet
adds a layer *above* the engine, not a different engine), and submits the
resulting records back. Because leases carry the campaign's declarative
config dict and the compiled plan is deterministic, every worker derives the
exact same spec identities from the same wire bytes — that is what makes
idempotent, identity-keyed result merging possible.

Failure behavior, by design:

* **Coordinator unreachable** (restart, network blip): operations back off
  and retry for ``offline_grace_s``; only a grace-window overrun is fatal.
  A coordinator that comes back with empty state answers ``rejoin`` and the
  agent simply registers again — in-flight shard results are still
  submitted (the coordinator accepts records regardless of registration;
  dedup makes that safe).
* **Lease revoked** (expired while this agent was slow, or stolen): the
  agent finishes the shard anyway and submits; the coordinator's
  identity-keyed merge collapses the duplicate work to one record set.
  Abandoning mid-engine would forfeit real progress for no correctness
  gain.
* **Worker death** (crash, SIGKILL): nothing to do here — the lease TTL
  lapses on the coordinator and the shard is requeued for someone else.

A background thread heartbeats every ``heartbeat_interval_s`` the
coordinator asked for, carrying per-lease progress so the coordinator's
steal rule can tell *slow-but-working* holders from stuck ones.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import CampaignConfig
from repro.core.plan import TestPlan
from repro.core.recording import ExperimentRecord
from repro.engine.runner import CampaignEngine
from repro.errors import (
    FleetError,
    FleetProtocolError,
    FleetUnavailableError,
)
from repro.fleet.protocol import FleetClient

#: Initial retry delay when the coordinator is unreachable; doubles per
#: attempt up to the cap.
_RETRY_BASE_S = 0.5
_RETRY_CAP_S = 5.0


def default_host_name() -> str:
    """This agent's host label: hostname, pid-qualified for local fleets."""
    return f"{socket.gethostname()}-{os.getpid()}"


class FleetWorkerAgent:
    """One worker: join, lease, execute, submit — until done or told to stop.

    Engine options default to whatever the campaign config (relayed in each
    lease) asks for; constructor arguments override per-worker, exactly like
    CLI flags override a config in a single-host run.
    """

    def __init__(self, base_url: str, *,
                 host: Optional[str] = None,
                 jobs: int = 1,
                 pooling: bool = False,
                 prefix_cache: Optional[bool] = None,
                 batch: Optional[bool] = None,
                 batch_size: Optional[int] = None,
                 chunk_size: "int | str | None" = None,
                 timeout_s: Optional[float] = None,
                 retries: Optional[int] = None,
                 max_worker_restarts: Optional[int] = None,
                 sut: Optional[str] = None,
                 poll_s: float = 1.0,
                 offline_grace_s: float = 60.0,
                 until_done: bool = True,
                 max_shards: Optional[int] = None,
                 client: Optional[FleetClient] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.client = client if client is not None else FleetClient(base_url)
        self.host = host or default_host_name()
        self.jobs = jobs
        self.pooling = pooling
        self.prefix_cache = prefix_cache
        self.batch = batch
        self.batch_size = batch_size
        self.chunk_size = chunk_size
        self.timeout_s = timeout_s
        self.retries = retries
        self.max_worker_restarts = max_worker_restarts
        self.sut = sut
        self.poll_s = poll_s
        self.offline_grace_s = offline_grace_s
        self.until_done = until_done
        self.max_shards = max_shards
        self.log = log
        self.host_id: Optional[str] = None
        self.heartbeat_interval_s = 1.0
        #: Shards executed and records merged/deduplicated, for the summary.
        self.stats: Dict[str, int] = {
            "shards": 0, "records": 0, "merged": 0, "duplicates": 0,
        }
        #: campaign_id → (config, identity → spec) cache; configs repeat
        #: across leases of the same campaign, compiling is not free.
        self._campaigns: Dict[str, Tuple[CampaignConfig, dict]] = {}
        #: lease_id → completed count, read by the heartbeat thread.
        self._progress: Dict[str, int] = {}
        self._progress_lock = threading.Lock()
        self._stop = threading.Event()

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(f"[{self.host}] {message}")

    # -- resilient calls ----------------------------------------------------------------

    def _with_retry(self, what: str, call: Callable[[], dict]) -> dict:
        """Run one coordinator call, retrying through unreachability.

        Only :class:`FleetUnavailableError` retries — and only within the
        offline grace window. Every other :class:`FleetError` (protocol
        mismatch, rejected submission) means retrying would not help.
        """
        deadline = time.monotonic() + self.offline_grace_s
        delay = _RETRY_BASE_S
        while True:
            try:
                return call()
            except FleetUnavailableError as exc:
                if self._stop.is_set() or time.monotonic() >= deadline:
                    raise FleetError(
                        f"{what}: coordinator unreachable for more than "
                        f"{self.offline_grace_s:g} s ({exc})") from None
                self._say(f"{what}: {exc}; retrying in {delay:g} s")
                time.sleep(delay)
                delay = min(_RETRY_CAP_S, delay * 2)

    # -- lifecycle ----------------------------------------------------------------------

    def _join(self) -> None:
        response = self._with_retry(
            "join", lambda: self.client.join(host=self.host, pid=os.getpid()))
        self.host_id = response["host_id"]
        self.heartbeat_interval_s = float(response["heartbeat_interval_s"])
        if response.get("quarantined"):
            self._say("joined, but this host name is quarantined; the "
                      "coordinator will grant it no leases")
        self._say(f"joined as {self.host_id} "
                  f"(lease TTL {response['lease_ttl_s']:g} s, heartbeat "
                  f"every {self.heartbeat_interval_s:g} s)")

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval_s):
            host_id = self.host_id
            if host_id is None:
                continue
            with self._progress_lock:
                leases = {lease_id: {"completed": completed}
                          for lease_id, completed in self._progress.items()}
            try:
                response = self.client.heartbeat(host_id=host_id,
                                                 leases=leases)
            except FleetError:
                # Liveness is best-effort; the lease/submit paths own
                # retries and rejoin. A missed heartbeat costs TTL slack.
                continue
            for lease_id in response.get("revoked", []):
                if lease_id in leases:
                    self._say(f"lease {lease_id} revoked by coordinator "
                              f"(expired or stolen); finishing and "
                              f"submitting anyway — dedup makes it safe")

    # -- shard execution ----------------------------------------------------------------

    def _campaign(self, campaign_id: str,
                  config_dict: dict) -> Tuple[CampaignConfig, dict]:
        cached = self._campaigns.get(campaign_id)
        if cached is not None:
            return cached
        config = CampaignConfig.from_dict(config_dict)
        plan = config.compile()
        by_identity = {spec.identity(): spec for spec in plan}
        self._campaigns[campaign_id] = (config, by_identity)
        return self._campaigns[campaign_id]

    def _pick(self, ours, config_value):
        return ours if ours is not None else config_value

    def _execute(self, lease: dict) -> List[dict]:
        """Run one leased shard through the engine; returns record dicts."""
        campaign_id = lease["campaign_id"]
        config, by_identity = self._campaign(campaign_id, lease["config"])
        specs = []
        for identity in lease["spec_ids"]:
            spec = by_identity.get(identity)
            if spec is None:
                raise FleetProtocolError(
                    f"lease {lease['lease_id']}: spec identity {identity} "
                    f"is not in the compiled plan for campaign "
                    f"{campaign_id!r} — coordinator and worker disagree "
                    f"about the campaign (mixed code versions?)")
            specs.append(spec)
        sub_plan = TestPlan(
            name=f"{config.name}@{lease['shard_id']}", specs=specs)
        identity_by_name = {spec.name: identity
                            for spec, identity in zip(specs,
                                                      lease["spec_ids"])}
        engine_opts = lease.get("engine") or {}
        lease_id = lease["lease_id"]
        with self._progress_lock:
            self._progress[lease_id] = 0

        def progress(snapshot, result) -> None:
            with self._progress_lock:
                if lease_id in self._progress:
                    self._progress[lease_id] += 1

        try:
            engine = CampaignEngine(
                sub_plan,
                jobs=self.jobs,
                sut_factory=config.sut_factory(override=self.sut),
                classifier=config.build_classifier(),
                pooling=self.pooling,
                prefix_cache=self._pick(self.prefix_cache,
                                        bool(engine_opts.get("prefix_cache"))),
                batch=self._pick(self.batch, bool(engine_opts.get("batch"))),
                batch_size=self._pick(self.batch_size,
                                      engine_opts.get("batch_size")),
                chunk_size=self._pick(self.chunk_size,
                                      engine_opts.get("chunk_size")),
                timeout_s=self._pick(self.timeout_s,
                                     engine_opts.get("timeout_s")),
                retries=self._pick(self.retries, engine_opts.get("retries")),
                max_worker_restarts=self._pick(
                    self.max_worker_restarts,
                    engine_opts.get("max_worker_restarts")),
                progress=progress,
            )
            result = engine.run()
        finally:
            with self._progress_lock:
                self._progress.pop(lease_id, None)
        records: List[dict] = []
        for experiment in result.results:
            identity = identity_by_name.get(experiment.spec_name)
            if identity is None:          # pragma: no cover - defensive
                continue
            record = ExperimentRecord.from_result(experiment)
            record = replace(
                record, extras={**record.extras, "spec_id": identity})
            records.append(json.loads(record.to_json()))
        return records

    def _submit(self, lease: dict, records: List[dict]) -> None:
        response = self._with_retry(
            f"submit shard {lease['shard_id']}",
            lambda: self.client.submit_records(
                host_id=self.host_id or "",
                lease_id=lease["lease_id"],
                shard_id=lease["shard_id"],
                campaign_id=lease["campaign_id"],
                records=records,
            ))
        self.stats["shards"] += 1
        self.stats["records"] += len(records)
        self.stats["merged"] += int(response.get("merged", 0))
        self.stats["duplicates"] += int(response.get("duplicates", 0))
        self._say(f"shard {lease['shard_id']}: submitted {len(records)} "
                  f"record(s), {response.get('merged', 0)} merged, "
                  f"{response.get('duplicates', 0)} duplicate(s)")

    # -- main loop ----------------------------------------------------------------------

    def stop(self) -> None:
        """Ask the agent to wind down after its current operation."""
        self._stop.set()

    def run(self) -> Dict[str, int]:
        """Work until the fleet is done (or :meth:`stop`); returns stats."""
        self._join()
        heartbeat = threading.Thread(target=self._heartbeat_loop,
                                     name="repro-fleet-heartbeat",
                                     daemon=True)
        heartbeat.start()
        try:
            while not self._stop.is_set():
                response = self._with_retry(
                    "lease",
                    lambda: self.client.lease(host_id=self.host_id or ""))
                lease = response.get("lease")
                if lease is None:
                    state = response.get("state")
                    if state == "rejoin":
                        self._say("coordinator does not know this host "
                                  "(restarted?); rejoining")
                        self._join()
                        continue
                    if state == "done":
                        if self.until_done:
                            self._say("fleet reports all campaigns done")
                            break
                        if self._stop.wait(self.poll_s):
                            break
                        continue
                    # "wait": work exists but none is offerable right now.
                    if self._stop.wait(self.poll_s):
                        break
                    continue
                self._say(f"leased shard {lease['shard_id']} "
                          f"({len(lease['spec_ids'])} spec(s)) of "
                          f"{lease['campaign_id']}")
                records = self._execute(lease)
                self._submit(lease, records)
                if (self.max_shards is not None
                        and self.stats["shards"] >= self.max_shards):
                    self._say(f"reached --max-shards={self.max_shards}")
                    break
        finally:
            self._stop.set()
            heartbeat.join(timeout=self.heartbeat_interval_s + 2.0)
        return dict(self.stats)
