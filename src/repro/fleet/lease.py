"""Leases, shard states, and host bookkeeping for the fleet coordinator.

The coordinator never *pushes* work: workers pull shard **leases**, each with
a TTL renewed by heartbeats. Everything that makes the fleet robust is a rule
of this table:

* a lease not renewed within its TTL **expires**: the shard returns to the
  queue with exponential backoff (so a shard that keeps killing its hosts
  does not hot-loop), and the loss is charged to the host;
* a host that loses the *same* shard repeatedly is **quarantined** — it can
  keep heartbeating, but it is granted no further leases (the PR-7 intuition:
  persistent offenders are set aside so the campaign completes without them);
* an idle worker may **steal** a shard from a slow holder: when nothing is
  pending, a lease past its steal age whose holder has reported no progress
  is revoked and re-granted. The old holder learns via its next heartbeat
  response; if both finish anyway, idempotent submission merges the
  duplicates away.

The table is deliberately free of I/O and wall-clock reads — the caller
injects ``now`` everywhere — so every rule is unit-testable without sleeping.
All mutation happens under the coordinator's lock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.scheduler import PlanShard

#: Base/odometer of the exponential requeue backoff (seconds).
DEFAULT_BACKOFF_S = 1.0
DEFAULT_BACKOFF_CAP_S = 30.0

#: How many times one host may lose the same shard before quarantine.
DEFAULT_HOST_FAILURE_LIMIT = 2

#: Shard states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"


@dataclass
class Lease:
    """One grant of one shard to one host, alive while heartbeats renew it."""

    lease_id: str
    shard_id: str
    campaign_id: str
    host_id: str
    host: str
    granted_ts: float
    expires_ts: float
    #: Experiments the holder reported complete in its last heartbeat; a
    #: shard whose holder never reports progress is the steal candidate.
    completed: int = 0

    def to_dict(self) -> dict:
        return {
            "lease_id": self.lease_id,
            "shard_id": self.shard_id,
            "campaign_id": self.campaign_id,
            "host_id": self.host_id,
            "host": self.host,
            "granted_ts": self.granted_ts,
            "expires_ts": self.expires_ts,
            "completed": self.completed,
        }


@dataclass
class ShardEntry:
    """One lease unit: a shard plus its scheduling state."""

    shard: PlanShard
    campaign_id: str
    state: str = PENDING
    lease: Optional[Lease] = None
    #: How many leases of this shard were lost (expiry or steal-abandon).
    failures: int = 0
    #: Earliest time the shard may be offered again (requeue backoff).
    next_offer_ts: float = 0.0

    @property
    def shard_id(self) -> str:
        return self.shard.shard_id

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "campaign_id": self.campaign_id,
            "specs": len(self.shard),
            "state": self.state,
            "failures": self.failures,
            "lease": self.lease.to_dict() if self.lease else None,
        }


@dataclass
class HostInfo:
    """One registered worker agent."""

    host_id: str
    host: str
    pid: int
    joined_ts: float
    last_seen_ts: float
    quarantined: bool = False
    shards_done: int = 0
    #: Lost-lease count per shard id — the quarantine trigger counts how
    #: often this *host* failed one *shard*, so a bad shard (poisonous work)
    #: is distinguishable from a bad host (flaky machine) downstream.
    shard_failures: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "host_id": self.host_id,
            "host": self.host,
            "pid": self.pid,
            "joined_ts": self.joined_ts,
            "last_seen_ts": self.last_seen_ts,
            "quarantined": self.quarantined,
            "shards_done": self.shards_done,
            "failures": sum(self.shard_failures.values()),
        }


class LeaseTable:
    """Shard queue + lease lifecycle. All methods take an explicit ``now``."""

    def __init__(self, *,
                 lease_ttl_s: float,
                 steal_after_s: Optional[float] = None,
                 backoff_s: float = DEFAULT_BACKOFF_S,
                 backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
                 host_failure_limit: int = DEFAULT_HOST_FAILURE_LIMIT) -> None:
        self.lease_ttl_s = lease_ttl_s
        #: A leased shard older than this with zero reported progress is
        #: stealable by an otherwise-idle host. Defaults to the TTL: a
        #: healthy holder has heartbeated by then, so stealing only hits
        #: holders that are alive-but-stuck.
        self.steal_after_s = (steal_after_s if steal_after_s is not None
                              else lease_ttl_s)
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.host_failure_limit = host_failure_limit
        self._shards: Dict[str, ShardEntry] = {}
        self._order: List[str] = []
        self._leases: Dict[str, Lease] = {}
        #: lease_id → reason, reported (once) to the holder via heartbeat.
        self._revoked: Dict[str, str] = {}
        self._hosts: Dict[str, HostInfo] = {}
        self._lease_counter = itertools.count(1)
        self._host_counter = itertools.count(1)

    # -- hosts --------------------------------------------------------------------------

    def join(self, *, host: str, pid: int, now: float) -> HostInfo:
        """Register a worker agent; repeatable (a rejoin gets a fresh id).

        Quarantine keys on the host *name*, so a quarantined host cannot
        launder itself by rejoining under a new id.
        """
        host_id = f"h{next(self._host_counter):04d}"
        info = HostInfo(host_id=host_id, host=host, pid=pid,
                        joined_ts=now, last_seen_ts=now,
                        quarantined=self._name_quarantined(host))
        self._hosts[host_id] = info
        return info

    def _name_quarantined(self, host: str) -> bool:
        return any(entry.quarantined and entry.host == host
                   for entry in self._hosts.values())

    def host(self, host_id: str) -> Optional[HostInfo]:
        return self._hosts.get(host_id)

    def hosts(self) -> List[HostInfo]:
        return [self._hosts[key] for key in sorted(self._hosts)]

    def touch(self, host_id: str, now: float) -> Optional[HostInfo]:
        info = self._hosts.get(host_id)
        if info is not None:
            info.last_seen_ts = now
        return info

    # -- shards -------------------------------------------------------------------------

    def add_shards(self, campaign_id: str,
                   shards: List[PlanShard]) -> None:
        for shard in shards:
            entry = ShardEntry(shard=shard, campaign_id=campaign_id)
            self._shards[shard.shard_id] = entry
            self._order.append(shard.shard_id)

    def shard(self, shard_id: str) -> Optional[ShardEntry]:
        return self._shards.get(shard_id)

    def shards(self) -> List[ShardEntry]:
        return [self._shards[key] for key in self._order]

    def campaign_done(self, campaign_id: str) -> bool:
        return all(entry.state == DONE
                   for entry in self._shards.values()
                   if entry.campaign_id == campaign_id)

    def all_done(self) -> bool:
        # An empty table is *idle*, not done: workers routinely join before
        # the first campaign is submitted, and a vacuous "done" would send
        # every --until-done agent home while the fleet is still forming.
        return bool(self._shards) and all(
            entry.state == DONE for entry in self._shards.values())

    # -- granting -----------------------------------------------------------------------

    def grant(self, host_id: str, now: float
              ) -> Tuple[Optional[Lease], Optional[str], str]:
        """Try to lease a shard to ``host_id``.

        Returns ``(lease, stolen_from_host, state)``: a fresh lease (with
        the host it was stolen from, if it was), or ``(None, None, state)``
        where ``state`` is ``done`` (nothing left anywhere) or ``wait``
        (work exists but none is offerable to this host right now).
        """
        info = self._hosts.get(host_id)
        if info is None or info.quarantined:
            return None, None, "done" if self.all_done() else "wait"
        # First choice: a pending shard whose backoff has elapsed, in
        # submission order — deterministic given the same request sequence.
        for shard_id in self._order:
            entry = self._shards[shard_id]
            if entry.state == PENDING and entry.next_offer_ts <= now:
                return self._grant_entry(entry, info, now), None, "leased"
        if self.all_done():
            return None, None, "done"
        # Nothing pending: steal from a slow holder. A candidate lease is
        # past the steal age, has reported zero progress, and belongs to a
        # different host (stealing your own shard is a no-op).
        for shard_id in self._order:
            entry = self._shards[shard_id]
            lease = entry.lease
            if (entry.state == LEASED and lease is not None
                    and lease.host_id != host_id
                    and lease.completed == 0
                    and now - lease.granted_ts >= self.steal_after_s):
                stolen_from = lease.host
                self._revoke(lease, reason="stolen")
                return self._grant_entry(entry, info, now), stolen_from, "leased"
        return None, None, "wait"

    def _grant_entry(self, entry: ShardEntry, info: HostInfo,
                     now: float) -> Lease:
        lease = Lease(
            lease_id=f"l{next(self._lease_counter):06d}",
            shard_id=entry.shard_id,
            campaign_id=entry.campaign_id,
            host_id=info.host_id,
            host=info.host,
            granted_ts=now,
            expires_ts=now + self.lease_ttl_s,
        )
        entry.state = LEASED
        entry.lease = lease
        self._leases[lease.lease_id] = lease
        return lease

    def _revoke(self, lease: Lease, *, reason: str) -> None:
        self._leases.pop(lease.lease_id, None)
        self._revoked[lease.lease_id] = reason

    # -- heartbeats ---------------------------------------------------------------------

    def renew(self, host_id: str, leases: Dict[str, dict],
              now: float) -> List[str]:
        """Renew the named leases; returns the ids no longer honored.

        Progress (``completed``) reported alongside each lease id feeds the
        steal rule: a holder that reports progress is slow-but-working and
        keeps its shard.
        """
        revoked: List[str] = []
        for lease_id, progress in leases.items():
            lease = self._leases.get(lease_id)
            if lease is None or lease.host_id != host_id:
                # Expired, stolen, or plain unknown: report it (once).
                self._revoked.pop(lease_id, None)
                revoked.append(lease_id)
                continue
            lease.expires_ts = now + self.lease_ttl_s
            completed = progress.get("completed", 0) if isinstance(
                progress, dict) else 0
            if isinstance(completed, int) and not isinstance(completed, bool):
                lease.completed = max(lease.completed, completed)
        return revoked

    # -- expiry sweep -------------------------------------------------------------------

    def expire(self, now: float) -> List[Lease]:
        """Requeue every shard whose lease TTL has lapsed.

        The shard returns to ``pending`` with exponential backoff
        (``backoff_s * 2^(failures-1)``, capped), the loss is charged to the
        holding host, and hosts that hit the per-shard failure limit are
        quarantined. Returns the expired leases for event emission.
        """
        expired: List[Lease] = []
        for entry in self._shards.values():
            lease = entry.lease
            if entry.state != LEASED or lease is None:
                continue
            if lease.expires_ts > now:
                continue
            expired.append(lease)
            self._revoke(lease, reason="expired")
            entry.lease = None
            entry.state = PENDING
            entry.failures += 1
            delay = min(self.backoff_cap_s,
                        self.backoff_s * (2 ** (entry.failures - 1)))
            entry.next_offer_ts = now + delay
            self._charge_failure(lease, entry)
        return expired

    def _charge_failure(self, lease: Lease, entry: ShardEntry) -> None:
        info = self._hosts.get(lease.host_id)
        if info is None:
            return
        count = info.shard_failures.get(entry.shard_id, 0) + 1
        info.shard_failures[entry.shard_id] = count
        if count >= self.host_failure_limit and not info.quarantined:
            # Quarantine every registration of the name, present and future.
            for other in self._hosts.values():
                if other.host == info.host:
                    other.quarantined = True

    def quarantined_hosts(self) -> List[HostInfo]:
        return [info for info in self.hosts() if info.quarantined]

    # -- completion ---------------------------------------------------------------------

    def complete(self, shard_id: str, *,
                 host_id: Optional[str] = None) -> Optional[Lease]:
        """Mark a shard done; returns the lease that was holding it, if any.

        Succeeds regardless of who submitted — results are results, even
        from a lease that expired mid-flight (the records are deduplicated
        upstream). A successful completion clears the submitting host's
        failure history for the shard: the shard was not poisonous after
        all, just slow.
        """
        entry = self._shards.get(shard_id)
        if entry is None:
            return None
        lease = entry.lease
        entry.state = DONE
        entry.lease = None
        entry.next_offer_ts = 0.0
        if lease is not None:
            self._leases.pop(lease.lease_id, None)
            self._revoked.pop(lease.lease_id, None)
        if host_id is not None:
            info = self._hosts.get(host_id)
            if info is not None:
                info.shards_done += 1
                info.shard_failures.pop(shard_id, None)
        return lease

    def lease_for(self, lease_id: str) -> Optional[Lease]:
        return self._leases.get(lease_id)

    # -- views --------------------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        counts = {PENDING: 0, LEASED: 0, DONE: 0}
        for entry in self._shards.values():
            counts[entry.state] += 1
        return counts
