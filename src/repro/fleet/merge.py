"""Cross-host record merge, deduplicated by spec identity.

The fleet's delivery guarantee is *at-least-once*: a worker retries a
submission whose response was lost, a stolen shard may finish on two hosts,
a resumed coordinator may receive work it already has. What makes that safe
is this merge: records are keyed on spec identity (the
``extras["spec_id"]`` stamp the engine's checkpoint layer writes; records
without a stamp fall back to the ``(spec_name, seed, scenario)`` triple) and
duplicates collapse to one record — **provided they are byte-identical**
once canonicalized. Since execution is seed-deterministic, a true duplicate
always is; two records sharing an identity but differing in payload mean
different campaign definitions or code versions produced them, and merging
would silently corrupt the result — that is a hard
:class:`~repro.errors.MergeConflictError`.

:func:`merge_stores` is the streaming file-level merge behind
``repro-fi merge`` (the manual escape hatch for collecting results from
hosts by hand); the coordinator's in-process merge shares
:func:`record_key` and :func:`canonical_json` so both paths agree on what
"the same record" means.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.core.recording import ExperimentRecord, RecordStore
from repro.errors import MergeConflictError


def record_key(record: ExperimentRecord) -> str:
    """The dedup key: the identity stamp, or the legacy triple."""
    spec_id = record.spec_id
    if spec_id is not None:
        return f"id:{spec_id}"
    return f"triple:{record.spec_name}|{record.seed}|{record.scenario}"


def canonical_json(record: ExperimentRecord) -> str:
    """The record's canonical serialization (sorted keys, one line).

    Two records are *the same* exactly when their canonical lines match —
    whitespace or key-order differences between stores never count as
    conflicts, real payload differences always do.
    """
    return record.to_json()


@dataclass
class MergeStats:
    """What one merge did, for the CLI summary."""

    inputs: int = 0
    read: int = 0
    written: int = 0
    duplicates: int = 0
    per_input: List[Tuple[str, int]] = field(default_factory=list)


def merge_stores(paths: Iterable["str | Path"], output: "str | Path",
                 ) -> MergeStats:
    """Stream-merge record stores into ``output``, deduped by identity.

    Records stream file by file, line by line — memory holds one record
    plus a digest per distinct identity, so arbitrarily large stores merge
    in a small footprint. Output order is first-appearance order across the
    inputs in argument order (merging a single store is the identity
    operation). The output is written atomically (temp file + fsync +
    rename, the same path checkpoints use), so a crashed merge never leaves
    a half-written file behind.

    Raises :class:`~repro.errors.MergeConflictError` on the first identity
    whose payloads disagree, naming the identity and both files.
    """
    paths = [Path(path) for path in paths]
    output = Path(output)
    seen: Dict[str, Tuple[str, str]] = {}
    stats = MergeStats(inputs=len(paths))

    def merged_records():
        for path in paths:
            store = RecordStore(path)
            count = 0
            for record in store.iter_records():
                stats.read += 1
                count += 1
                key = record_key(record)
                line = canonical_json(record)
                digest = hashlib.sha256(line.encode("utf-8")).hexdigest()
                previous = seen.get(key)
                if previous is not None:
                    previous_digest, previous_path = previous
                    if previous_digest != digest:
                        raise MergeConflictError(
                            f"records disagree for {key}: {path} holds a "
                            f"different payload than {previous_path} — same "
                            f"spec identity must mean a byte-identical "
                            f"record (deterministic re-execution); these "
                            f"stores came from different campaign "
                            f"definitions or code versions"
                        )
                    stats.duplicates += 1
                    continue
                seen[key] = (digest, str(path))
                stats.written += 1
                yield record
            stats.per_input.append((str(path), count))

    try:
        RecordStore(output).replace_all(merged_records())
    except Exception:
        # A conflict (or malformed input) aborts mid-write; the atomic
        # rename never happened, so only the temp file needs removing.
        tmp = output.with_name(output.name + ".tmp")
        tmp.unlink(missing_ok=True)
        raise
    return stats
