"""Discrete-event simulation clock.

All components of the simulated board share a single :class:`SimulationClock`.
Time is expressed in seconds as a float. Components can register periodic or
one-shot callbacks; callbacks fire, in timestamp order, when the clock is
advanced past their due time. The clock never moves backwards.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True, slots=True)
class _ScheduledEvent:
    due: float
    sequence: int
    callback: Callable[[float], None] = field(compare=False)
    period: Optional[float] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`SimulationClock.schedule` used to cancel events."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (periodic events stop rescheduling)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def due(self) -> float:
        """Simulated time at which the event will next fire."""
        return self._event.due


class SimulationClock:
    """Monotonic simulated clock with scheduled callbacks.

    Parameters
    ----------
    start:
        Initial simulated time in seconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._events: list[_ScheduledEvent] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[[float], None],
        *,
        period: Optional[float] = None,
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        If ``period`` is given the callback re-arms itself every ``period``
        seconds after the first firing. The callback receives the simulated
        time at which it fires.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if period is not None and period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        event = _ScheduledEvent(
            due=self._now + delay,
            sequence=next(self._counter),
            callback=callback,
            period=period,
        )
        heapq.heappush(self._events, event)
        return EventHandle(event)

    def advance(self, duration: float) -> int:
        """Advance simulated time by ``duration`` seconds, firing due events.

        Returns the number of callbacks that fired. Events scheduled by
        callbacks during the advance are honored if they fall inside the
        window being advanced over.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        target = self._now + duration
        fired = 0
        events = self._events
        heappop = heapq.heappop
        heappush = heapq.heappush
        while events and events[0].due <= target:
            event = heappop(events)
            if event.cancelled:
                continue
            if event.due > self._now:
                self._now = event.due
            event.callback(self._now)
            fired += 1
            if event.period is not None and not event.cancelled:
                event.due = self._now + event.period
                event.sequence = next(self._counter)
                heappush(events, event)
        self._now = target
        return fired

    def pending_events(self) -> int:
        """Number of scheduled events that have not been cancelled."""
        return sum(1 for event in self._events if not event.cancelled)

    def cancel_all(self) -> None:
        """Cancel every scheduled event (used on board reset)."""
        for event in self._events:
            event.cancelled = True
        self._events.clear()

    def reset_to(self, now: float) -> None:
        """Cancel every event and move the clock to ``now`` (snapshot restore).

        Components that had events scheduled (the per-CPU timers) re-schedule
        themselves from their own restored state afterwards.
        """
        self.cancel_all()
        self._now = float(now)
