"""Banana Pi M1 board model.

The paper's testbed is a Banana Pi (Allwinner A20 SoC: dual-core Cortex-A7,
1 GB DRAM, UART console, GIC-400, per-CPU timers, GPIO LED). This module
assembles the hardware substrate: CPU cores, the physical memory map, the
interrupt controller, the serial console, timers, and the onboard LED.

The physical addresses follow the real A20 memory map (DRAM at 0x4000_0000,
UART0 at 0x01C2_8000, GIC at 0x01C8_0000, PIO at 0x01C2_0800) so cell
configurations read like genuine Jailhouse configs for this board.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import HardwareError
from repro.hw.clock import SimulationClock
from repro.hw.cpu import CpuCore
from repro.hw.gic import Gic
from repro.hw.gpio import GpioController, Led
from repro.hw.memory import MemoryFlags, MemoryRegion, PhysicalMemory
from repro.hw.timer import GenericTimer, VIRTUAL_TIMER_PPI
from repro.hw.uart import Uart

# -- A20 / Banana Pi physical memory layout -----------------------------------

DRAM_BASE = 0x4000_0000
DRAM_SIZE = 1 << 30          # 1 GB
SRAM_BASE = 0x0000_0000
SRAM_SIZE = 0x0001_0000      # 64 KB boot SRAM
UART0_BASE = 0x01C2_8000
UART0_SIZE = 0x400
GIC_BASE = 0x01C8_0000
GIC_SIZE = 0x8000
PIO_BASE = 0x01C2_0800
PIO_SIZE = 0x400

#: SPI id used by UART0 on the A20.
UART0_IRQ = 33
#: GPIO pin wired to the onboard green LED on the Banana Pi.
LED_PIN = 24


@dataclass(frozen=True)
class BoardConfig:
    """Configuration knobs of the simulated board."""

    num_cpus: int = 2
    dram_base: int = DRAM_BASE
    dram_size: int = DRAM_SIZE
    timer_period: float = 0.010   # 100 Hz tick, as configured by the guests
    name: str = "banana-pi-m1"

    def validate(self) -> None:
        if self.num_cpus <= 0:
            raise HardwareError("board needs at least one CPU")
        if self.dram_size <= 0:
            raise HardwareError("DRAM size must be positive")
        if self.timer_period <= 0:
            raise HardwareError("timer period must be positive")


class BananaPiBoard:
    """The full simulated board."""

    def __init__(self, config: Optional[BoardConfig] = None) -> None:
        self.config = config or BoardConfig()
        self.config.validate()
        self.clock = SimulationClock()
        self.cpus: List[CpuCore] = [
            CpuCore(cpu_id) for cpu_id in range(self.config.num_cpus)
        ]
        self.memory = PhysicalMemory(self._build_memory_map())
        self.gic = Gic(self.config.num_cpus)
        self.uart = Uart("uart0", clock=lambda: self.clock.now)
        self.memory.attach_mmio("uart0", self.uart)
        self.gpio = GpioController(num_pins=32, clock=lambda: self.clock.now)
        self.led = Led(self.gpio, LED_PIN, name="green-led")
        self.timers: List[GenericTimer] = [
            GenericTimer(cpu_id, self.clock, self.gic)
            for cpu_id in range(self.config.num_cpus)
        ]
        self._configure_interrupts()

    def _build_memory_map(self) -> List[MemoryRegion]:
        return [
            MemoryRegion("boot-sram", SRAM_BASE, SRAM_SIZE, MemoryFlags.RWX),
            MemoryRegion("pio", PIO_BASE, PIO_SIZE, MemoryFlags.RW | MemoryFlags.IO),
            MemoryRegion("uart0", UART0_BASE, UART0_SIZE,
                         MemoryFlags.RW | MemoryFlags.IO),
            MemoryRegion("gic", GIC_BASE, GIC_SIZE,
                         MemoryFlags.RW | MemoryFlags.IO),
            MemoryRegion("dram", self.config.dram_base, self.config.dram_size,
                         MemoryFlags.RWX),
        ]

    def _configure_interrupts(self) -> None:
        self.gic.enable_irq(VIRTUAL_TIMER_PPI, priority=0x20)
        self.gic.enable_irq(UART0_IRQ, priority=0xA0, targets={0})

    # -- lifecycle -------------------------------------------------------------

    def power_on(self) -> None:
        """Cold boot: CPU 0 comes online at the DRAM base, others stay offline."""
        self.cpus[0].power_on(entry_point=self.config.dram_base)
        for timer in self.timers:
            timer.start(self.config.timer_period)

    def reset(self) -> None:
        """Full board reset: CPUs offline, timers stopped, captures cleared."""
        for cpu in self.cpus:
            cpu.reset()
        for timer in self.timers:
            timer.stop()
        self.clock.cancel_all()
        self.gic.clear_pending()
        self.uart.clear()
        self.gpio.clear_history()

    # -- snapshot / restore --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture the whole board: clock phase, CPUs, RAM pages, devices."""
        return {
            "now": self.clock.now,
            "cpus": [cpu.snapshot_state() for cpu in self.cpus],
            "memory": self.memory.snapshot_state(),
            "gic": self.gic.snapshot_state(),
            "uart": self.uart.snapshot_state(),
            "gpio": self.gpio.snapshot_state(),
            "timers": [timer.snapshot_state() for timer in self.timers],
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place.

        The clock is reset first (cancelling every scheduled event), then the
        timers re-arm themselves from their snapshotted phase — the per-CPU
        generic timers are the only components that schedule clock events.
        """
        self.clock.reset_to(state["now"])
        for cpu, cpu_state in zip(self.cpus, state["cpus"]):
            cpu.restore_state(cpu_state)
        self.memory.restore_state(state["memory"])
        self.gic.restore_state(state["gic"])
        self.uart.restore_state(state["uart"])
        self.gpio.restore_state(state["gpio"])
        for timer, timer_state in zip(self.timers, state["timers"]):
            timer.restore_state(timer_state)

    # -- helpers -----------------------------------------------------------------

    def cpu(self, cpu_id: int) -> CpuCore:
        """Return the core with id ``cpu_id``."""
        if not 0 <= cpu_id < len(self.cpus):
            raise HardwareError(f"no CPU with id {cpu_id}")
        return self.cpus[cpu_id]

    @property
    def num_cpus(self) -> int:
        return len(self.cpus)

    @property
    def dram(self) -> MemoryRegion:
        region = self.memory.find_region_by_name("dram")
        assert region is not None
        return region

    def online_cpus(self) -> Tuple[int, ...]:
        return tuple(cpu.cpu_id for cpu in self.cpus if cpu.is_executing)

    def parked_cpus(self) -> Tuple[int, ...]:
        return tuple(cpu.cpu_id for cpu in self.cpus if cpu.is_parked)

    def advance(self, duration: float) -> int:
        """Advance the board clock (timers fire, interrupts become pending)."""
        return self.clock.advance(duration)

    def describe(self) -> str:
        """Render a human-readable board summary."""
        lines = [
            f"Board: {self.config.name}",
            f"CPUs : {self.num_cpus}x Cortex-A7 "
            f"(online: {list(self.online_cpus())}, parked: {list(self.parked_cpus())})",
            f"DRAM : {self.config.dram_size // (1 << 20)} MiB @ 0x{self.config.dram_base:08x}",
            "Memory map:",
        ]
        lines.extend("  " + line for line in self.memory.describe_map().splitlines())
        return "\n".join(lines)
