"""Simulated hardware substrate.

This subpackage models the testbed used by the paper — a Banana Pi M1 board
with a dual-core ARM Cortex-A7, 1 GB of DRAM, a UART serial console, a GIC
interrupt controller, per-CPU generic timers, and a GPIO-driven LED — at the
behavioral level needed by the fault-injection experiments: architectural
registers, CPU modes and exception entry, a physical memory map with
permissions, interrupt routing, and observable serial output.
"""

from repro.hw.board import BananaPiBoard, BoardConfig
from repro.hw.clock import SimulationClock
from repro.hw.cpu import CpuCore, CpuMode, CpuState
from repro.hw.gic import Gic, GicCpuInterface
from repro.hw.gpio import GpioController, Led
from repro.hw.memory import AccessType, MemoryFlags, MemoryRegion, PhysicalMemory
from repro.hw.registers import (
    Register,
    RegisterClass,
    RegisterFile,
    TrapContext,
    flip_bit,
)
from repro.hw.timer import GenericTimer
from repro.hw.uart import Uart, UartRecord

__all__ = [
    "AccessType",
    "BananaPiBoard",
    "BoardConfig",
    "CpuCore",
    "CpuMode",
    "CpuState",
    "GenericTimer",
    "Gic",
    "GicCpuInterface",
    "GpioController",
    "Led",
    "MemoryFlags",
    "MemoryRegion",
    "PhysicalMemory",
    "Register",
    "RegisterClass",
    "RegisterFile",
    "SimulationClock",
    "TrapContext",
    "Uart",
    "UartRecord",
    "flip_bit",
]
