"""ARMv7-A architectural register model.

The fault model used by the paper is a single (or multiple) bit flip on a
random *architectural register* captured in the trap context at the entry of a
hypervisor handler. This module models exactly that state: the sixteen core
registers (r0–r12, sp, lr, pc), the CPSR, and the HYP-mode syndrome/return
registers that the hypervisor reads (HSR, ELR_HYP, SPSR_HYP).

The register file is deliberately simple — a mapping from register name to a
32-bit unsigned value — but the *classification* of registers
(:class:`RegisterClass`) matters: the fault-propagation rules implemented by
the hypervisor and guest models depend on which class of register was
corrupted, mirroring how a real Cortex-A7 reacts (a corrupted PC faults at the
next fetch, a corrupted GPR usually stays benign, and so on).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import InvalidRegisterError

WORD_MASK = 0xFFFF_FFFF
WORD_BITS = 32


class Register(str, enum.Enum):
    """Names of the modeled ARMv7 registers."""

    R0 = "r0"
    R1 = "r1"
    R2 = "r2"
    R3 = "r3"
    R4 = "r4"
    R5 = "r5"
    R6 = "r6"
    R7 = "r7"
    R8 = "r8"
    R9 = "r9"
    R10 = "r10"
    R11 = "r11"
    R12 = "r12"
    SP = "sp"
    LR = "lr"
    PC = "pc"
    CPSR = "cpsr"
    # HYP-mode registers visible to the hypervisor trap handlers.
    HSR = "hsr"
    ELR_HYP = "elr_hyp"
    SPSR_HYP = "spsr_hyp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RegisterClass(enum.Enum):
    """Classes of registers with distinct fault-propagation behaviour."""

    GENERAL_PURPOSE = "gpr"
    STACK_POINTER = "sp"
    LINK_REGISTER = "lr"
    PROGRAM_COUNTER = "pc"
    STATUS = "status"
    SYNDROME = "syndrome"
    HYP_RETURN = "hyp_return"


#: Registers belonging to the guest-visible "architecture register" set used
#: by the paper's fault model (random register selection draws from these).
ARCHITECTURAL_REGISTERS: Tuple[Register, ...] = (
    Register.R0,
    Register.R1,
    Register.R2,
    Register.R3,
    Register.R4,
    Register.R5,
    Register.R6,
    Register.R7,
    Register.R8,
    Register.R9,
    Register.R10,
    Register.R11,
    Register.R12,
    Register.SP,
    Register.LR,
    Register.PC,
    Register.CPSR,
)

_ARCH_REGISTER_SET = frozenset(ARCHITECTURAL_REGISTERS)

_REGISTER_CLASSES: Dict[Register, RegisterClass] = {
    Register.SP: RegisterClass.STACK_POINTER,
    Register.LR: RegisterClass.LINK_REGISTER,
    Register.PC: RegisterClass.PROGRAM_COUNTER,
    Register.CPSR: RegisterClass.STATUS,
    Register.HSR: RegisterClass.SYNDROME,
    Register.ELR_HYP: RegisterClass.HYP_RETURN,
    Register.SPSR_HYP: RegisterClass.HYP_RETURN,
}
for _reg in ARCHITECTURAL_REGISTERS:
    _REGISTER_CLASSES.setdefault(_reg, RegisterClass.GENERAL_PURPOSE)


def register_class(register: Register) -> RegisterClass:
    """Return the :class:`RegisterClass` of ``register``."""
    return _REGISTER_CLASSES[register]


def registers_in_class(cls: RegisterClass) -> Tuple[Register, ...]:
    """Return every modeled register belonging to class ``cls``."""
    return tuple(reg for reg, c in _REGISTER_CLASSES.items() if c is cls)


def flip_bit(value: int, bit: int) -> int:
    """Return ``value`` with bit ``bit`` flipped (32-bit wrap)."""
    if not 0 <= bit < WORD_BITS:
        raise ValueError(f"bit index must be in [0, {WORD_BITS}), got {bit}")
    return (value ^ (1 << bit)) & WORD_MASK


# --- CPSR field helpers -----------------------------------------------------

CPSR_MODE_MASK = 0x1F
CPSR_THUMB_BIT = 5
CPSR_FIQ_DISABLE_BIT = 6
CPSR_IRQ_DISABLE_BIT = 7

#: Valid ARMv7 processor-mode encodings of the CPSR M[4:0] field.
VALID_CPSR_MODES: Dict[int, str] = {
    0b10000: "USR",
    0b10001: "FIQ",
    0b10010: "IRQ",
    0b10011: "SVC",
    0b10110: "MON",
    0b10111: "ABT",
    0b11010: "HYP",
    0b11011: "UND",
    0b11111: "SYS",
}

#: Modes a *guest* is allowed to return to. Returning to HYP or MON from a
#: guest context is an illegal exception return for the hypervisor.
GUEST_RETURNABLE_MODES = frozenset(
    mode for mode, name in VALID_CPSR_MODES.items() if name not in ("HYP", "MON")
)


def cpsr_mode(cpsr: int) -> int:
    """Extract the mode field M[4:0] from a CPSR value."""
    return cpsr & CPSR_MODE_MASK


def cpsr_mode_name(cpsr: int) -> Optional[str]:
    """Human-readable mode name, or ``None`` if the encoding is invalid."""
    return VALID_CPSR_MODES.get(cpsr_mode(cpsr))


def is_valid_guest_cpsr(cpsr: int) -> bool:
    """Whether an exception return to ``cpsr`` is legal for a guest context."""
    return cpsr_mode(cpsr) in GUEST_RETURNABLE_MODES


def make_cpsr(mode: int, *, thumb: bool = False, irq_masked: bool = False,
              fiq_masked: bool = False) -> int:
    """Build a CPSR value from its fields."""
    if mode not in VALID_CPSR_MODES:
        raise ValueError(f"invalid CPSR mode encoding 0b{mode:05b}")
    value = mode
    if thumb:
        value |= 1 << CPSR_THUMB_BIT
    if fiq_masked:
        value |= 1 << CPSR_FIQ_DISABLE_BIT
    if irq_masked:
        value |= 1 << CPSR_IRQ_DISABLE_BIT
    return value


class RegisterFile:
    """A mutable mapping of :class:`Register` to 32-bit values."""

    def __init__(self, initial: Optional[Dict[Register, int]] = None) -> None:
        self._values: Dict[Register, int] = {reg: 0 for reg in Register}
        self._values[Register.CPSR] = make_cpsr(0b10011)  # boot in SVC mode
        if initial:
            for reg, value in initial.items():
                self.write(reg, value)

    def read(self, register: Register) -> int:
        """Read a register value."""
        try:
            return self._values[register]
        except KeyError as exc:  # pragma: no cover - defensive
            raise InvalidRegisterError(f"unknown register {register!r}") from exc

    def write(self, register: Register, value: int) -> None:
        """Write a 32-bit value to a register (masked to 32 bits)."""
        if register not in self._values:
            raise InvalidRegisterError(f"unknown register {register!r}")
        if not isinstance(value, int):
            raise InvalidRegisterError(
                f"register value must be an int, got {type(value).__name__}"
            )
        self._values[register] = value & WORD_MASK

    def flip(self, register: Register, bit: int) -> int:
        """Flip one bit of ``register`` in place and return the new value."""
        new_value = flip_bit(self.read(register), bit)
        self.write(register, new_value)
        return new_value

    def snapshot(self) -> Dict[Register, int]:
        """Return a copy of all register values."""
        return dict(self._values)

    def load(self, values: Dict[Register, int]) -> None:
        """Bulk-write register values."""
        for reg, value in values.items():
            self.write(reg, value)

    def load_context(self, values: Dict[Register, int]) -> None:
        """Trusted bulk load used by the trap-exit hot path.

        ``values`` must map :class:`Register` keys to already-masked 32-bit
        ints (a :class:`TrapContext` register dict qualifies: every write into
        a context is masked). Skips the per-register validation of
        :meth:`load`, which dominates the simulation step cost otherwise.
        """
        self._values.update(values)

    def load_masked(self, values: Dict[Register, int]) -> None:
        """Trusted bulk write with 32-bit masking.

        Like :meth:`load_context` but masks each value; callers must pass
        :class:`Register` keys (the guest models placing workload state do).
        """
        target = self._values
        for reg, value in values.items():
            target[reg] = value & WORD_MASK

    def reset(self) -> None:
        """Reset all registers to their boot values."""
        for reg in self._values:
            self._values[reg] = 0
        self._values[Register.CPSR] = make_cpsr(0b10011)

    def __iter__(self) -> Iterator[Tuple[Register, int]]:
        return iter(self._values.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        core = ", ".join(
            f"{reg.value}=0x{val:08x}"
            for reg, val in self._values.items()
            if reg in (Register.PC, Register.SP, Register.LR, Register.CPSR)
        )
        return f"RegisterFile({core})"


@dataclass(slots=True)
class TrapContext:
    """Guest register state captured at hypervisor-entry.

    This is the structure the paper's fault injector corrupts: a copy of the
    guest's architectural registers saved on the HYP stack when the CPU takes
    an exception into the hypervisor, plus the HYP syndrome register describing
    why the trap happened.
    """

    cpu_id: int
    registers: Dict[Register, int] = field(default_factory=dict)
    hsr: int = 0
    exception_vector: str = "hvc"
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        # Contexts built from a full RegisterFile snapshot (the hot path)
        # already hold every architectural register; only fill defaults for
        # hand-built partial contexts.
        if not _ARCH_REGISTER_SET <= self.registers.keys():
            for reg in ARCHITECTURAL_REGISTERS:
                self.registers.setdefault(reg, 0)

    def read(self, register: Register) -> int:
        if register is Register.HSR:
            return self.hsr
        try:
            return self.registers[register]
        except KeyError as exc:
            raise InvalidRegisterError(f"{register!r} not in trap context") from exc

    def write(self, register: Register, value: int) -> None:
        value &= WORD_MASK
        if register is Register.HSR:
            self.hsr = value
        elif register in self.registers or register in ARCHITECTURAL_REGISTERS:
            self.registers[register] = value
        else:
            raise InvalidRegisterError(f"{register!r} not in trap context")

    def flip(self, register: Register, bit: int) -> int:
        """Flip one bit of ``register`` inside the saved context."""
        new_value = flip_bit(self.read(register), bit)
        self.write(register, new_value)
        return new_value

    def corruptible_registers(self) -> Tuple[Register, ...]:
        """Registers the paper's fault model may target in this context."""
        return ARCHITECTURAL_REGISTERS

    def copy(self) -> "TrapContext":
        return TrapContext(
            cpu_id=self.cpu_id,
            registers=dict(self.registers),
            hsr=self.hsr,
            exception_vector=self.exception_vector,
            timestamp=self.timestamp,
        )

    def diff(self, other: "TrapContext") -> List[Tuple[Register, int, int]]:
        """Return ``(register, self_value, other_value)`` for differing registers."""
        changes: List[Tuple[Register, int, int]] = []
        for reg in ARCHITECTURAL_REGISTERS:
            a, b = self.read(reg), other.read(reg)
            if a != b:
                changes.append((reg, a, b))
        if self.hsr != other.hsr:
            changes.append((Register.HSR, self.hsr, other.hsr))
        return changes

    @property
    def pc(self) -> int:
        return self.read(Register.PC)

    @property
    def sp(self) -> int:
        return self.read(Register.SP)

    @property
    def cpsr(self) -> int:
        return self.read(Register.CPSR)


def format_context(context: TrapContext) -> str:
    """Render a trap context in the style of Jailhouse's register dumps."""
    lines = [f"CPU {context.cpu_id} trap context ({context.exception_vector}):"]
    row: List[str] = []
    for index, reg in enumerate(ARCHITECTURAL_REGISTERS):
        row.append(f"{reg.value:>4}=0x{context.read(reg):08x}")
        if (index + 1) % 4 == 0:
            lines.append("  " + " ".join(row))
            row = []
    if row:
        lines.append("  " + " ".join(row))
    lines.append(f"   hsr=0x{context.hsr:08x}")
    return "\n".join(lines)
