"""UART (serial console) model.

The paper's only observable is the board's serial output: each test sends its
outcome "to an empty shell where the board serial port is connected", and the
non-root cell's availability is judged by whether its FreeRTOS tasks keep
printing. This module models a 16550-style UART whose transmit side is
captured into a timestamped, source-tagged record list so monitors can ask
"did cell X produce any output in the last N seconds?".

Captured records are indexed as they arrive — a per-source record list plus
bisectable timestamp arrays — so the windowed queries the monitors issue
(every ``evidence()`` call, and once per slice in the park/recover and
repeated-lifecycle scenarios) cost ``O(log n + matches)`` instead of a full
scan of the capture.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.hw.memory import MmioHandler

#: Register offsets (subset of a 16550).
UART_THR = 0x00   # transmit holding register
UART_LSR = 0x14   # line status register
UART_LSR_THRE = 1 << 5   # transmit holding register empty


@dataclass(frozen=True)
class UartRecord:
    """One line of captured serial output."""

    timestamp: float
    source: str
    text: str


class Uart(MmioHandler):
    """Serial port with per-source capture.

    Writers either call :meth:`write_line` directly (the guest models do this,
    tagging output with their cell name) or go through the MMIO interface (one
    byte at a time to the THR register), in which case bytes are accumulated
    until a newline.
    """

    def __init__(self, name: str = "uart0",
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self._records: List[UartRecord] = []
        # repro: allow[snapshot-complete] -- derived index; restore_state rebuilds it by re-appending the captured records
        self._timestamps: List[float] = []
        # repro: allow[snapshot-complete] -- derived index; restore_state rebuilds it by re-appending the captured records
        self._by_source: Dict[str, List[UartRecord]] = {}
        # repro: allow[snapshot-complete] -- derived index; restore_state rebuilds it by re-appending the captured records
        self._source_timestamps: Dict[str, List[float]] = {}
        self._partial: dict[str, str] = {}
        self._mmio_source = "mmio"

    # -- direct (guest model) interface -----------------------------------------

    def _append(self, record: UartRecord) -> None:
        """Add a record to the capture and every derived index."""
        source = record.source
        self._records.append(record)
        self._timestamps.append(record.timestamp)
        per_source = self._by_source.get(source)
        if per_source is None:
            per_source = self._by_source[source] = []
            self._source_timestamps[source] = []
        per_source.append(record)
        self._source_timestamps[source].append(record.timestamp)

    def write_line(self, source: str, text: str) -> UartRecord:
        """Append one full line of output attributed to ``source``."""
        record = UartRecord(timestamp=self._clock(), source=source, text=text)
        self._append(record)
        return record

    def write_char(self, source: str, char: str) -> None:
        """Append a character; a newline flushes the pending line."""
        if char == "\n":
            pending = self._partial.pop(source, "")
            self.write_line(source, pending)
        else:
            self._partial[source] = self._partial.get(source, "") + char

    # -- MMIO interface -----------------------------------------------------------

    def set_mmio_source(self, source: str) -> None:
        """Attribute subsequent MMIO writes to ``source``."""
        self._mmio_source = source

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == UART_LSR:
            return UART_LSR_THRE
        return 0

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        if offset == UART_THR:
            self.write_char(self._mmio_source, chr(value & 0xFF))

    # -- capture queries ------------------------------------------------------------

    @property
    def records(self) -> Tuple[UartRecord, ...]:
        return tuple(self._records)

    def lines(self, source: Optional[str] = None) -> List[str]:
        """All captured lines, optionally filtered by source."""
        records = self._records if source is None else self._by_source.get(source, [])
        return [record.text for record in records]

    def records_between(self, start: float, end: float,
                        source: Optional[str] = None) -> List[UartRecord]:
        """Records with ``start <= timestamp < end``."""
        if source is None:
            records, timestamps = self._records, self._timestamps
        else:
            records = self._by_source.get(source, [])
            timestamps = self._source_timestamps.get(source, [])
        lo = bisect_left(timestamps, start)
        hi = bisect_left(timestamps, end, lo)
        return records[lo:hi]

    def output_count(self, source: Optional[str] = None) -> int:
        """Number of captured lines (optionally per source)."""
        if source is None:
            return len(self._records)
        return len(self._by_source.get(source, []))

    def sources(self) -> Tuple[str, ...]:
        """Distinct sources that produced output, in first-seen order."""
        return tuple(self._by_source)

    def last_output_time(self, source: Optional[str] = None) -> Optional[float]:
        """Timestamp of the most recent line from ``source`` (or any source)."""
        records = self._records if source is None else self._by_source.get(source, [])
        if not records:
            return None
        return records[-1].timestamp

    def silent_since(self, timestamp: float, source: str) -> bool:
        """Whether ``source`` has produced no output at or after ``timestamp``."""
        last = self.last_output_time(source)
        return last is None or last < timestamp

    def clear(self) -> None:
        """Drop all captured output (used between experiments)."""
        self._records.clear()
        self._timestamps.clear()
        self._by_source.clear()
        self._source_timestamps.clear()
        self._partial.clear()

    def dump(self, sources: Optional[Iterable[str]] = None) -> str:
        """Render the capture as a log-file-style text blob."""
        wanted = set(sources) if sources is not None else None
        lines = []
        for record in self._records:
            if wanted is not None and record.source not in wanted:
                continue
            lines.append(f"[{record.timestamp:10.4f}] {record.source}: {record.text}")
        return "\n".join(lines)

    # -- snapshot / restore ----------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture the record log and pending partial lines."""
        return {
            "records": list(self._records),
            "partial": dict(self._partial),
            "mmio_source": self._mmio_source,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place (indexes rebuilt)."""
        self.clear()
        for record in state["records"]:
            self._append(record)
        self._partial = dict(state["partial"])
        self._mmio_source = state["mmio_source"]
