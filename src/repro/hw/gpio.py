"""GPIO controller and LED model.

The paper's FreeRTOS workload includes "a task to blink an onboard led". The
LED is the simplest liveness signal of the non-root cell besides its UART
output, so the model counts toggles and records the last toggle time for the
availability monitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import DeviceError


@dataclass
class PinEvent:
    """One level change on a GPIO pin."""

    timestamp: float
    pin: int
    level: bool


class GpioController:
    """Bank of GPIO pins with change history."""

    def __init__(self, num_pins: int = 32,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if num_pins <= 0:
            raise DeviceError("GPIO controller needs at least one pin")
        self.num_pins = num_pins
        self._levels: Dict[int, bool] = {pin: False for pin in range(num_pins)}
        self._clock = clock or (lambda: 0.0)
        self.events: List[PinEvent] = []

    def _check_pin(self, pin: int) -> None:
        if not 0 <= pin < self.num_pins:
            raise DeviceError(f"pin {pin} out of range [0, {self.num_pins})")

    def set_level(self, pin: int, level: bool) -> None:
        """Drive a pin high or low; no-op if the level is unchanged."""
        self._check_pin(pin)
        if self._levels[pin] == level:
            return
        self._levels[pin] = level
        self.events.append(PinEvent(timestamp=self._clock(), pin=pin, level=level))

    def toggle(self, pin: int) -> bool:
        """Invert a pin and return its new level."""
        self._check_pin(pin)
        new_level = not self._levels[pin]
        self.set_level(pin, new_level)
        return new_level

    def get_level(self, pin: int) -> bool:
        self._check_pin(pin)
        return self._levels[pin]

    def toggle_count(self, pin: int) -> int:
        """Number of recorded level changes on ``pin``."""
        self._check_pin(pin)
        return sum(1 for event in self.events if event.pin == pin)

    def last_change(self, pin: int) -> Optional[float]:
        """Timestamp of the most recent level change on ``pin``."""
        self._check_pin(pin)
        for event in reversed(self.events):
            if event.pin == pin:
                return event.timestamp
        return None

    def clear_history(self) -> None:
        self.events.clear()

    # -- snapshot / restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture pin levels and the change history."""
        return {"levels": dict(self._levels), "events": list(self.events)}

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        self._levels = dict(state["levels"])
        self.events = list(state["events"])


class Led:
    """Onboard LED attached to one GPIO pin."""

    def __init__(self, gpio: GpioController, pin: int, name: str = "led") -> None:
        self.gpio = gpio
        self.pin = pin
        self.name = name

    def on(self) -> None:
        self.gpio.set_level(self.pin, True)

    def off(self) -> None:
        self.gpio.set_level(self.pin, False)

    def toggle(self) -> bool:
        return self.gpio.toggle(self.pin)

    @property
    def lit(self) -> bool:
        return self.gpio.get_level(self.pin)

    @property
    def blink_count(self) -> int:
        return self.gpio.toggle_count(self.pin)

    def last_blink(self) -> Optional[float]:
        return self.gpio.last_change(self.pin)
