"""Generic Interrupt Controller (GIC-400 style) model.

The board routes all interrupts — per-CPU timer ticks, UART, inter-processor
software-generated interrupts (SGIs), and the ivshmem doorbell — through the
GIC. The hypervisor's ``irqchip_handle_irq()`` entry point acknowledges
interrupts from the per-CPU interface and forwards them to the owning cell,
which is one of the three injection points profiled by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InterruptError

#: Interrupt-id layout follows the GIC architecture.
SGI_BASE = 0      # software generated interrupts 0-15
PPI_BASE = 16     # private peripheral interrupts 16-31
SPI_BASE = 32     # shared peripheral interrupts 32+
MAX_IRQ = 1020
SPURIOUS_IRQ = 1023


@dataclass(frozen=True)
class PendingInterrupt:
    """One pending interrupt instance."""

    irq: int
    cpu_id: int
    source_cpu: Optional[int] = None  # set for SGIs


class GicCpuInterface:
    """Per-CPU interface: acknowledge and complete interrupts."""

    def __init__(self, cpu_id: int, distributor: "Gic") -> None:
        self.cpu_id = cpu_id
        self._gic = distributor
        self.priority_mask = 0xFF
        self.enabled = True
        self.active: Optional[int] = None
        self.acked_count = 0
        self.eoi_count = 0

    def acknowledge(self) -> int:
        """Pop the highest-priority pending interrupt, or the spurious id."""
        if not self.enabled:
            return SPURIOUS_IRQ
        irq = self._gic._pop_pending(self.cpu_id, self.priority_mask)
        if irq is None:
            return SPURIOUS_IRQ
        self.active = irq
        self.acked_count += 1
        return irq

    def end_of_interrupt(self, irq: int) -> None:
        """Signal completion of a previously acknowledged interrupt."""
        if self.active != irq:
            raise InterruptError(
                f"CPU {self.cpu_id}: EOI for IRQ {irq} but active is {self.active}"
            )
        self.active = None
        self.eoi_count += 1


class Gic:
    """GIC distributor with per-CPU interfaces."""

    def __init__(self, num_cpus: int) -> None:
        if num_cpus <= 0:
            raise ValueError("num_cpus must be positive")
        self.num_cpus = num_cpus
        self.enabled = True
        self._enabled_irqs: Set[int] = set()
        self._priorities: Dict[int, int] = {}
        self._targets: Dict[int, Set[int]] = {}
        self._pending: Dict[int, List[PendingInterrupt]] = {
            cpu: [] for cpu in range(num_cpus)
        }
        self.cpu_interfaces = [GicCpuInterface(cpu, self) for cpu in range(num_cpus)]
        self.delivered: List[PendingInterrupt] = []
        #: Flyweight cache of immutable (irq, cpu) pending instances.
        self._interned_pending: Dict[Tuple[int, int], PendingInterrupt] = {}

    # -- configuration -----------------------------------------------------------

    def enable_irq(self, irq: int, *, priority: int = 0xA0,
                   targets: Optional[Set[int]] = None) -> None:
        """Enable an interrupt line, set its priority and target CPUs."""
        self._validate_irq(irq)
        self._enabled_irqs.add(irq)
        self._priorities[irq] = priority & 0xFF
        if irq < PPI_BASE + 16 and irq >= SGI_BASE and irq < SPI_BASE:
            # SGIs/PPIs are banked per CPU; targets are implicit.
            self._targets[irq] = set(range(self.num_cpus))
        else:
            self._targets[irq] = set(targets) if targets else {0}

    def disable_irq(self, irq: int) -> None:
        self._validate_irq(irq)
        self._enabled_irqs.discard(irq)

    def is_enabled(self, irq: int) -> bool:
        return irq in self._enabled_irqs

    def irq_priority(self, irq: int) -> int:
        return self._priorities.get(irq, 0xFF)

    def irq_targets(self, irq: int) -> Set[int]:
        return set(self._targets.get(irq, set()))

    def retarget_irq(self, irq: int, targets: Set[int]) -> None:
        """Change the CPUs an SPI is delivered to (used on cell create/destroy)."""
        self._validate_irq(irq)
        bad = {cpu for cpu in targets if not 0 <= cpu < self.num_cpus}
        if bad:
            raise InterruptError(f"invalid target CPUs {sorted(bad)} for IRQ {irq}")
        self._targets[irq] = set(targets)

    # -- raising interrupts ---------------------------------------------------------

    def raise_irq(self, irq: int, *, cpu_id: Optional[int] = None) -> bool:
        """Mark an interrupt pending. Returns whether it was accepted.

        Hot path (every timer tick goes through here): the per-``(irq, cpu)``
        :class:`PendingInterrupt` instances are immutable, so they are
        interned in a flyweight cache instead of re-constructed per tick.
        """
        if not 0 <= irq < MAX_IRQ:
            raise InterruptError(f"IRQ id {irq} out of range [0, {MAX_IRQ})")
        if not self.enabled or irq not in self._enabled_irqs:
            return False
        if cpu_id is not None:
            targets = (cpu_id,)
        else:
            targets = sorted(self._targets.get(irq, {0}))
            targets = targets[:1] if targets else [0]
        accepted = False
        interned = self._interned_pending
        for cpu in targets:
            if not 0 <= cpu < self.num_cpus:
                raise InterruptError(f"IRQ {irq} targets invalid CPU {cpu}")
            pending = self._pending[cpu]
            for entry in pending:
                if entry.irq == irq:
                    break
            else:
                key = (irq, cpu)
                instance = interned.get(key)
                if instance is None:
                    instance = interned[key] = PendingInterrupt(irq=irq, cpu_id=cpu)
                pending.append(instance)
            accepted = True
        return accepted

    def send_sgi(self, irq: int, source_cpu: int, target_cpu: int) -> None:
        """Send a software-generated interrupt between cores."""
        if not SGI_BASE <= irq < PPI_BASE:
            raise InterruptError(f"SGI id must be in [0, 16), got {irq}")
        if not 0 <= target_cpu < self.num_cpus:
            raise InterruptError(f"invalid SGI target CPU {target_cpu}")
        self._pending[target_cpu].append(
            PendingInterrupt(irq=irq, cpu_id=target_cpu, source_cpu=source_cpu)
        )

    def pending_for(self, cpu_id: int) -> Tuple[int, ...]:
        """Interrupt ids pending for ``cpu_id`` (highest priority first)."""
        pending = self._pending[cpu_id]
        return tuple(
            p.irq for p in sorted(pending, key=lambda p: self._priorities.get(p.irq, 0xFF))
        )

    def has_pending(self, cpu_id: int) -> bool:
        return bool(self._pending[cpu_id])

    def pending_view(self) -> Dict[int, List[PendingInterrupt]]:
        """The live per-CPU pending queues, keyed by CPU id — read-only.

        This is the distributor's own mutable state, exposed for hot-path
        callers (the SUT's step loop polls it every tick) that must not pay
        for a copy; mutate it through :meth:`raise_irq`/:meth:`clear_pending`
        only. The mapping object is replaced wholesale by
        :meth:`restore_state`, so holders must re-fetch it after a restore
        rather than cache it across one.
        """
        return self._pending

    def clear_pending(self, cpu_id: Optional[int] = None) -> None:
        """Drop pending interrupts (all CPUs if ``cpu_id`` is None)."""
        cpus = range(self.num_cpus) if cpu_id is None else [cpu_id]
        for cpu in cpus:
            self._pending[cpu].clear()

    # -- internal -----------------------------------------------------------------

    def _pop_pending(self, cpu_id: int, priority_mask: int) -> Optional[int]:
        pending = self._pending[cpu_id]
        if not pending:
            return None
        priorities = self._priorities
        if len(pending) > 1:
            pending.sort(key=lambda p: priorities.get(p.irq, 0xFF))
        for index, entry in enumerate(pending):
            if priorities.get(entry.irq, 0xFF) < priority_mask:
                pending.pop(index)
                self.delivered.append(entry)
                return entry.irq
        return None

    @staticmethod
    def _validate_irq(irq: int) -> None:
        if not 0 <= irq < MAX_IRQ:
            raise InterruptError(f"IRQ id {irq} out of range [0, {MAX_IRQ})")

    # -- snapshot / restore --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture distributor configuration, pending queues, and interfaces."""
        return {
            "enabled": self.enabled,
            "enabled_irqs": set(self._enabled_irqs),
            "priorities": dict(self._priorities),
            "targets": {irq: set(cpus) for irq, cpus in self._targets.items()},
            "pending": {cpu: list(queue) for cpu, queue in self._pending.items()},
            "delivered": list(self.delivered),
            "interfaces": [
                (i.priority_mask, i.enabled, i.active, i.acked_count, i.eoi_count)
                for i in self.cpu_interfaces
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        self.enabled = state["enabled"]
        self._enabled_irqs = set(state["enabled_irqs"])
        self._priorities = dict(state["priorities"])
        self._targets = {irq: set(cpus) for irq, cpus in state["targets"].items()}
        self._pending = {cpu: list(queue) for cpu, queue in state["pending"].items()}
        self.delivered = list(state["delivered"])
        for interface, snap in zip(self.cpu_interfaces, state["interfaces"]):
            (interface.priority_mask, interface.enabled, interface.active,
             interface.acked_count, interface.eoi_count) = snap
