"""Structure-of-arrays hardware state for the batched lockstep core.

The scalar model keeps one :class:`~repro.hw.registers.RegisterFile` per CPU
(a dict of :class:`~repro.hw.registers.Register` to int). When the engine
steps a whole prefix family in lockstep (:mod:`repro.engine.batch`), the
per-lane architectural state lives here instead: a
:class:`BatchedRegisterFile` packs ``num_lanes`` register files into one flat
``array('Q')`` slab — one row per lane, one column per register — and each
:class:`LaneRegisterFile` is a zero-copy view over its row that speaks the
full ``RegisterFile`` API (read/write/flip/snapshot/load/reset/iteration),
so code written against the scalar file runs unchanged against a lane.

The slab layout buys two things the dict model cannot offer:

* whole-lane operations (capture/restore/broadcast/compare) become
  ``memoryview`` slice copies instead of 20 dict operations, and
* lockstep integrity is a row comparison: :meth:`BatchedRegisterFile.
  divergent_lanes` names every lane whose architectural state departed from
  the batch reference, which is the stepper's cheap guard for the "no
  pre-fire mutation" invariant.

The second half of this module is batched memory dispatch:
:func:`plan_page_groups`/:func:`batched_read` group same-page 1/2/4-byte
accesses from many lanes, resolve each page *once* through
:class:`~repro.hw.memory.PhysicalMemory`'s region/page index (the PR-2 fast
path), and serve the group straight from the backing page — falling back to
the scalar ``memory.read`` per access for MMIO windows, uncacheable pages,
and cross-page spans, so permission errors surface exactly as they would
scalar.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvalidRegisterError
from repro.hw.memory import PAGE_SHIFT, PAGE_SIZE, MemoryFlags, PhysicalMemory
from repro.hw.registers import WORD_MASK, Register, RegisterFile, make_cpsr

#: Fixed column order of the slab: one column per modeled register.
REGISTER_ORDER: Tuple[Register, ...] = tuple(Register)
_REG_INDEX: Dict[Register, int] = {
    reg: column for column, reg in enumerate(REGISTER_ORDER)
}
NUM_REGISTERS = len(REGISTER_ORDER)

_BOOT_CPSR = make_cpsr(0b10011)           # boot in SVC mode, like RegisterFile
_CPSR_COLUMN = _REG_INDEX[Register.CPSR]

_PAGE_MASK = PAGE_SIZE - 1
_READ_BIT = int(MemoryFlags.READ)


class LaneRegisterFile:
    """One lane's view into a :class:`BatchedRegisterFile` slab.

    Implements the :class:`~repro.hw.registers.RegisterFile` API over a
    ``memoryview`` row, so a lane can be handed to any code expecting the
    scalar register file; writes land directly in the shared slab.
    """

    __slots__ = ("_row", "lane_index")

    def __init__(self, row: memoryview, lane_index: int) -> None:
        self._row = row
        self.lane_index = lane_index

    def read(self, register: Register) -> int:
        try:
            return self._row[_REG_INDEX[register]]
        except KeyError as exc:  # pragma: no cover - defensive
            raise InvalidRegisterError(f"unknown register {register!r}") from exc

    def write(self, register: Register, value: int) -> None:
        column = _REG_INDEX.get(register)
        if column is None:
            raise InvalidRegisterError(f"unknown register {register!r}")
        if not isinstance(value, int):
            raise InvalidRegisterError(
                f"register value must be an int, got {type(value).__name__}"
            )
        self._row[column] = value & WORD_MASK

    def flip(self, register: Register, bit: int) -> int:
        from repro.hw.registers import flip_bit

        new_value = flip_bit(self.read(register), bit)
        self.write(register, new_value)
        return new_value

    def snapshot(self) -> Dict[Register, int]:
        row = self._row
        return {reg: row[column] for reg, column in _REG_INDEX.items()}

    def load(self, values: Dict[Register, int]) -> None:
        for reg, value in values.items():
            self.write(reg, value)

    def load_context(self, values: Dict[Register, int]) -> None:
        # Trusted bulk load: values are already-masked ints keyed by Register.
        row = self._row
        index = _REG_INDEX
        for reg, value in values.items():
            row[index[reg]] = value

    def load_masked(self, values: Dict[Register, int]) -> None:
        row = self._row
        index = _REG_INDEX
        for reg, value in values.items():
            row[index[reg]] = value & WORD_MASK

    def reset(self) -> None:
        row = self._row
        for column in range(NUM_REGISTERS):
            row[column] = 0
        row[_CPSR_COLUMN] = _BOOT_CPSR

    def __iter__(self) -> Iterator[Tuple[Register, int]]:
        row = self._row
        return iter([(reg, row[column]) for reg, column in _REG_INDEX.items()])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LaneRegisterFile):
            return self._row.tolist() == other._row.tolist()
        if isinstance(other, RegisterFile):
            return self.snapshot() == other.snapshot()
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        core = ", ".join(
            f"{reg.value}=0x{self.read(reg):08x}"
            for reg in (Register.PC, Register.SP, Register.LR, Register.CPSR)
        )
        return f"LaneRegisterFile(lane={self.lane_index}, {core})"


class BatchedRegisterFile:
    """``num_lanes`` register files packed into one ``array('Q')`` slab."""

    def __init__(self, num_lanes: int) -> None:
        if num_lanes <= 0:
            raise ValueError(f"num_lanes must be positive, got {num_lanes}")
        self.num_lanes = num_lanes
        self._slab = array("Q", bytes(8 * num_lanes * NUM_REGISTERS))
        view = memoryview(self._slab)
        self._rows = [
            view[lane * NUM_REGISTERS:(lane + 1) * NUM_REGISTERS]
            for lane in range(num_lanes)
        ]
        for lane in range(num_lanes):
            self._rows[lane][_CPSR_COLUMN] = _BOOT_CPSR

    def lane(self, lane_index: int) -> LaneRegisterFile:
        return LaneRegisterFile(self._rows[lane_index], lane_index)

    # -- whole-lane operations (memoryview slice copies) ----------------------------

    def capture_lane(self, lane_index: int,
                     source: "RegisterFile | Dict[Register, int]") -> None:
        """Copy a scalar register file (or snapshot dict) into one lane."""
        values = source.snapshot() if isinstance(source, RegisterFile) else source
        row = self._rows[lane_index]
        for reg, value in values.items():
            row[_REG_INDEX[reg]] = value & WORD_MASK

    def restore_lane(self, lane_index: int, target: RegisterFile) -> None:
        """Copy one lane's row back into a scalar register file."""
        target.load_context(self.lane(lane_index).snapshot())

    def broadcast(self, source: "RegisterFile | Dict[Register, int]") -> None:
        """Fill every lane from one scalar state (batch fork point)."""
        self.capture_lane(0, source)
        first = self._rows[0]
        for lane in range(1, self.num_lanes):
            self._rows[lane][:] = first

    def copy_lane(self, src: int, dst: int) -> None:
        self._rows[dst][:] = self._rows[src]

    def lane_words(self, lane_index: int) -> Tuple[int, ...]:
        """The raw row of one lane, in :data:`REGISTER_ORDER`."""
        return tuple(self._rows[lane_index])

    def divergent_lanes(self, reference: int = 0) -> Tuple[int, ...]:
        """Lanes whose architectural state differs from ``reference``.

        The lockstep stepper's integrity guard: while no lane's injector has
        fired, every lane shares the reference state bit for bit, so any
        divergence here means a lane was mutated outside the eviction
        protocol.
        """
        ref = self._rows[reference]
        return tuple(
            lane for lane in range(self.num_lanes)
            if lane != reference and self._rows[lane] != ref
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BatchedRegisterFile):
            return NotImplemented
        return (self.num_lanes == other.num_lanes
                and self._slab == other._slab)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BatchedRegisterFile(lanes={self.num_lanes}, "
                f"registers={NUM_REGISTERS})")


# -- batched memory dispatch ---------------------------------------------------------

#: One planned access: (position in the request sequence, address, size).
_PlannedAccess = Tuple[int, int, int]


def plan_page_groups(
    accesses: Sequence[Tuple[int, int]],
) -> Tuple[Dict[int, List[_PlannedAccess]], List[_PlannedAccess]]:
    """Group ``(address, size)`` accesses by page for batched dispatch.

    Returns ``(groups, fallback)``: ``groups`` maps a page index to the
    accesses that lie entirely inside it with a 1/2/4-byte size (the shapes
    the scalar fast path serves), ``fallback`` holds everything else
    (cross-page spans, odd sizes) for per-access scalar dispatch. Positions
    are preserved so the caller can reassemble results in request order.
    """
    groups: Dict[int, List[_PlannedAccess]] = {}
    fallback: List[_PlannedAccess] = []
    for position, (address, size) in enumerate(accesses):
        offset = address & _PAGE_MASK
        if size in (1, 2, 4) and offset + size <= PAGE_SIZE:
            groups.setdefault(address >> PAGE_SHIFT, []).append(
                (position, address, size))
        else:
            fallback.append((position, address, size))
    return groups, fallback


def batched_read(memory: PhysicalMemory,
                 accesses: Sequence[Tuple[int, int]]) -> List[int]:
    """Read many ``(address, size)`` pairs, resolving each page once.

    Same-page groups resolve their ``(region, handler, flags)`` entry a
    single time through the memory's page index and read straight from the
    backing page; MMIO-backed and uncacheable pages, permission violations,
    and the fallback shapes all route through the scalar ``memory.read`` per
    access, so every error is raised exactly as a lane-at-a-time loop would
    raise it. Results come back in request order.
    """
    results: List[Optional[int]] = [None] * len(accesses)
    groups, fallback = plan_page_groups(accesses)
    page_cache = memory._page_cache
    pages = memory._pages
    for page_index, group in groups.items():
        entry = page_cache.get(page_index, False)
        if entry is False:
            entry = memory._resolve_page(page_index)
        if entry is None or entry[1] is not None or not entry[2] & _READ_BIT:
            # Uncacheable page, MMIO window, or unreadable region: the scalar
            # path owns the semantics (handler dispatch / error raising).
            for position, address, size in group:
                results[position] = memory.read(address, size)
            continue
        page = pages.get(page_index)
        if page is None:
            for position, _address, _size in group:
                results[position] = 0
            continue
        for position, address, size in group:
            offset = address & _PAGE_MASK
            results[position] = int.from_bytes(
                page[offset:offset + size], "little")
    for position, address, size in fallback:
        results[position] = memory.read(address, size)
    return results  # type: ignore[return-value]


def pages_touched(accesses: Iterable[Tuple[int, int]]) -> int:
    """How many distinct pages a batch of accesses resolves (for telemetry)."""
    return len({address >> PAGE_SHIFT for address, _size in accesses})
