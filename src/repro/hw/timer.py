"""Per-CPU generic timer model.

Each Cortex-A7 core has a private timer that drives the guest OS tick (the
FreeRTOS scheduler tick and the Linux jiffy). The timer raises a private
peripheral interrupt (PPI) through the GIC; in a Jailhouse deployment the
virtual timer interrupt is handled by the guest, but its arrival still enters
through the hypervisor's ``irqchip_handle_irq()`` path, which is one of the
paper's candidate injection points.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DeviceError
from repro.hw.clock import EventHandle, SimulationClock
from repro.hw.gic import Gic

#: PPI id of the virtual timer on ARM platforms.
VIRTUAL_TIMER_PPI = 27


class GenericTimer:
    """Periodic per-CPU timer wired to the GIC."""

    def __init__(self, cpu_id: int, clock: SimulationClock, gic: Gic,
                 *, irq: int = VIRTUAL_TIMER_PPI) -> None:
        self.cpu_id = cpu_id
        self.irq = irq
        self._clock = clock
        self._gic = gic
        self._handle: Optional[EventHandle] = None
        self._period: Optional[float] = None
        self.fired = 0

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    @property
    def period(self) -> Optional[float]:
        return self._period

    def start(self, period: float) -> None:
        """Start (or restart) the timer with the given period in seconds."""
        if period <= 0:
            raise DeviceError(f"timer period must be positive, got {period}")
        self.stop()
        self._period = period
        self._handle = self._clock.schedule(period, self._tick, period=period)

    def stop(self) -> None:
        """Stop the timer; pending interrupts stay pending."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._period = None

    def _tick(self, now: float) -> None:
        self.fired += 1
        self._gic.raise_irq(self.irq, cpu_id=self.cpu_id)

    # -- snapshot / restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture run state including the phase of the next tick."""
        return {
            "running": self.running,
            "period": self._period,
            "due": self._handle.due if self.running else None,
            "fired": self.fired,
        }

    def restore_state(self, state: dict) -> None:
        """Re-arm the timer from a snapshot (the clock must be restored first)."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._period = state["period"]
        self.fired = state["fired"]
        if state["running"]:
            delay = max(0.0, state["due"] - self._clock.now)
            self._handle = self._clock.schedule(
                delay, self._tick, period=state["period"]
            )
