"""Physical memory map with permission-checked access.

The board exposes a flat 32-bit physical address space populated with
:class:`MemoryRegion` objects (DRAM, MMIO windows, boot ROM). Reads and writes
are checked against region boundaries and permission flags; violations raise
:class:`~repro.errors.MemoryAccessError`, which is how the hypervisor model
detects stage-2 faults and how the guest models detect wild pointers after a
register corruption.

Storage is sparse (page-granular dictionaries) so a 1 GB DRAM region costs
nothing until it is touched.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import MemoryAccessError, RegionOverlapError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


class MemoryFlags(enum.IntFlag):
    """Access permissions and attributes of a memory region."""

    READ = 1
    WRITE = 2
    EXECUTE = 4
    IO = 8
    RW = READ | WRITE
    RWX = READ | WRITE | EXECUTE


class AccessType(enum.Enum):
    """Kind of memory access being performed."""

    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"

    def required_flag(self) -> MemoryFlags:
        if self is AccessType.READ:
            return MemoryFlags.READ
        if self is AccessType.WRITE:
            return MemoryFlags.WRITE
        return MemoryFlags.EXECUTE


@dataclass(frozen=True)
class MemoryRegion:
    """A contiguous region of the physical address space."""

    name: str
    start: int
    size: int
    flags: MemoryFlags = MemoryFlags.RW

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if self.start < 0:
            raise ValueError(f"region {self.name!r} must have non-negative start")

    @property
    def end(self) -> int:
        """First address *after* the region."""
        return self.start + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        """Whether ``[address, address+size)`` lies entirely inside the region."""
        return self.start <= address and address + size <= self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        """Whether this region shares any address with ``other``."""
        return self.start < other.end and other.start < self.end

    def permits(self, access: AccessType) -> bool:
        """Whether the region's flags allow ``access``."""
        return bool(self.flags & access.required_flag())

    def describe(self) -> str:
        perm = "".join(
            letter if self.flags & flag else "-"
            for letter, flag in (
                ("r", MemoryFlags.READ),
                ("w", MemoryFlags.WRITE),
                ("x", MemoryFlags.EXECUTE),
                ("i", MemoryFlags.IO),
            )
        )
        return f"{self.name:<24} 0x{self.start:08x}-0x{self.end - 1:08x} {perm}"


class PhysicalMemory:
    """Sparse physical memory backed by named regions."""

    def __init__(self, regions: Optional[Iterable[MemoryRegion]] = None) -> None:
        self._regions: List[MemoryRegion] = []
        self._pages: Dict[int, bytearray] = {}
        self._mmio_handlers: Dict[str, "MmioHandler"] = {}
        if regions:
            for region in regions:
                self.add_region(region)

    # -- region management ---------------------------------------------------

    def add_region(self, region: MemoryRegion) -> None:
        """Register a region; overlapping regions are rejected."""
        for existing in self._regions:
            if existing.overlaps(region):
                raise RegionOverlapError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.start)

    def remove_region(self, name: str) -> None:
        """Remove a region by name (its contents are dropped)."""
        region = self.find_region_by_name(name)
        if region is None:
            raise KeyError(f"no region named {name!r}")
        self._regions.remove(region)
        first_page = region.start >> PAGE_SHIFT
        last_page = (region.end - 1) >> PAGE_SHIFT
        for page in range(first_page, last_page + 1):
            self._pages.pop(page, None)

    @property
    def regions(self) -> Tuple[MemoryRegion, ...]:
        return tuple(self._regions)

    def find_region(self, address: int) -> Optional[MemoryRegion]:
        """Region containing ``address``, or ``None``."""
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def find_region_by_name(self, name: str) -> Optional[MemoryRegion]:
        for region in self._regions:
            if region.name == name:
                return region
        return None

    def is_mapped(self, address: int, size: int = 1) -> bool:
        """Whether the whole access window lies inside a single region."""
        region = self.find_region(address)
        return region is not None and region.contains(address, size)

    # -- MMIO ------------------------------------------------------------------

    def attach_mmio(self, region_name: str, handler: "MmioHandler") -> None:
        """Attach an MMIO handler to an IO region."""
        region = self.find_region_by_name(region_name)
        if region is None:
            raise KeyError(f"no region named {region_name!r}")
        if not region.flags & MemoryFlags.IO:
            raise ValueError(f"region {region_name!r} is not an IO region")
        self._mmio_handlers[region_name] = handler

    # -- access ----------------------------------------------------------------

    def _check(self, address: int, size: int, access: AccessType) -> MemoryRegion:
        region = self.find_region(address)
        if region is None or not region.contains(address, size):
            raise MemoryAccessError(address, size, access.value, "address not mapped")
        if not region.permits(access):
            raise MemoryAccessError(
                address, size, access.value,
                f"permission denied in region {region.name!r}",
            )
        return region

    def read(self, address: int, size: int = 4) -> int:
        """Read ``size`` bytes as a little-endian integer."""
        region = self._check(address, size, AccessType.READ)
        handler = self._mmio_handlers.get(region.name)
        if handler is not None:
            return handler.mmio_read(address - region.start, size)
        return int.from_bytes(self._read_bytes(address, size), "little")

    def write(self, address: int, value: int, size: int = 4) -> None:
        """Write ``size`` bytes of a little-endian integer."""
        region = self._check(address, size, AccessType.WRITE)
        handler = self._mmio_handlers.get(region.name)
        if handler is not None:
            handler.mmio_write(address - region.start, value, size)
            return
        self._write_bytes(address, int(value).to_bytes(size, "little", signed=False))

    def fetch(self, address: int, size: int = 4) -> int:
        """Instruction fetch: like read but requires EXECUTE permission."""
        self._check(address, size, AccessType.EXECUTE)
        return int.from_bytes(self._read_bytes(address, size), "little")

    def read_bytes(self, address: int, size: int) -> bytes:
        """Read a raw byte string."""
        self._check(address, size, AccessType.READ)
        return bytes(self._read_bytes(address, size))

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write a raw byte string."""
        self._check(address, len(data), AccessType.WRITE)
        self._write_bytes(address, data)

    # -- sparse page storage -----------------------------------------------------

    def _read_bytes(self, address: int, size: int) -> bytearray:
        out = bytearray(size)
        offset = 0
        while offset < size:
            page_index = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & (PAGE_SIZE - 1)
            chunk = min(size - offset, PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset:offset + chunk] = page[page_offset:page_offset + chunk]
            offset += chunk
        return out

    def _write_bytes(self, address: int, data: bytes) -> None:
        offset = 0
        size = len(data)
        while offset < size:
            page_index = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & (PAGE_SIZE - 1)
            chunk = min(size - offset, PAGE_SIZE - page_offset)
            page = self._pages.setdefault(page_index, bytearray(PAGE_SIZE))
            page[page_offset:page_offset + chunk] = data[offset:offset + chunk]
            offset += chunk

    # -- introspection -------------------------------------------------------------

    def resident_pages(self) -> int:
        """Number of pages actually allocated by sparse storage."""
        return len(self._pages)

    def describe_map(self) -> str:
        """Render the memory map as a table (one region per line)."""
        return "\n".join(region.describe() for region in self._regions)


class MmioHandler:
    """Protocol for devices mapped into IO regions."""

    def mmio_read(self, offset: int, size: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def mmio_write(self, offset: int, value: int, size: int) -> None:  # pragma: no cover
        raise NotImplementedError
