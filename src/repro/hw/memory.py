"""Physical memory map with permission-checked access.

The board exposes a flat 32-bit physical address space populated with
:class:`MemoryRegion` objects (DRAM, MMIO windows, boot ROM). Reads and writes
are checked against region boundaries and permission flags; violations raise
:class:`~repro.errors.MemoryAccessError`, which is how the hypervisor model
detects stage-2 faults and how the guest models detect wild pointers after a
register corruption.

Storage is sparse (page-granular dictionaries) so a 1 GB DRAM region costs
nothing until it is touched.

Dispatch is indexed: region lookup bisects over the sorted region starts
instead of scanning the region list, and the ``(region, mmio handler,
flags)`` resolution of each page is cached so repeated accesses to the same
page skip the permission re-checks. The dominant 1/2/4-byte aligned accesses
take a single-page fast path that avoids the generic chunked page walk and
its intermediate ``bytearray`` allocations. ``add_region``/``remove_region``
invalidate the caches.

Snapshots are dirty-page deltas: every write marks its page dirty, and
:meth:`PhysicalMemory.snapshot_state` copies only the pages written since the
previous capture, sharing the immutable copies of untouched pages with the
earlier snapshots. :meth:`PhysicalMemory.restore_state` symmetrically keeps
the live ``bytearray`` of any page whose content is unchanged. Taking and
restoring many snapshots of the same deployment (the prefix fast-forward
cache holds one per pre-injection prefix) therefore copies only the pages
actually touched between captures; the bookkeeping dict walk remains
O(resident pages), but a dict entry costs a fraction of a 4 KiB page copy.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import MemoryAccessError, RegionOverlapError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
_PAGE_MASK = PAGE_SIZE - 1


class MemoryFlags(enum.IntFlag):
    """Access permissions and attributes of a memory region."""

    READ = 1
    WRITE = 2
    EXECUTE = 4
    IO = 8
    RW = READ | WRITE
    RWX = READ | WRITE | EXECUTE


class AccessType(enum.Enum):
    """Kind of memory access being performed."""

    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"

    def required_flag(self) -> MemoryFlags:
        if self is AccessType.READ:
            return MemoryFlags.READ
        if self is AccessType.WRITE:
            return MemoryFlags.WRITE
        return MemoryFlags.EXECUTE


#: Plain-int permission bit per access type; ``IntFlag.__and__`` goes through
#: the enum machinery, which is far too slow for the per-access hot path.
ACCESS_BIT: Dict[AccessType, int] = {
    AccessType.READ: int(MemoryFlags.READ),
    AccessType.WRITE: int(MemoryFlags.WRITE),
    AccessType.EXECUTE: int(MemoryFlags.EXECUTE),
}

_READ_BIT = int(MemoryFlags.READ)
_WRITE_BIT = int(MemoryFlags.WRITE)
_EXECUTE_BIT = int(MemoryFlags.EXECUTE)
_IO_BIT = int(MemoryFlags.IO)


@dataclass(frozen=True)
class MemoryRegion:
    """A contiguous region of the physical address space."""

    name: str
    start: int
    size: int
    flags: MemoryFlags = MemoryFlags.RW

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if self.start < 0:
            raise ValueError(f"region {self.name!r} must have non-negative start")

    @property
    def end(self) -> int:
        """First address *after* the region."""
        return self.start + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        """Whether ``[address, address+size)`` lies entirely inside the region."""
        return self.start <= address and address + size <= self.start + self.size

    def overlaps(self, other: "MemoryRegion") -> bool:
        """Whether this region shares any address with ``other``."""
        return self.start < other.end and other.start < self.end

    def permits(self, access: AccessType) -> bool:
        """Whether the region's flags allow ``access``."""
        return bool(int(self.flags) & ACCESS_BIT[access])

    def describe(self) -> str:
        perm = "".join(
            letter if self.flags & flag else "-"
            for letter, flag in (
                ("r", MemoryFlags.READ),
                ("w", MemoryFlags.WRITE),
                ("x", MemoryFlags.EXECUTE),
                ("i", MemoryFlags.IO),
            )
        )
        return f"{self.name:<24} 0x{self.start:08x}-0x{self.end - 1:08x} {perm}"


#: Cache sentinel for pages not fully owned by a single region (region
#: boundary inside the page, or no region at all): such pages always take the
#: generic checked path.
_UNCACHEABLE = None


class PhysicalMemory:
    """Sparse physical memory backed by named regions."""

    def __init__(self, regions: Optional[Iterable[MemoryRegion]] = None) -> None:
        self._regions: List[MemoryRegion] = []
        self._pages: Dict[int, bytearray] = {}
        self._mmio_handlers: Dict[str, "MmioHandler"] = {}
        #: Sorted region start addresses, parallel to ``self._regions``.
        # repro: allow[snapshot-complete] -- derived region index; restore_state rebuilds it via _reindex()
        self._starts: List[int] = []
        #: page index -> (region, handler-or-None, flags int) for pages fully
        #: inside one region, or ``_UNCACHEABLE`` for boundary/unmapped pages.
        # repro: allow[snapshot-complete] -- derived page lookup cache; restore_state rebuilds it via _reindex()
        self._page_cache: Dict[int, Optional[Tuple[MemoryRegion, Optional["MmioHandler"], int]]] = {}
        #: Pages written since the last snapshot/restore capture point.
        self._dirty: set = set()
        #: Immutable copies of each resident page as of the last capture;
        #: shared (by reference) with every snapshot that saw that content.
        self._shadow: Dict[int, bytes] = {}
        #: Delta-snapshot effectiveness counters (cumulative).
        self.snapshot_pages_copied = 0
        self.snapshot_pages_reused = 0
        if regions:
            for region in regions:
                self.add_region(region)

    # -- region management ---------------------------------------------------

    def _reindex(self) -> None:
        self._regions.sort(key=lambda r: r.start)
        self._starts = [r.start for r in self._regions]
        self._page_cache.clear()

    def add_region(self, region: MemoryRegion) -> None:
        """Register a region; overlapping regions are rejected."""
        for existing in self._regions:
            if existing.overlaps(region):
                raise RegionOverlapError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)
        self._reindex()

    def remove_region(self, name: str) -> None:
        """Remove a region by name (its contents are dropped).

        Only pages fully owned by the removed region are evicted from the
        sparse store. A boundary page shared with an adjacent region (regions
        need not be page-aligned) is kept so the neighbour's bytes survive;
        the removed region's own bytes within such a page are zeroed instead.
        """
        region = self.find_region_by_name(name)
        if region is None:
            raise KeyError(f"no region named {name!r}")
        self._regions.remove(region)
        first_page = region.start >> PAGE_SHIFT
        last_page = (region.end - 1) >> PAGE_SHIFT
        for page in range(first_page, last_page + 1):
            page_start = page << PAGE_SHIFT
            page_end = page_start + PAGE_SIZE
            fully_owned = region.start <= page_start and page_end <= region.end
            if not fully_owned:
                # Another region may own part of this page; keep the page if
                # so, but zero out the removed region's slice of it.
                shared = any(
                    other.start < page_end and page_start < other.end
                    for other in self._regions
                )
                if shared:
                    stored = self._pages.get(page)
                    if stored is not None:
                        lo = max(region.start, page_start) - page_start
                        hi = min(region.end, page_end) - page_start
                        stored[lo:hi] = bytes(hi - lo)
                        self._dirty.add(page)
                    continue
            self._pages.pop(page, None)
            self._dirty.discard(page)
        self._reindex()

    @property
    def regions(self) -> Tuple[MemoryRegion, ...]:
        return tuple(self._regions)

    def find_region(self, address: int) -> Optional[MemoryRegion]:
        """Region containing ``address``, or ``None`` (bisect over starts)."""
        index = bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        region = self._regions[index]
        if address < region.start + region.size:
            return region
        return None

    def find_region_by_name(self, name: str) -> Optional[MemoryRegion]:
        for region in self._regions:
            if region.name == name:
                return region
        return None

    def is_mapped(self, address: int, size: int = 1) -> bool:
        """Whether the whole access window lies inside a single region."""
        region = self.find_region(address)
        return region is not None and region.contains(address, size)

    # -- MMIO ------------------------------------------------------------------

    def attach_mmio(self, region_name: str, handler: "MmioHandler") -> None:
        """Attach an MMIO handler to an IO region."""
        region = self.find_region_by_name(region_name)
        if region is None:
            raise KeyError(f"no region named {region_name!r}")
        if not region.flags & MemoryFlags.IO:
            raise ValueError(f"region {region_name!r} is not an IO region")
        self._mmio_handlers[region_name] = handler
        self._page_cache.clear()

    # -- access ----------------------------------------------------------------

    def _check(self, address: int, size: int, access: AccessType) -> MemoryRegion:
        region = self.find_region(address)
        if region is None or not region.contains(address, size):
            raise MemoryAccessError(address, size, access.value, "address not mapped")
        if not int(region.flags) & ACCESS_BIT[access]:
            raise MemoryAccessError(
                address, size, access.value,
                f"permission denied in region {region.name!r}",
            )
        return region

    def _resolve_page(self, page: int):
        """Cache the (region, handler, flags) resolution of one page.

        Only pages lying entirely inside a single region are cached; pages
        crossing a region boundary (or outside every region) resolve to the
        ``_UNCACHEABLE`` sentinel and always take the generic path.
        """
        page_start = page << PAGE_SHIFT
        region = self.find_region(page_start)
        if region is None or region.end < page_start + PAGE_SIZE:
            entry = _UNCACHEABLE
        else:
            entry = (region, self._mmio_handlers.get(region.name), int(region.flags))
        self._page_cache[page] = entry
        return entry

    def read(self, address: int, size: int = 4) -> int:
        """Read ``size`` bytes as a little-endian integer."""
        # Single-page fast path for the dominant small aligned accesses.
        offset = address & _PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page_index = address >> PAGE_SHIFT
            entry = self._page_cache.get(page_index, False)
            if entry is False:
                entry = self._resolve_page(page_index)
            if entry is not None:
                region, handler, flags = entry
                if not flags & _READ_BIT:
                    raise MemoryAccessError(
                        address, size, "read",
                        f"permission denied in region {region.name!r}",
                    )
                if handler is not None:
                    return handler.mmio_read(address - region.start, size)
                page = self._pages.get(page_index)
                if page is None:
                    return 0
                return int.from_bytes(page[offset:offset + size], "little")
        region = self._check(address, size, AccessType.READ)
        handler = self._mmio_handlers.get(region.name)
        if handler is not None:
            return handler.mmio_read(address - region.start, size)
        return int.from_bytes(self._read_bytes(address, size), "little")

    def write(self, address: int, value: int, size: int = 4) -> None:
        """Write ``size`` bytes of a little-endian integer."""
        offset = address & _PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page_index = address >> PAGE_SHIFT
            entry = self._page_cache.get(page_index, False)
            if entry is False:
                entry = self._resolve_page(page_index)
            if entry is not None:
                region, handler, flags = entry
                if not flags & _WRITE_BIT:
                    raise MemoryAccessError(
                        address, size, "write",
                        f"permission denied in region {region.name!r}",
                    )
                if handler is not None:
                    handler.mmio_write(address - region.start, value, size)
                    return
                page = self._pages.get(page_index)
                if page is None:
                    page = self._pages[page_index] = bytearray(PAGE_SIZE)
                page[offset:offset + size] = int(value).to_bytes(
                    size, "little", signed=False
                )
                self._dirty.add(page_index)
                return
        region = self._check(address, size, AccessType.WRITE)
        handler = self._mmio_handlers.get(region.name)
        if handler is not None:
            handler.mmio_write(address - region.start, value, size)
            return
        self._write_bytes(address, int(value).to_bytes(size, "little", signed=False))

    def fetch(self, address: int, size: int = 4) -> int:
        """Instruction fetch: like read but requires EXECUTE permission.

        Fetching from an MMIO window is always an error: executing a device
        window is a wild-jump symptom the outcome classifier must see, so it
        raises :class:`MemoryAccessError` instead of silently reading the
        backing pages.
        """
        offset = address & _PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page_index = address >> PAGE_SHIFT
            entry = self._page_cache.get(page_index, False)
            if entry is False:
                entry = self._resolve_page(page_index)
            if entry is not None:
                region, handler, flags = entry
                if not flags & _EXECUTE_BIT:
                    raise MemoryAccessError(
                        address, size, "execute",
                        f"permission denied in region {region.name!r}",
                    )
                if handler is not None or flags & _IO_BIT:
                    raise MemoryAccessError(
                        address, size, "execute",
                        f"instruction fetch from MMIO region {region.name!r}",
                    )
                page = self._pages.get(page_index)
                if page is None:
                    return 0
                return int.from_bytes(page[offset:offset + size], "little")
        region = self._check(address, size, AccessType.EXECUTE)
        if (region.name in self._mmio_handlers
                or int(region.flags) & _IO_BIT):
            raise MemoryAccessError(
                address, size, "execute",
                f"instruction fetch from MMIO region {region.name!r}",
            )
        return int.from_bytes(self._read_bytes(address, size), "little")

    def read_bytes(self, address: int, size: int) -> bytes:
        """Read a raw byte string."""
        self._check(address, size, AccessType.READ)
        return bytes(self._read_bytes(address, size))

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write a raw byte string."""
        self._check(address, len(data), AccessType.WRITE)
        self._write_bytes(address, data)

    # -- sparse page storage -----------------------------------------------------

    def _read_bytes(self, address: int, size: int) -> bytearray:
        out = bytearray(size)
        offset = 0
        while offset < size:
            page_index = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & _PAGE_MASK
            chunk = min(size - offset, PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset:offset + chunk] = page[page_offset:page_offset + chunk]
            offset += chunk
        return out

    def _write_bytes(self, address: int, data: bytes) -> None:
        offset = 0
        size = len(data)
        while offset < size:
            page_index = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & _PAGE_MASK
            chunk = min(size - offset, PAGE_SIZE - page_offset)
            page = self._pages.setdefault(page_index, bytearray(PAGE_SIZE))
            page[page_offset:page_offset + chunk] = data[offset:offset + chunk]
            self._dirty.add(page_index)
            offset += chunk

    # -- snapshot / restore --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture regions, handler bindings and page contents.

        A dirty-page delta against the previous capture: pages untouched since
        the last ``snapshot_state``/``restore_state`` reuse the immutable
        ``bytes`` copy already held by earlier snapshots instead of being
        re-copied, so a steady stream of snapshots of a mostly-idle deployment
        is cheap. The returned mapping is self-contained — consumers see a
        full page image either way.
        """
        shadow = self._shadow
        dirty = self._dirty
        captured: Dict[int, bytes] = {}
        for index, page in self._pages.items():
            previous = shadow.get(index)
            if previous is None or index in dirty:
                captured[index] = bytes(page)
                self.snapshot_pages_copied += 1
            else:
                captured[index] = previous
                self.snapshot_pages_reused += 1
        # The capture is the new shadow: stale entries for dropped pages are
        # pruned, and the dirty set starts over from this point.
        self._shadow = dict(captured)
        dirty.clear()
        return {
            "regions": tuple(self._regions),
            "handlers": dict(self._mmio_handlers),
            "pages": captured,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place.

        The delta counterpart of :meth:`snapshot_state`: a resident page
        whose content provably matches the snapshot (clean since the last
        capture and backed by the same shared ``bytes`` object) keeps its
        live ``bytearray``; only pages that actually diverged are rebuilt.
        """
        self._regions = list(state["regions"])
        self._mmio_handlers = dict(state["handlers"])
        pages = state["pages"]
        current_pages = self._pages
        shadow = self._shadow
        dirty = self._dirty
        restored: Dict[int, bytearray] = {}
        for index, data in pages.items():
            live = current_pages.get(index)
            if (live is not None and index not in dirty
                    and shadow.get(index) is data):
                restored[index] = live
                self.snapshot_pages_reused += 1
            else:
                restored[index] = bytearray(data)
                self.snapshot_pages_copied += 1
        self._pages = restored
        # Every live page now matches the snapshot image exactly.
        self._shadow = dict(pages)
        dirty.clear()
        self._reindex()

    # -- introspection -------------------------------------------------------------

    def resident_pages(self) -> int:
        """Number of pages actually allocated by sparse storage."""
        return len(self._pages)

    def describe_map(self) -> str:
        """Render the memory map as a table (one region per line)."""
        return "\n".join(region.describe() for region in self._regions)


class MmioHandler:
    """Protocol for devices mapped into IO regions."""

    def mmio_read(self, offset: int, size: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def mmio_write(self, offset: int, value: int, size: int) -> None:  # pragma: no cover
        raise NotImplementedError
