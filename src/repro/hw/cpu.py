"""CPU core model for the dual-core Cortex-A7.

Each :class:`CpuCore` owns an architectural register file, a processor mode,
and an availability state. The hypervisor uses the state machine to model CPU
hotplug (bringing the non-root cell's core online), ``cpu_park()`` (the
reaction to an unhandled trap, error code 0x24 in the paper), and the
whole-system panic park.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import CpuStateError
from repro.hw.registers import (
    Register,
    RegisterFile,
    TrapContext,
    make_cpsr,
)


class CpuMode(enum.Enum):
    """ARMv7 processor modes relevant to the model."""

    USR = "usr"
    SVC = "svc"
    IRQ = "irq"
    HYP = "hyp"
    MON = "mon"


class CpuState(enum.Enum):
    """Availability state of a core."""

    OFFLINE = "offline"
    ONLINE = "online"
    WAIT_FOR_POWERON = "wait_for_poweron"
    PARKED = "parked"
    FAILED = "failed"


@dataclass(frozen=True)
class ParkRecord:
    """Why and when a CPU was parked.

    Frozen: :meth:`CpuCore.snapshot_state` shallow-copies the park history,
    so a mutable record would alias between a live core and its snapshots —
    a post-snapshot mutation would silently rewrite history inside every
    snapshot holding the record (and, through the prefix cache, inside every
    experiment forked from it).
    """

    timestamp: float
    reason: str
    error_code: Optional[int] = None


class CpuCore:
    """One core of the simulated board."""

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        self.registers = RegisterFile()
        self.mode = CpuMode.SVC
        self.state = CpuState.OFFLINE
        self.assigned_cell: Optional[int] = None
        self.park_history: List[ParkRecord] = []
        self._trap_entries = 0

    # -- lifecycle -------------------------------------------------------------

    def power_on(self, entry_point: int = 0x0, *, cell_id: Optional[int] = None) -> None:
        """Bring the core online at ``entry_point`` (models CPU hotplug)."""
        if self.state is CpuState.ONLINE:
            raise CpuStateError(f"CPU {self.cpu_id} is already online")
        self.registers.reset()
        self.registers.write(Register.PC, entry_point)
        self.registers.write(Register.CPSR, make_cpsr(0b10011, irq_masked=False))
        self.mode = CpuMode.SVC
        self.state = CpuState.ONLINE
        if cell_id is not None:
            self.assigned_cell = cell_id

    def power_off(self) -> None:
        """Take the core offline (models ``jailhouse cell shutdown``/hotunplug)."""
        self.state = CpuState.OFFLINE
        self.mode = CpuMode.SVC
        self.assigned_cell = None

    def park(self, reason: str, *, timestamp: float = 0.0,
             error_code: Optional[int] = None) -> None:
        """Park the core: it stops executing until reset (``cpu_park()``)."""
        self.state = CpuState.PARKED
        self.park_history.append(
            ParkRecord(timestamp=timestamp, reason=reason, error_code=error_code)
        )

    def fail(self, reason: str, *, timestamp: float = 0.0) -> None:
        """Mark the core as failed (fault left it in a non-executable state)."""
        self.state = CpuState.FAILED
        self.park_history.append(ParkRecord(timestamp=timestamp, reason=reason))

    def reset(self) -> None:
        """Warm reset: clears registers and returns the core to OFFLINE."""
        self.registers.reset()
        self.mode = CpuMode.SVC
        self.state = CpuState.OFFLINE
        self.assigned_cell = None

    # -- execution helpers -------------------------------------------------------

    @property
    def is_executing(self) -> bool:
        """Whether the core can currently run guest code."""
        return self.state is CpuState.ONLINE

    @property
    def is_parked(self) -> bool:
        return self.state is CpuState.PARKED

    def enter_trap(self, vector: str, hsr: int, *, timestamp: float = 0.0) -> TrapContext:
        """Capture the guest state into a :class:`TrapContext` at hypervisor entry.

        This models the CPU switching to HYP mode and the hypervisor saving the
        guest's registers on its per-CPU stack — the structure the paper's
        fault injector corrupts.
        """
        if self.state is not CpuState.ONLINE:
            raise CpuStateError(
                f"CPU {self.cpu_id} cannot trap in state {self.state.value}"
            )
        self.mode = CpuMode.HYP
        self._trap_entries += 1
        return TrapContext(
            cpu_id=self.cpu_id,
            registers=self.registers.snapshot(),
            hsr=hsr,
            exception_vector=vector,
            timestamp=timestamp,
        )

    def exit_trap(self, context: TrapContext) -> None:
        """Restore the (possibly corrupted) context and return to guest mode."""
        if self.state is not CpuState.ONLINE:
            # A handler may have parked or failed the CPU; nothing to restore.
            return
        # The context's register dict holds masked values for (at least) every
        # corruptible register; bulk-load it instead of rebuilding a dict via
        # 17 read() calls — this runs a few times per simulation step.
        self.registers.load_context(context.registers)
        self.mode = CpuMode.SVC

    @property
    def trap_entries(self) -> int:
        """Total number of hypervisor entries taken by this core."""
        return self._trap_entries

    # -- snapshot / restore -------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture architectural and availability state."""
        return {
            "registers": self.registers.snapshot(),
            "mode": self.mode,
            "state": self.state,
            "assigned_cell": self.assigned_cell,
            "park_history": list(self.park_history),
            "trap_entries": self._trap_entries,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a prior :meth:`snapshot_state` in place."""
        self.registers.load_context(state["registers"])
        self.mode = state["mode"]
        self.state = state["state"]
        self.assigned_cell = state["assigned_cell"]
        self.park_history = list(state["park_history"])
        self._trap_entries = state["trap_entries"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CpuCore(id={self.cpu_id}, state={self.state.value}, "
            f"mode={self.mode.value}, cell={self.assigned_cell})"
        )
