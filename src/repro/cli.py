"""Command-line front-end for the fault-injection framework.

Provides the day-to-day workflows as subcommands so a user can drive the
reproduction without writing Python:

* ``repro-fi golden``    — profile a fault-free run (handler call counts, output rates);
* ``repro-fi fig3``      — run the paper's medium-intensity Figure-3 campaign;
* ``repro-fi campaign``  — run a custom campaign (target, intensity, scenario, size);
* ``repro-fi run``       — run a declarative campaign from a TOML/JSON config
  file or a built-in catalog entry (``repro-fi run fig3``);
* ``repro-fi list``      — show every registered part (fault models, triggers,
  targets, scenarios, SUTs, classifiers) and catalog campaign;
* ``repro-fi report``    — re-render reports from a saved ``.jsonl`` record file;
* ``repro-fi analyze``   — streaming analysis of a saved record file: outcome
  distribution with Wilson CIs, availability, management findings,
  ``--group-by`` any record field, ``--convergence`` curves, and
  text/JSON/Markdown export — in one pass and O(1) memory, so
  million-record stores analyze in the same footprint as ten-record ones;
* ``repro-fi compare``   — side-by-side outcome comparison of two or more
  saved campaigns (per-outcome deltas, Figure-3 paper reference);
* ``repro-fi seooc``     — build the ISO 26262 SEooC evidence report from one or
  more saved campaigns;
* ``repro-fi watch``     — live dashboard for a record file another process is
  writing (the detached monitor; ``--watch`` on the campaign subcommands is
  the in-process variant);
* ``repro-fi bench-history`` — the perf trajectory: every committed version
  of the ``BENCH_*.json`` reports rendered per metric, with cross-machine
  entries flagged;
* ``repro-fi serve``        — the fleet coordinator: accepts campaign
  submissions, shards their plans, and leases shards (TTL + heartbeats,
  lost-host requeue, work stealing, host quarantine) to worker agents over
  the versioned ``repro-fleet/v1`` JSON/HTTP protocol; results merge
  idempotently by spec identity into atomic per-campaign record stores,
  and ``--resume`` recovers a killed coordinator losslessly;
* ``repro-fi fleet-worker`` — one worker agent: joins a coordinator, pulls
  shard leases, runs them through the ordinary campaign engine (all the
  engine flags compose), and submits the records back;
* ``repro-fi submit``       — send a campaign config to a running
  coordinator (``--wait`` polls until done, ``--output`` downloads the
  merged records);
* ``repro-fi fleet-status`` — one-shot fleet status (campaigns, shards,
  hosts, leases) as text or JSON;
* ``repro-fi merge``        — offline merge of record stores from several
  hosts, deduplicated by spec identity; same-identity records with
  different payloads are a hard error, never a silent pick.

Campaign subcommands grow three observability flags: ``--telemetry PATH``
streams structured ``repro-telemetry/v1`` events (per-experiment timing with
the prefix vs post-injection split, checkpoint flushes, queue depth) to a
JSONL file; ``--watch [PORT]`` serves a live HTML dashboard plus
``/metrics.json`` and an SSE event tail while the campaign runs
(``--watch-linger`` keeps it up afterwards); ``--progress-interval`` throttles
the ``--verbose`` progress lines, which go to stderr so stdout stays clean
for piping.

Every campaign can persist its records with ``--output records.jsonl`` so the
slow part (running experiments) is decoupled from analysis and reporting, the
same way the paper separates test execution from log analysis.

Campaign subcommands execute through the parallel engine: ``--jobs N`` fans
the plan out over N worker processes (``--jobs 0`` = one per CPU) with
results identical to a sequential run, and ``--resume PATH`` streams records
to an append-only checkpoint at PATH, skipping specs already recorded there —
a killed campaign picks up where it left off. ``--sut`` selects the system
under test by registry name (``jailhouse``, ``bao-like``, ``no-isolation``,
or any plugin-registered variant); spec identities do not depend on the SUT,
so the same checkpoint drives campaigns against every variant.
``--pooling``, ``--prefix-cache`` and ``--chunk-size`` tune execution speed
without changing any outcome — see the README's Performance guide.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.streaming import (
    PAPER_FIGURE3_REFERENCE,
    StreamingAnalyzer,
    analyze_records,
    compare_to_dict,
)
from repro.core.campaign import Campaign
from repro.core.config import (
    catalog_config,
    catalog_describe,
    catalog_keys,
    load_campaign_config,
)
from repro.core.experiment import Scenario
from repro.core.plan import (
    IntensityLevel,
    build_intensity_plan,
    paper_figure3_plan,
    paper_high_intensity_nonroot_plan,
    paper_high_intensity_root_plan,
)
from repro.core.outcomes import Outcome
from repro.core.recording import ExperimentRecord, RecordStore
from repro.core.registry import (
    CLASSIFIERS,
    FAULT_MODELS,
    GUESTS,
    RegistrySutFactory,
    SCENARIOS,
    SUTS,
    TARGETS,
    TRIGGERS,
    WORKLOADS,
)
from repro.core.report import (
    format_analysis,
    format_analysis_markdown,
    format_campaign_comparison,
    format_campaign_summary,
    format_distribution,
    format_figure3,
    format_management_report,
)
from repro.core.analysis import outcome_distribution
from repro.core.targets import InjectionTarget
from repro.engine import CampaignEngine
from repro.engine.scheduler import normalize_chunk_size
from repro.engine.supervisor import DEFAULT_RETRIES
from repro.errors import (
    AnalysisError,
    CampaignConfigError,
    CampaignError,
    CheckError,
    FleetError,
    FleetProtocolError,
    ObservabilityError,
    RegistryError,
)
from repro.obs.telemetry import Telemetry
from repro.hypervisor.handlers import ALL_HANDLERS
from repro.safety.evidence import build_evidence_report

#: Figure-3 reference shares used for side-by-side reporting.
PAPER_FIGURE3 = PAPER_FIGURE3_REFERENCE


def _build_target(handler: str, cpu: Optional[int]) -> InjectionTarget:
    cpus = None if cpu is None else {cpu}
    if handler == "all":
        return InjectionTarget(handlers=tuple(ALL_HANDLERS),
                               cpu_filter=frozenset(cpus) if cpus else None)
    return InjectionTarget(handlers=(handler,),
                           cpu_filter=frozenset(cpus) if cpus else None)


def _save_records(result, output: Optional[str]) -> None:
    if output:
        count = result.save(output)
        print(f"saved {count} records to {output}")


class _ProgressPrinter:
    """Per-experiment progress lines on stderr, optionally throttled.

    Progress goes to stderr so stdout carries only the report — piping
    ``repro-fi analyze --format json`` (or a campaign summary) into ``jq``
    or a file never interleaves live lines into the payload. With
    ``--progress-interval`` only one line per interval prints; the final
    completion always prints so a finished campaign never looks stuck at
    its last throttle window.
    """

    def __init__(self, interval: float = 0.0) -> None:
        self.interval = interval
        self._last_printed = float("-inf")

    def __call__(self, snapshot, result) -> None:
        now = time.monotonic()
        final = snapshot.completed >= snapshot.total
        if (not final and self.interval > 0
                and now - self._last_printed < self.interval):
            return
        self._last_printed = now
        print(f"  {snapshot.format_line()}  {result.outcome.value}",
              file=sys.stderr)


def _sut_factory(args, default: "str | RegistrySutFactory" = "jailhouse"):
    """Resolve the ``--sut`` flag (a registry key) to a picklable factory."""
    key = getattr(args, "sut", None)
    if key is not None:
        return RegistrySutFactory(key)
    if isinstance(default, str):
        return RegistrySutFactory(default)
    return default


def _parse_chunk_size(raw) -> "int | str | None":
    """Parse a ``--chunk-size`` value: a positive integer or ``auto``.

    Only string-to-int conversion lives here; the actual rule is the
    engine's :func:`~repro.engine.scheduler.normalize_chunk_size`, re-wrapped
    as a user-input error so the CLI reports it without a traceback.
    """
    if isinstance(raw, str) and raw != "auto":
        try:
            raw = int(raw)
        except ValueError:
            pass                         # let the shared validator reject it
    try:
        return normalize_chunk_size(raw)
    except CampaignError as exc:
        raise CampaignConfigError(f"--chunk-size: {exc}") from None


def _observability(plan, args):
    """Build the telemetry bus, hub and watch server the flags ask for.

    Returns ``(telemetry, hub, server)`` — any of them ``None`` when the
    corresponding flag is absent. ``--watch`` without ``--telemetry`` still
    gets a (sink-less) bus so the SSE event tail works; a bare campaign gets
    ``(None, None, None)`` and the engine's hot path stays untouched.
    """
    telemetry_path = getattr(args, "telemetry", None)
    telemetry = Telemetry(telemetry_path) if telemetry_path else None
    watch_port = getattr(args, "watch", None)
    if watch_port is None:
        return telemetry, None, None
    from repro.obs.rollup import TelemetryHub
    from repro.obs.server import WatchServer

    hub = TelemetryHub()
    hub.set_campaign(plan.name, total=len(plan),
                     jobs=getattr(args, "jobs", 1))
    if telemetry is None:
        telemetry = Telemetry()
    telemetry.subscribe(hub.on_event)
    server = WatchServer(
        hub, host=getattr(args, "watch_host", None) or "127.0.0.1",
        port=watch_port, title=plan.name).start()
    print(f"watch dashboard: {server.url}  "
          f"(metrics: {server.url}/metrics.json)", file=sys.stderr)
    return telemetry, hub, server


def _run_plan(plan, args, sut_factory=None, classifier=None,
              prefix_cache_default: bool = False,
              batch_default: bool = False,
              batch_size_default: "int | None" = None,
              chunk_size_default: "int | str | None" = None,
              timeout_default: "float | None" = None,
              retries_default: "int | None" = None,
              max_worker_restarts_default: "int | None" = None):
    """Execute a plan through the engine with the shared campaign flags.

    ``--prefix-cache/--no-prefix-cache``, ``--chunk-size``, ``--timeout``,
    ``--retries`` and ``--max-worker-restarts`` override the defaults (which
    ``repro-fi run`` takes from the campaign config). CLI campaigns always
    run supervised: a crashing or hanging spec is retried and then
    quarantined rather than taking the whole run down.
    """
    prefix_cache = getattr(args, "prefix_cache", None)
    if prefix_cache is None:
        prefix_cache = prefix_cache_default
    batch = getattr(args, "batch", None)
    if batch is None:
        batch = batch_default
    batch_size = getattr(args, "batch_size", None)
    if batch_size is None:
        batch_size = batch_size_default
    chunk_size = _parse_chunk_size(getattr(args, "chunk_size", None))
    if chunk_size is None:
        chunk_size = chunk_size_default
    timeout_s = getattr(args, "timeout", None)
    if timeout_s is None:
        timeout_s = timeout_default
    retries = getattr(args, "retries", None)
    if retries is None:
        retries = retries_default
    if retries is None:
        retries = DEFAULT_RETRIES
    max_worker_restarts = getattr(args, "max_worker_restarts", None)
    if max_worker_restarts is None:
        max_worker_restarts = max_worker_restarts_default
    telemetry, hub, server = _observability(plan, args)
    callbacks = []
    if args.verbose:
        callbacks.append(
            _ProgressPrinter(getattr(args, "progress_interval", 0.0) or 0.0))
    if hub is not None:
        callbacks.append(hub.on_progress)
    if not callbacks:
        progress = None
    elif len(callbacks) == 1:
        progress = callbacks[0]
    else:
        def progress(snapshot, result, _callbacks=tuple(callbacks)):
            for callback in _callbacks:
                callback(snapshot, result)
    try:
        engine = CampaignEngine(
            plan,
            jobs=args.jobs,
            sut_factory=sut_factory if sut_factory is not None else _sut_factory(args),
            classifier=classifier,
            checkpoint_path=args.resume,
            resume=args.resume is not None,
            chunk_size=chunk_size,
            pooling=getattr(args, "pooling", False),
            prefix_cache=prefix_cache,
            batch=batch,
            batch_size=batch_size,
            progress=progress,
            telemetry=telemetry,
            timeout_s=timeout_s,
            retries=retries,
            max_worker_restarts=max_worker_restarts,
            flush_interval_s=getattr(args, "flush_interval", 0.0) or 0.0,
        )
        result = engine.run()
        if hub is not None:
            hub.mark_done()
        if server is not None:
            linger = getattr(args, "watch_linger", 0.0) or 0.0
            if linger > 0:
                print(f"watch server lingering {linger:g} s at {server.url}",
                      file=sys.stderr)
                time.sleep(linger)
    finally:
        if server is not None:
            server.stop()
        if telemetry is not None:
            telemetry.close()
    stats = result.prefix_cache_stats()
    if stats["hits"] or stats["misses"]:
        executed = stats["hits"] + stats["misses"]
        print(f"prefix cache: {stats['hits']} hits / {stats['misses']} "
              f"misses ({stats['hits'] / executed:.0%} of cached "
              f"experiments fast-forwarded)", file=sys.stderr)
    batch_stats = result.batch_stats()
    if batch_stats["batched"]:
        lockstep = batch_stats["batched"] - batch_stats["evicted"]
        print(f"batching: {batch_stats['batched']} experiments in lockstep "
              f"batches ({lockstep} stayed in lockstep, "
              f"{batch_stats['evicted']} evicted to scalar replay, "
              f"{batch_stats['scalar']} ran scalar)", file=sys.stderr)
    if engine.reoffered:
        print(f"re-offered {engine.reoffered} previously quarantined "
              f"spec(s) from {engine.quarantine.path}", file=sys.stderr)
    if engine.infra_counts:
        summary = ", ".join(f"{kind}={count}" for kind, count
                            in sorted(engine.infra_counts.items()))
        print(f"fault tolerance: {summary}", file=sys.stderr)
    quarantined = result.quarantined()
    if quarantined:
        names = ", ".join(entry.spec_name for entry in quarantined)
        where = (f" (details: {engine.quarantine.path})"
                 if engine.quarantine is not None else "")
        print(f"WARNING: {len(quarantined)} spec(s) quarantined without a "
              f"verdict: {names}{where}", file=sys.stderr)
    return result


def cmd_golden(args: argparse.Namespace) -> int:
    plan = paper_figure3_plan(num_tests=1, duration=1.0)
    golden = Campaign(plan, sut_factory=_sut_factory(args)).golden_run(
        duration=args.duration, seed=args.seed)
    print("golden (fault-free) run")
    print(f"  duration          : {golden.duration:.0f} s")
    print(f"  outcome           : {golden.outcome.value}")
    print(f"  handler calls     : {golden.handler_calls}")
    print(f"  non-root cell out : {golden.target_cell_lines} lines")
    print(f"  root cell output  : {golden.root_cell_lines} lines")
    return 0 if golden.healthy else 1


def cmd_fig3(args: argparse.Namespace) -> int:
    plan = paper_figure3_plan(num_tests=args.tests, duration=args.duration,
                              base_seed=args.seed)
    result = _run_plan(plan, args)
    print(format_figure3(result.to_records(), paper_reference=PAPER_FIGURE3))
    _save_records(result, args.output)
    return 0


# Scenario choices come from the registry, so every registered scenario —
# including ``park-and-recover``, which the hand-written dict this replaced
# had left unreachable — is selectable from the CLI.
_SCENARIOS = {key: SCENARIOS.build(key) for key in SCENARIOS.keys()}


def cmd_campaign(args: argparse.Namespace) -> int:
    intensity = IntensityLevel(args.intensity)
    target = _build_target(args.handler, args.cpu)
    plan = build_intensity_plan(
        intensity, target,
        num_tests=args.tests,
        scenario=_SCENARIOS[args.scenario],
        duration=args.duration,
        base_seed=args.seed,
        name=args.name or f"cli-{intensity.value}-{target.describe()}",
    )
    result = _run_plan(plan, args)
    print(format_campaign_summary(result))
    _save_records(result, args.output)
    return 0


def _resolve_campaign_config(name_or_path: str, *,
                             tests: Optional[int] = None,
                             duration: Optional[float] = None,
                             seed: Optional[int] = None):
    """Load a campaign config from a file path or the catalog, with the
    shared ``--tests/--duration/--seed`` overrides applied. Used by
    ``run`` (local execution) and ``submit``/``serve`` (fleet execution),
    so a campaign means the same thing on every path."""
    if Path(name_or_path).exists():
        config = load_campaign_config(name_or_path)
    else:
        try:
            config = catalog_config(name_or_path)
        except CampaignConfigError as exc:
            raise CampaignConfigError(
                f"{name_or_path!r} is neither a config file nor a catalog "
                f"entry. {exc}"
            ) from None
    if tests is not None:
        # For a random-sampling config the experiment count is sample_size,
        # not tests-per-grid-point; override whichever one sizes the run.
        if config.sampling == "random":
            config.sample_size = tests
        else:
            config.tests = tests
    if duration is not None:
        config.duration = duration
    if seed is not None:
        config.base_seed = seed
    return config


def cmd_run(args: argparse.Namespace) -> int:
    """Run a declarative campaign from a config file or catalog entry."""
    config = _resolve_campaign_config(args.config, tests=args.tests,
                                      duration=args.duration, seed=args.seed)
    plan = config.compile()
    if args.verbose:
        print(config.describe())
        print(plan.describe())
    result = _run_plan(
        plan, args,
        sut_factory=config.sut_factory(override=args.sut),
        classifier=config.build_classifier(),
        prefix_cache_default=config.prefix_cache,
        batch_default=config.batch,
        batch_size_default=config.batch_size,
        chunk_size_default=config.chunk_size,
        timeout_default=config.timeout_s,
        retries_default=config.retries,
        max_worker_restarts_default=config.max_worker_restarts,
    )
    print(format_campaign_summary(result))
    _save_records(result, args.output)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """Show every registered campaign part and catalog entry."""
    sections = [
        ("catalog campaigns (repro-fi run <name>)", catalog_describe()),
        ("SUTs (--sut / [campaign] sut)", SUTS.describe()),
        ("scenarios", SCENARIOS.describe()),
        ("injection targets", TARGETS.describe()),
        ("triggers", TRIGGERS.describe()),
        ("fault models", FAULT_MODELS.describe()),
        ("outcome classifiers", CLASSIFIERS.describe()),
        ("guests", GUESTS.describe()),
        ("workloads", WORKLOADS.describe()),
    ]
    for title, lines in sections:
        print(f"{title}:")
        for line in lines:
            print(f"  {line}")
        print()
    return 0


def _open_record_stream(path: str) -> Optional[Iterator[ExperimentRecord]]:
    """Open one validated streaming iterator over a record file.

    Returns ``None`` when the file is missing or holds no records; emptiness
    is detected by peeking at the first record (re-chained onto the
    iterator), so the file is read exactly once.
    """
    store = RecordStore(path)
    if not store.path.exists():
        return None
    records = store.iter_records()
    first = next(records, None)
    if first is None:
        return None
    return itertools.chain([first], records)


def _open_record_streams(
        paths: Sequence[str],
) -> Tuple[Dict[str, Iterator[ExperimentRecord]], List[str]]:
    """Open one validated stream per campaign file, keyed by a unique name.

    Shared by ``compare`` and ``seooc``: every missing or empty path becomes
    a problem string (callers treat any problem as a hard error — a typo'd
    path must never silently drop a campaign), the same file given twice is
    rejected rather than double-counted, and distinct files whose stems
    collide fall back to their full paths as names.
    """
    streams: Dict[str, Iterator[ExperimentRecord]] = {}
    problems: List[str] = []
    seen_files = set()
    for path in paths:
        resolved = Path(path).resolve()
        if resolved in seen_files:
            problems.append(f"record file given more than once: {path}")
            continue
        seen_files.add(resolved)
        records = _open_record_stream(path)
        if records is None:
            kind = ("does not exist" if not Path(path).exists()
                    else "contains no records")
            problems.append(f"record file {kind}: {path}")
            continue
        name = Path(path).stem
        if name in streams:
            name = path         # stem collision across directories
        streams[name] = records
    return streams, problems


def cmd_report(args: argparse.Namespace) -> int:
    records = _open_record_stream(args.records)
    if records is None:
        print(f"no records found in {args.records}", file=sys.stderr)
        return 1
    # One streaming pass: each style consumes the iterator exactly once.
    if args.style == "figure3":
        print(format_figure3(records, paper_reference=PAPER_FIGURE3))
    elif args.style == "management":
        print(format_management_report(records, title=f"records: {args.records}"))
    else:
        print(format_distribution(outcome_distribution(records),
                                  title=f"records: {args.records}"))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    store = RecordStore(args.records)
    if not store.path.exists():
        print(f"error: record file does not exist: {args.records}",
              file=sys.stderr)
        return 1
    analysis = analyze_records(
        store.iter_records(errors="skip" if args.skip_malformed else "strict"),
        group_key=args.group_by,
        convergence_outcome=(Outcome(args.convergence)
                             if args.convergence else None),
        source=args.records,
    )
    skipped = 0
    if args.skip_malformed:
        # count() counts every non-blank line, parsed or not, so the
        # difference is exactly how many lines the skip policy dropped —
        # never silently: the analysis must not look complete when it isn't.
        skipped = store.count() - analysis.total
        if skipped:
            print(f"warning: skipped {skipped} malformed record line(s) "
                  f"in {args.records}", file=sys.stderr)
    if analysis.total == 0:
        print(f"no records found in {args.records}", file=sys.stderr)
        return 1
    if args.format == "json":
        payload = analysis.to_dict()
        if args.skip_malformed:
            payload["skipped_lines"] = skipped
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "markdown":
        print(format_analysis_markdown(analysis))
    else:
        print(format_analysis(analysis, title=f"records: {args.records}"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    if len(args.records) < 2:
        print("error: compare needs at least two record files",
              file=sys.stderr)
        return 2
    streams, problems = _open_record_streams(args.records)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    analyses = {name: StreamingAnalyzer().extend(records)
                for name, records in streams.items()}
    if args.format == "json":
        print(json.dumps(
            compare_to_dict(analyses, paper_reference=PAPER_FIGURE3),
            indent=2, sort_keys=True))
    else:
        print(format_campaign_comparison(analyses,
                                         paper_reference=PAPER_FIGURE3))
    return 0


def _tail_lines(path: Path, *, poll_s: float, deadline: float,
                on_rotate=None):
    """Yield complete lines appended to ``path`` until ``deadline``.

    Reads from a remembered byte offset and only yields newline-terminated
    lines, so a record the campaign is mid-way through writing is never
    parsed half-done; the partial tail stays buffered until its newline
    arrives. The file may not exist yet — the tailer waits for it.

    The file shrinking under the reader (rotation, truncation, or the
    engine's atomic checkpoint rewrite landing a shorter file) is tolerated:
    the tailer re-seeks to offset 0, drops its partial-line buffer, and
    calls ``on_rotate(previous_offset, new_size)`` so the caller can log it.
    """
    offset = 0
    buffer = b""
    while True:
        if path.exists():
            size = path.stat().st_size
            if size < offset:
                if on_rotate is not None:
                    on_rotate(offset, size)
                offset = 0
                buffer = b""
            with path.open("rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            if chunk:
                offset += len(chunk)
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield line.decode("utf-8")
        if time.monotonic() >= deadline:
            return
        time.sleep(poll_s)


def cmd_watch(args: argparse.Namespace) -> int:
    """Serve the live dashboard for a record file another process writes.

    This is the detached-monitor mode: a campaign checkpointing to
    ``records.jsonl`` (via ``--resume`` or ``--output``) can be watched from
    a second terminal — or a CI job — without the campaign knowing. The
    in-process variant is ``--watch`` on the campaign subcommands.
    """
    from repro.engine.aggregate import LiveAggregator
    from repro.obs.rollup import TelemetryHub
    from repro.obs.server import WatchServer

    records_path = Path(args.records)
    hub = TelemetryHub()
    hub.set_campaign(records_path.stem, total=args.total,
                     source=str(records_path))
    bus = Telemetry()
    bus.subscribe(hub.on_event)

    def on_rotate(previous_offset: int, size: int) -> None:
        print(f"warning: {records_path} shrank from {previous_offset} to "
              f"{size} bytes (rotated or truncated); re-tailing from the "
              f"start", file=sys.stderr)
        # repro: allow[telemetry-guard] -- the hub subscribed right above keeps this bus permanently active
        bus.emit("file_rotated", path=str(records_path),
                 previous_offset=previous_offset, size=size)

    aggregator = LiveAggregator(args.total)
    deadline = (time.monotonic() + args.timeout
                if args.timeout is not None else float("inf"))
    with WatchServer(hub, host=getattr(args, "watch_host", None) or "127.0.0.1",
                     port=args.port,
                     title=f"watch: {records_path.name}") as server:
        print(f"watch dashboard: {server.url}  "
              f"(metrics: {server.url}/metrics.json)", file=sys.stderr)
        seen = 0
        try:
            for line in _tail_lines(records_path, poll_s=args.poll,
                                    deadline=deadline, on_rotate=on_rotate):
                try:
                    record = ExperimentRecord.from_json(line)
                except AnalysisError as exc:
                    print(f"warning: skipping malformed record line: {exc}",
                          file=sys.stderr)
                    continue
                result = record.to_result()
                hub.on_progress(aggregator.update(result), result)
                seen += 1
                if args.total and seen >= args.total:
                    break
        except KeyboardInterrupt:
            pass
        hub.mark_done()
    if seen == 0:
        print(f"no records observed in {records_path}", file=sys.stderr)
        return 1
    print(aggregator.snapshot().summary())
    return 0


def cmd_bench_history(args: argparse.Namespace) -> int:
    """Render the perf trajectory of the committed ``BENCH_*.json`` files."""
    from repro.obs.bench_history import (
        collect_bench_history,
        format_history_markdown,
        format_history_text,
    )

    history = collect_bench_history(args.root, include_git=not args.no_git)
    if args.format == "json":
        print(json.dumps(history.to_dict(), indent=2, sort_keys=True))
    elif args.format == "markdown":
        print(format_history_markdown(history, metric_filter=args.metric))
    else:
        print(format_history_text(history, metric_filter=args.metric))
    return 0


def cmd_seooc(args: argparse.Namespace) -> int:
    # Every path must exist, contain records, and appear only once: the
    # evidence report backs a certification argument, so a typo'd path
    # silently dropping a whole campaign (with exit 0) — or the same file
    # double-counted under two names — is the worst possible failure mode.
    records_by_campaign, problems = _open_record_streams(args.records)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    report = build_evidence_report(records_by_campaign)
    print(report.render())
    return 0 if report.certification_ready else 2


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the fleet coordinator until interrupted (or --until-done)."""
    from repro.fleet.coordinator import FleetCoordinator, FleetServer

    state_dir = Path(args.state_dir)
    telemetry = Telemetry(args.telemetry) if args.telemetry else None
    hub = watch_server = None
    if args.watch is not None:
        from repro.obs.rollup import TelemetryHub
        from repro.obs.server import WatchServer

        hub = TelemetryHub()
        hub.set_campaign("fleet", total=0, source=str(state_dir))
        if telemetry is None:
            telemetry = Telemetry()
        telemetry.subscribe(hub.on_event)
    coordinator = FleetCoordinator(
        state_dir,
        lease_ttl_s=args.lease_ttl,
        heartbeat_interval_s=args.heartbeat_interval,
        steal_after_s=args.steal_after,
        shard_size=args.shard_size,
        host_failure_limit=args.host_failure_limit,
        telemetry=telemetry,
    )
    if hub is not None:
        # Feed each freshly merged record into the hub's aggregate view, so
        # the fleet dashboard shows live outcome bars, not just merge counts.
        from repro.engine.aggregate import LiveAggregator

        aggregator = LiveAggregator(0)

        def on_record(record: ExperimentRecord) -> None:
            result = record.to_result()
            hub.on_progress(aggregator.update(result), result)

        coordinator.on_record = on_record
    if args.resume:
        recovered = coordinator.resume()
        print(f"resumed {recovered} campaign(s) from "
              f"{coordinator.state_path}", file=sys.stderr)
    elif coordinator.state_path.exists():
        raise FleetError(
            f"{coordinator.state_path} already holds fleet state; pass "
            f"--resume to recover it or point --state-dir somewhere fresh "
            f"(refusing to silently overwrite journaled campaigns)")
    for entry in args.config or []:
        campaign_id = coordinator.submit(_resolve_campaign_config(entry))
        print(f"campaign {campaign_id} queued", file=sys.stderr)
    server = FleetServer(coordinator, host=args.host,
                         port=args.port).start()
    try:
        if hub is not None:
            watch_server = WatchServer(
                hub, host=getattr(args, "watch_host", None) or "127.0.0.1",
                port=args.watch, title="repro-fi fleet").start()
            print(f"watch dashboard: {watch_server.url}  "
                  f"(metrics: {watch_server.url}/metrics.json)",
                  file=sys.stderr)
        print(f"fleet coordinator: {server.url}  (state: {state_dir})",
              file=sys.stderr)
        print(f"workers join with: repro-fi fleet-worker {server.url}",
              file=sys.stderr)
        while True:
            time.sleep(0.2)
            if args.until_done and coordinator.all_done():
                # Keep serving briefly so waiting submitters observe the
                # done state and download their records before we go away.
                print(f"all campaigns complete; lingering "
                      f"{args.linger:g} s for waiting clients",
                      file=sys.stderr)
                time.sleep(args.linger)
                break
    except KeyboardInterrupt:
        print("interrupted; flushing state", file=sys.stderr)
    finally:
        if watch_server is not None:
            watch_server.stop()
        server.stop()
        if telemetry is not None:
            telemetry.close()
    status = coordinator.status()
    for campaign in status["campaigns"]:
        print(f"  {campaign['campaign_id']}: {campaign['merged']}/"
              f"{campaign['total']} merged -> {campaign['records']}")
    return 0


def cmd_fleet_worker(args: argparse.Namespace) -> int:
    """Run one worker agent against a coordinator URL."""
    from repro.fleet.worker import FleetWorkerAgent

    agent = FleetWorkerAgent(
        args.url,
        host=args.name,
        jobs=args.jobs,
        pooling=getattr(args, "pooling", False),
        prefix_cache=args.prefix_cache,
        batch=args.batch,
        batch_size=args.batch_size,
        chunk_size=_parse_chunk_size(getattr(args, "chunk_size", None)),
        timeout_s=args.timeout,
        retries=args.retries,
        max_worker_restarts=args.max_worker_restarts,
        sut=args.sut,
        poll_s=args.poll,
        offline_grace_s=args.offline_grace,
        until_done=args.until_done,
        max_shards=args.max_shards,
        log=(lambda message: print(message, file=sys.stderr))
        if args.verbose else None,
    )
    try:
        stats = agent.run()
    except KeyboardInterrupt:
        agent.stop()
        stats = dict(agent.stats)
        print("interrupted", file=sys.stderr)
    print(f"worker {agent.host}: {stats['shards']} shard(s), "
          f"{stats['records']} record(s) submitted "
          f"({stats['merged']} merged, {stats['duplicates']} duplicate)")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a campaign to a running coordinator; optionally wait for it."""
    from repro.fleet.protocol import FleetClient

    config = _resolve_campaign_config(args.config, tests=args.tests,
                                      duration=args.duration, seed=args.seed)
    client = FleetClient(args.url)
    response = client.submit_campaign(config=config.to_dict())
    campaign_id = response["campaign_id"]
    print(f"campaign {campaign_id} submitted to {args.url}")
    if not args.wait:
        return 0
    last_merged = -1
    while True:
        status = client.status()
        mine = [campaign for campaign in status["campaigns"]
                if campaign["campaign_id"] == campaign_id]
        if not mine:
            raise FleetError(
                f"coordinator no longer reports campaign {campaign_id!r} "
                f"(restarted without --resume?)")
        campaign = mine[0]
        if campaign["merged"] != last_merged:
            last_merged = campaign["merged"]
            print(f"  {campaign['merged']}/{campaign['total']} merged",
                  file=sys.stderr)
        if campaign["done"]:
            break
        time.sleep(args.poll)
    print(f"campaign {campaign_id} complete")
    if args.output:
        records = client.records(campaign_id)
        count = RecordStore(args.output).replace_all(
            ExperimentRecord.from_json(json.dumps(record, sort_keys=True))
            for record in records)
        print(f"saved {count} records to {args.output}")
    return 0


def cmd_fleet_status(args: argparse.Namespace) -> int:
    """One-shot fleet status from a running coordinator."""
    from repro.fleet.protocol import FleetClient

    status = FleetClient(args.url).status()
    if args.format == "json":
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    shards = status["shards"]
    print(f"fleet at {args.url}: {status['state']}  "
          f"(lease TTL {status['lease_ttl_s']:g}s, heartbeat "
          f"{status['heartbeat_interval_s']:g}s, shard size "
          f"{status['shard_size']})")
    print(f"shards: {shards['pending']} pending, {shards['leased']} leased, "
          f"{shards['done']} done")
    print("campaigns:")
    for campaign in status["campaigns"]:
        state = "done" if campaign["done"] else "running"
        print(f"  {campaign['campaign_id']}: {campaign['merged']}/"
              f"{campaign['total']} merged  [{state}]")
    if not status["campaigns"]:
        print("  (none submitted)")
    print("hosts:")
    for host in status["hosts"]:
        flags = " QUARANTINED" if host["quarantined"] else ""
        print(f"  {host['host_id']} {host['host']} (pid {host['pid']}): "
              f"{host['shards_done']} shard(s) done, "
              f"{host['failures']} lease(s) lost{flags}")
    if not status["hosts"]:
        print("  (none joined)")
    for lease in status["leases"]:
        print(f"  lease {lease['lease_id']}: shard {lease['shard_id']} -> "
              f"{lease['host']} ({lease['completed']} done)")
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    """Merge record stores from several hosts, deduped by spec identity."""
    from repro.fleet.merge import merge_stores

    for path in args.inputs:
        if not Path(path).exists():
            print(f"error: record file does not exist: {path}",
                  file=sys.stderr)
            return 1
    stats = merge_stores(args.inputs, args.output)
    for path, count in stats.per_input:
        print(f"  {path}: {count} record(s)", file=sys.stderr)
    print(f"merged {stats.read} record(s) from {stats.inputs} file(s) into "
          f"{args.output}: {stats.written} unique, "
          f"{stats.duplicates} duplicate(s) collapsed")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Static contract checker over the source tree (never imports it)."""
    from repro.check import (Project, load_baseline, render_text, run_check,
                             to_payload, write_baseline)
    from repro.check.baseline import DEFAULT_BASELINE_NAME

    root = Path(args.root).resolve() if args.root else None
    project = Project.load(root=root)
    baseline_path = (Path(args.baseline) if args.baseline
                     else Path(project.root) / DEFAULT_BASELINE_NAME)
    rules = args.rule or None
    if args.write_baseline:
        result = run_check(project, rules)
        count = write_baseline(baseline_path, result.active)
        print(f"wrote {count} finding(s) to {baseline_path}")
        return 0
    result = run_check(project, rules, baseline=load_baseline(baseline_path))
    if args.format == "json":
        print(json.dumps(to_payload(result), indent=2))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fi",
        description="Fault-injection assessment of a partitioning hypervisor "
                    "(reproduction of Cinque et al., DSN 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sut_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument("--sut", metavar="KEY",
                            help="system under test, by registry name "
                                 "(jailhouse, bao-like, no-isolation, ...); "
                                 "see 'repro-fi list'")

    def add_engine_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument("--output", help="write records to this .jsonl file")
        command.add_argument("--jobs", type=int, default=1,
                             help="worker processes (0 = one per CPU)")
        command.add_argument("--resume", metavar="PATH",
                             help="checkpoint records to PATH and skip specs "
                                  "already recorded there")
        command.add_argument("--pooling", action="store_true",
                             help="reuse one booted SUT per worker via "
                                  "snapshot/restore instead of cold-booting "
                                  "every experiment (outcomes are identical)")
        command.add_argument("--prefix-cache",
                             action=argparse.BooleanOptionalAction,
                             default=None,
                             help="execute each distinct pre-injection prefix "
                                  "once and fork all fault variants from its "
                                  "snapshot (records are identical to cold "
                                  "execution; implies --pooling); "
                                  "--no-prefix-cache overrides a config that "
                                  "enables it")
        command.add_argument("--batch",
                             action=argparse.BooleanOptionalAction,
                             default=None,
                             help="step all fault variants of a prefix "
                                  "family through one shared simulation in "
                                  "lockstep until their injectors fire "
                                  "(records are identical to scalar "
                                  "execution; implies --prefix-cache); "
                                  "--no-batch overrides a config that "
                                  "enables it")
        command.add_argument("--batch-size", type=int, default=None,
                             metavar="N",
                             help="max lanes per lockstep batch "
                                  "(default 16); only meaningful with "
                                  "--batch")
        command.add_argument("--chunk-size", metavar="N|auto",
                             help="experiments per pool task (default 1: "
                                  "every completion streams/checkpoints "
                                  "immediately; with --prefix-cache and "
                                  "--jobs>1 tasks are whole prefix families, "
                                  "so that is the streaming granularity); "
                                  "'auto' sizes tasks for very short "
                                  "experiments")
        command.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="per-experiment wall-clock watchdog: a "
                                  "hung experiment is killed after SECONDS "
                                  "and retried, then quarantined as "
                                  "infra_timeout (default: no timeout)")
        command.add_argument("--retries", type=int, default=None,
                             metavar="N",
                             help="re-run a crashed/hung/erroring spec up "
                                  "to N times (same seed, exponential "
                                  "backoff) before quarantining it "
                                  "(default 1)")
        command.add_argument("--max-worker-restarts", type=int, default=None,
                             metavar="N",
                             help="campaign-wide budget of unexpected "
                                  "worker-death respawns (default 8); "
                                  "deliberate --timeout kills are not "
                                  "counted")
        command.add_argument("--flush-interval", type=float, default=0.0,
                             metavar="SECONDS",
                             help="batch atomic checkpoint flushes to at "
                                  "most one per SECONDS (default 0: every "
                                  "completed experiment flushes before the "
                                  "campaign moves on)")
        command.add_argument("--verbose", action="store_true")
        command.add_argument("--progress-interval", type=float, default=0.0,
                             metavar="SECONDS",
                             help="with --verbose: print at most one "
                                  "progress line per SECONDS (default 0: "
                                  "every completion); the final line always "
                                  "prints")
        command.add_argument("--telemetry", metavar="PATH",
                             help="write structured telemetry events "
                                  "(repro-telemetry/v1 JSONL) to PATH: "
                                  "campaign start/end, per-experiment "
                                  "timing with prefix/post-injection "
                                  "split, checkpoint flushes")
        command.add_argument("--watch", nargs="?", const=0, type=int,
                             default=None, metavar="PORT",
                             help="serve a live dashboard while the "
                                  "campaign runs: / (HTML), /metrics.json, "
                                  "/dashboard.txt, /events (SSE); PORT "
                                  "defaults to an ephemeral one, printed "
                                  "on stderr")
        command.add_argument("--watch-host", metavar="ADDR", default=None,
                             help="bind address for the --watch dashboard "
                                  "(default 127.0.0.1: loopback only; "
                                  "binding 0.0.0.0 exposes the dashboard "
                                  "to the network — it has no auth)")
        command.add_argument("--watch-linger", type=float, default=0.0,
                             metavar="SECONDS",
                             help="keep the --watch server up SECONDS "
                                  "after the campaign finishes (so CI or "
                                  "a slow browser can grab the final "
                                  "state)")

    golden = sub.add_parser("golden", help="profile a fault-free run")
    golden.add_argument("--duration", type=float, default=20.0)
    golden.add_argument("--seed", type=int, default=999_983)
    add_sut_flag(golden)
    golden.set_defaults(func=cmd_golden)

    fig3 = sub.add_parser("fig3", help="run the paper's Figure-3 campaign")
    fig3.add_argument("--tests", type=int, default=40)
    fig3.add_argument("--duration", type=float, default=60.0)
    fig3.add_argument("--seed", type=int, default=0)
    add_sut_flag(fig3)
    add_engine_flags(fig3)
    fig3.set_defaults(func=cmd_fig3)

    campaign = sub.add_parser("campaign", help="run a custom campaign")
    campaign.add_argument("--intensity", choices=["medium", "high"],
                          default="medium")
    campaign.add_argument("--handler",
                          choices=list(ALL_HANDLERS) + ["all"],
                          default="arch_handle_trap")
    campaign.add_argument("--cpu", type=int, default=1,
                          help="CPU filter (omit with --cpu -1 for no filter)")
    campaign.add_argument("--scenario", choices=sorted(_SCENARIOS),
                          default="steady-state")
    campaign.add_argument("--tests", type=int, default=20)
    campaign.add_argument("--duration", type=float, default=30.0)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--name")
    add_sut_flag(campaign)
    add_engine_flags(campaign)
    campaign.set_defaults(func=cmd_campaign)

    run = sub.add_parser(
        "run", help="run a declarative campaign from a TOML/JSON config "
                    "file or a catalog entry")
    run.add_argument("config",
                     help="path to a campaign config (.toml/.json) or a "
                          "catalog name (see 'repro-fi list')")
    run.add_argument("--tests", type=int,
                     help="override the config's per-combination test count "
                          "(for random-sampling configs: the sample size)")
    run.add_argument("--duration", type=float,
                     help="override the config's per-test duration")
    run.add_argument("--seed", type=int,
                     help="override the config's base seed")
    add_sut_flag(run)
    add_engine_flags(run)
    run.set_defaults(func=cmd_run)

    listing = sub.add_parser(
        "list", help="show registered fault models, triggers, targets, "
                     "scenarios, SUTs, and catalog campaigns")
    listing.set_defaults(func=cmd_list)

    report = sub.add_parser("report", help="render reports from saved records")
    report.add_argument("records", help="path to a .jsonl record file")
    report.add_argument("--style", choices=["distribution", "figure3", "management"],
                        default="distribution")
    report.set_defaults(func=cmd_report)

    analyze = sub.add_parser(
        "analyze",
        help="streaming analysis of saved records (single pass, O(1) memory)")
    analyze.add_argument("records", help="path to a .jsonl record file")
    analyze.add_argument("--group-by", metavar="FIELD",
                         choices=sorted(ExperimentRecord.__dataclass_fields__),
                         help="break the analysis down by a record field "
                              "(target, intensity, fault_model, scenario, "
                              "seed, ...)")
    analyze.add_argument("--format", choices=["text", "json", "markdown"],
                         default="text",
                         help="text (default; identical to 'repro-fi report' "
                              "when no extra analyses are requested), "
                              "machine-readable JSON, or Markdown")
    analyze.add_argument("--convergence", metavar="OUTCOME",
                         choices=[outcome.value for outcome in Outcome],
                         help="add a convergence curve: the share of OUTCOME "
                              "after the first 10/20/50/100/... records "
                              "(how many tests the campaign needed before "
                              "its shares stabilized)")
    analyze.add_argument("--skip-malformed", action="store_true",
                         help="skip malformed record lines instead of "
                              "failing on the first one (for salvaging "
                              "stores from killed campaigns)")
    analyze.set_defaults(func=cmd_analyze)

    compare = sub.add_parser(
        "compare",
        help="side-by-side outcome comparison of two or more campaigns")
    compare.add_argument("records", nargs="+",
                         help="two or more .jsonl record files (one per "
                              "campaign); deltas are relative to the first")
    compare.add_argument("--format", choices=["text", "json"], default="text")
    compare.set_defaults(func=cmd_compare)

    watch = sub.add_parser(
        "watch",
        help="serve the live dashboard for a record file another process "
             "is writing (detached monitor for --resume/--output campaigns)")
    watch.add_argument("records",
                       help="path to the .jsonl record file to tail "
                            "(may not exist yet)")
    watch.add_argument("--port", type=int, default=0,
                       help="HTTP port (default: ephemeral, printed on "
                            "stderr)")
    watch.add_argument("--watch-host", metavar="ADDR", default=None,
                       help="bind address (default 127.0.0.1: loopback "
                            "only; binding 0.0.0.0 exposes the dashboard "
                            "to the network — it has no auth)")
    watch.add_argument("--total", type=int, default=0,
                       help="expected experiment count (for progress "
                            "display; watch exits once reached)")
    watch.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="exit after SECONDS (default: run until "
                            "interrupted or --total is reached)")
    watch.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                       help="file poll interval (default 0.5)")
    watch.set_defaults(func=cmd_watch)

    bench_history = sub.add_parser(
        "bench-history",
        help="perf trajectory: every committed version of the BENCH_*.json "
             "reports, per-metric, flagged when entries span machines")
    bench_history.add_argument("--root", default=".",
                               help="repository root holding the "
                                    "BENCH_*.json files (default: .)")
    bench_history.add_argument("--format",
                               choices=["text", "json", "markdown"],
                               default="text")
    bench_history.add_argument("--metric", metavar="SUBSTRING",
                               help="only show metrics whose dotted name "
                                    "contains SUBSTRING")
    bench_history.add_argument("--no-git", action="store_true",
                               help="worktree files only; skip git history")
    bench_history.set_defaults(func=cmd_bench_history)

    seooc = sub.add_parser("seooc", help="build the SEooC evidence report")
    seooc.add_argument("records", nargs="+",
                       help="one or more .jsonl record files (one per campaign)")
    seooc.set_defaults(func=cmd_seooc)

    serve = sub.add_parser(
        "serve",
        help="run the fleet coordinator: accept campaign submissions, "
             "lease plan shards to fleet-worker agents (repro-fleet/v1), "
             "merge results idempotently, survive restarts via --resume")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1: loopback "
                            "only; bind 0.0.0.0 to accept workers from "
                            "other machines — the protocol has no auth, "
                            "so only on trusted networks)")
    serve.add_argument("--port", type=int, default=0,
                       help="HTTP port (default: ephemeral, printed on "
                            "stderr)")
    serve.add_argument("--state-dir", default="fleet-state", metavar="DIR",
                       help="where campaign journal (state.json) and "
                            "per-campaign record checkpoints live "
                            "(default: fleet-state)")
    serve.add_argument("--resume", action="store_true",
                       help="recover journaled campaigns from --state-dir: "
                            "finished specs stay merged, only unfinished "
                            "work is re-offered")
    serve.add_argument("--config", action="append", metavar="CONFIG",
                       help="queue a campaign at startup (config path or "
                            "catalog name; repeatable); more can be "
                            "submitted later with 'repro-fi submit'")
    serve.add_argument("--shard-size", type=int, default=8, metavar="N",
                       help="max specs per lease shard (default 8); whole "
                            "prefix families stay together so worker-side "
                            "--prefix-cache/--batch keep working")
    serve.add_argument("--lease-ttl", type=float, default=15.0,
                       metavar="SECONDS",
                       help="lease expires if not renewed by a heartbeat "
                            "within SECONDS (default 15); expired shards "
                            "requeue with exponential backoff")
    serve.add_argument("--heartbeat-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="heartbeat cadence workers are told to use "
                            "(default 5 = TTL/3: a lease survives two "
                            "dropped heartbeats, not three)")
    serve.add_argument("--steal-after", type=float, default=None,
                       metavar="SECONDS",
                       help="an idle worker may steal a leased shard whose "
                            "holder reported no progress for SECONDS "
                            "(default: the lease TTL)")
    serve.add_argument("--host-failure-limit", type=int, default=2,
                       metavar="N",
                       help="quarantine a host (by name — rejoining does "
                            "not reset it) after it loses the same shard "
                            "N times (default 2)")
    serve.add_argument("--until-done", action="store_true",
                       help="exit once every submitted campaign is "
                            "complete (for CI and scripts; default: serve "
                            "until interrupted)")
    serve.add_argument("--linger", type=float, default=3.0,
                       metavar="SECONDS",
                       help="with --until-done: keep serving SECONDS after "
                            "completion so 'submit --wait' clients can "
                            "fetch their records (default 3)")
    serve.add_argument("--telemetry", metavar="PATH",
                       help="write fleet telemetry events (host_joined, "
                            "lease_granted, lease_expired, host_lost, "
                            "shard_stolen, result_merged) to PATH")
    serve.add_argument("--watch", nargs="?", const=0, type=int,
                       default=None, metavar="PORT",
                       help="serve the live dashboard (with a fleet card) "
                            "next to the coordinator")
    serve.add_argument("--watch-host", metavar="ADDR", default=None,
                       help="bind address for --watch (default 127.0.0.1)")
    serve.set_defaults(func=cmd_serve)

    fleet_worker = sub.add_parser(
        "fleet-worker",
        help="run one worker agent: join a coordinator, lease shards, run "
             "them through the campaign engine, submit the records back")
    fleet_worker.add_argument("url",
                              help="coordinator URL, e.g. "
                                   "http://127.0.0.1:8300")
    fleet_worker.add_argument("--name", default=None,
                              help="host label (default: hostname-pid); "
                                   "quarantine keys on it")
    fleet_worker.add_argument("--jobs", type=int, default=1,
                              help="worker processes per shard "
                                   "(0 = one per CPU)")
    fleet_worker.add_argument("--pooling", action="store_true",
                              help="reuse booted SUTs per engine worker "
                                   "(same flag as the campaign "
                                   "subcommands)")
    fleet_worker.add_argument("--prefix-cache",
                              action=argparse.BooleanOptionalAction,
                              default=None,
                              help="override the campaign config's "
                                   "prefix-cache setting for this worker")
    fleet_worker.add_argument("--batch",
                              action=argparse.BooleanOptionalAction,
                              default=None,
                              help="override the campaign config's "
                                   "lockstep-batching setting")
    fleet_worker.add_argument("--batch-size", type=int, default=None,
                              metavar="N")
    fleet_worker.add_argument("--chunk-size", metavar="N|auto")
    fleet_worker.add_argument("--timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-experiment watchdog (same "
                                   "semantics as the campaign "
                                   "subcommands)")
    fleet_worker.add_argument("--retries", type=int, default=None,
                              metavar="N")
    fleet_worker.add_argument("--max-worker-restarts", type=int,
                              default=None, metavar="N")
    fleet_worker.add_argument("--poll", type=float, default=1.0,
                              metavar="SECONDS",
                              help="how often to re-ask for work when "
                                   "none is offerable (default 1)")
    fleet_worker.add_argument("--offline-grace", type=float, default=60.0,
                              metavar="SECONDS",
                              help="keep retrying an unreachable "
                                   "coordinator for SECONDS before giving "
                                   "up (default 60) — covers coordinator "
                                   "restarts")
    fleet_worker.add_argument("--until-done", action="store_true",
                              help="exit when the coordinator reports all "
                                   "campaigns done (default: keep polling "
                                   "for future campaigns)")
    fleet_worker.add_argument("--max-shards", type=int, default=None,
                              metavar="N",
                              help="exit after completing N shards")
    fleet_worker.add_argument("--verbose", action="store_true",
                              help="log joins, leases, and submissions to "
                                   "stderr")
    add_sut_flag(fleet_worker)
    fleet_worker.set_defaults(func=cmd_fleet_worker)

    submit = sub.add_parser(
        "submit",
        help="submit a campaign config to a running fleet coordinator")
    submit.add_argument("url", help="coordinator URL")
    submit.add_argument("config",
                        help="path to a campaign config (.toml/.json) or a "
                             "catalog name (see 'repro-fi list')")
    submit.add_argument("--tests", type=int,
                        help="override the config's test count")
    submit.add_argument("--duration", type=float,
                        help="override the config's per-test duration")
    submit.add_argument("--seed", type=int,
                        help="override the config's base seed")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the campaign completes")
    submit.add_argument("--poll", type=float, default=1.0,
                        metavar="SECONDS",
                        help="status poll interval with --wait (default 1)")
    submit.add_argument("--output", metavar="PATH",
                        help="with --wait: download the merged records to "
                             "PATH when the campaign completes")
    submit.set_defaults(func=cmd_submit)

    fleet_status = sub.add_parser(
        "fleet-status",
        help="one-shot status of a running fleet coordinator")
    fleet_status.add_argument("url", help="coordinator URL")
    fleet_status.add_argument("--format", choices=["text", "json"],
                              default="text")
    fleet_status.set_defaults(func=cmd_fleet_status)

    merge = sub.add_parser(
        "merge",
        help="merge record stores from several hosts into one, "
             "deduplicated by spec identity (same identity + different "
             "payload is a hard error)")
    merge.add_argument("inputs", nargs="+",
                       help="two or more .jsonl record files (one works "
                            "too: the merge is then a canonicalizing copy)")
    merge.add_argument("-o", "--output", required=True, metavar="PATH",
                       help="write the merged store to PATH (atomically)")
    merge.set_defaults(func=cmd_merge)

    check = sub.add_parser(
        "check",
        help="static contract checker: determinism, snapshot completeness, "
             "telemetry guards, lock discipline, wire-schema literals, and "
             "registry resolution, all via stdlib ast (exits nonzero on "
             "non-baselined findings)")
    check.add_argument("--rule", action="append", metavar="RULE",
                       help="run only RULE (repeatable; default: all rules)")
    check.add_argument("--format", choices=["text", "json"], default="text",
                       help="report format (json is the CI artifact)")
    check.add_argument("--baseline", metavar="PATH",
                       help="findings baseline to tolerate (default: "
                            "check_baseline.json at the project root)")
    check.add_argument("--write-baseline", action="store_true",
                       help="snapshot the currently-active findings as the "
                            "new baseline and exit 0")
    check.add_argument("--root", metavar="DIR",
                       help="project root to check (default: the repo this "
                            "package was loaded from)")
    check.add_argument("--verbose", action="store_true",
                       help="also list suppressed and baselined findings")
    check.set_defaults(func=cmd_check)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "campaign" and args.cpu is not None and args.cpu < 0:
        args.cpu = None
    try:
        return args.func(args)
    except (RegistryError, CampaignConfigError) as exc:
        # Unknown keys and malformed configs are user input errors: report
        # them (with the registry's did-you-mean suggestions) instead of a
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except AnalysisError as exc:
        # Malformed/incompatible record files (bad JSON lines, newer
        # schema_version, ...) are data errors: name the file and line
        # instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ObservabilityError as exc:
        # Unbindable watch ports, missing benchmark reports, invalid
        # telemetry files: environment/data errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FleetProtocolError as exc:
        # Version mismatches and malformed fleet messages mean incompatible
        # software on the two ends — a usage error, like a bad config.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FleetError as exc:
        # Unreachable coordinators, merge conflicts, un-resumable state:
        # operational errors, reported without a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except CheckError as exc:
        # Unknown rule names, unreadable baselines, bad roots: usage errors
        # of the static checker, distinct from exit 1 (real findings).
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
