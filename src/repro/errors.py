"""Exception hierarchy for the repro package.

Every error raised by the simulated board, the hypervisor model, the guest
models, and the fault-injection framework derives from :class:`ReproError` so
callers can distinguish library failures from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class HardwareError(ReproError):
    """Base class for errors raised by the simulated hardware substrate."""


class MemoryAccessError(HardwareError):
    """A memory access violated the physical memory map or its permissions."""

    def __init__(self, address: int, size: int, kind: str, reason: str) -> None:
        self.address = address
        self.size = size
        self.kind = kind
        self.reason = reason
        super().__init__(
            f"{kind} access of {size} byte(s) at 0x{address:08x} failed: {reason}"
        )


class RegionOverlapError(HardwareError):
    """Two memory regions that must be disjoint overlap."""


class InvalidRegisterError(HardwareError):
    """A register name or index outside the modeled register file was used."""


class CpuStateError(HardwareError):
    """A CPU operation was attempted in an incompatible CPU state."""


class InterruptError(HardwareError):
    """An interrupt id or routing operation was invalid."""


class DeviceError(HardwareError):
    """A device-level operation failed (UART, GPIO, timer)."""


class HypervisorError(ReproError):
    """Base class for errors raised by the partitioning-hypervisor model."""


class ConfigurationError(HypervisorError):
    """A system or cell configuration is structurally invalid."""


class CellStateError(HypervisorError):
    """A cell-management operation was attempted in an incompatible state."""


class HypercallError(HypervisorError):
    """A hypercall could not be dispatched."""


class IsolationViolationError(HypervisorError):
    """A cell attempted to access a resource owned by another cell."""


class HypervisorPanic(HypervisorError):
    """The hypervisor hit an unrecoverable internal error (panic park)."""

    def __init__(self, message: str, cpu_id: int | None = None) -> None:
        self.cpu_id = cpu_id
        super().__init__(message)


class GuestError(ReproError):
    """Base class for errors raised by guest OS models."""


class GuestCrashError(GuestError):
    """A guest OS reached an unrecoverable state."""


class SchedulerError(GuestError):
    """The guest scheduler was misused (duplicate task names, bad priority)."""


class InjectionError(ReproError):
    """Base class for errors raised by the fault-injection framework."""


class CampaignError(InjectionError):
    """A campaign or test plan is invalid or was interrupted."""


class PlanError(CampaignError):
    """A test plan is structurally invalid (empty, duplicate names, ...).

    Subclasses :class:`CampaignError` so existing callers that catch the
    broader class keep working.
    """


class TargetError(InjectionError):
    """An injection target does not exist on the system under test."""


class RegistryError(InjectionError):
    """A plugin registry lookup or registration failed (unknown/duplicate key)."""


class CampaignConfigError(CampaignError):
    """A declarative campaign configuration is malformed or unloadable."""


class AnalysisError(ReproError):
    """Raised when analytics are asked to process malformed records."""


class RecordSchemaError(AnalysisError):
    """Raised for records written by a newer, unsupported record schema.

    Subclasses :class:`AnalysisError` so existing handlers keep working,
    but stays distinguishable from line-level corruption: a version
    mismatch means the whole store needs newer tooling, so salvage paths
    (checkpoint torn-tail recovery, ``--skip-malformed``) must not treat
    it as a damaged line to discard.
    """


class FleetError(ReproError):
    """Raised by the multi-host fleet layer (coordinator, worker agent).

    Covers protocol violations (wrong ``repro-fleet/v1`` schema, malformed
    messages), coordinator state problems (unknown campaign or host,
    un-resumable state directories), and worker-side failures to reach or
    follow the coordinator. Kept distinct from :class:`CampaignError` so a
    fleet transport problem is never mistaken for an invalid campaign.
    """


class FleetProtocolError(FleetError):
    """A ``repro-fleet/v1`` message was malformed or version-mismatched."""


class FleetUnavailableError(FleetError):
    """The fleet coordinator could not be reached (transport failure).

    Distinct from the rest of :class:`FleetError` because it is the one
    failure workers retry through: a coordinator restart or network blip
    heals, so agents back off and try again within their offline grace
    window instead of treating it as fatal.
    """


class MergeConflictError(FleetError):
    """Two record stores disagree about the same spec identity.

    Raised by ``repro merge`` (and the coordinator's result merge) when two
    records share an identity but differ in payload — deterministic
    re-execution must produce byte-identical records, so a conflict means
    the stores came from different campaign definitions or code versions
    and silently picking one would corrupt the merged result.
    """


class SafetyAssessmentError(ReproError):
    """Raised by the ISO 26262 / SEooC assessment layer."""


class CheckError(ReproError):
    """Raised by the static contract checker (``repro-fi check``) for
    usage problems: unknown rule names, unreadable baselines, or a source
    root that cannot be loaded. Findings are *not* errors — they are the
    checker's normal output; this class covers misuse of the tool itself.
    """


class ObservabilityError(ReproError):
    """Raised by the live-observability layer (telemetry, watch, bench-history).

    Covers malformed telemetry event files, watch-server misuse, and
    unreadable ``BENCH_*.json`` trajectories — operational tooling errors,
    kept distinct from :class:`AnalysisError` (experiment record data) so a
    broken dashboard can never be mistaken for broken campaign results.
    """
