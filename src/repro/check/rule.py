"""The rule interface: a name, a description, and a project-wide pass.

Rules take the whole :class:`~repro.check.source.Project` rather than one
file at a time because half of them are cross-file by nature —
``schema-literal`` counts definition sites across modules and
``registry-resolve`` joins registrations in ``src/`` against part keys in
``examples/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.check.findings import Finding
    from repro.check.source import Project


@dataclass(frozen=True)
class Rule:
    """A named contract check run over the whole project."""

    name: str
    description: str
    run: Callable[["Project"], Iterable["Finding"]]
