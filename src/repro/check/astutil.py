"""Shared AST plumbing for the contract rules.

Everything here is deliberately import-free with respect to the simulator:
rules reason about the source tree *as text*, never by executing it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Methods that mutate the built-in containers in place.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "discard", "add",
    "pop", "popleft", "popitem", "clear", "update", "setdefault", "sort",
    "reverse", "rotate",
})

#: Calls that return a fresh container (safe to feed a bare attribute to).
COPYING_CALLS = frozenset({
    "list", "dict", "set", "frozenset", "tuple", "sorted", "deque",
    "copy", "deepcopy", "bytes", "bytearray", "str", "len", "sum", "min",
    "max", "any", "all",
})


def attach_parents(tree: ast.AST) -> None:
    """Stamp every node with ``_repro_parent`` (idempotent)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_repro_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def dotted_names_in(node: ast.AST) -> Set[str]:
    """Every dotted Name/Attribute chain appearing anywhere under ``node``."""
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            name = dotted_name(sub)
            if name is not None:
                names.add(name)
    return names


def mentions(node: ast.AST, target: str) -> bool:
    """Does ``node`` reference ``target`` or an attribute of it?"""
    prefix = target + "."
    return any(name == target or name.startswith(prefix)
               for name in dotted_names_in(node))


def import_map(tree: ast.AST) -> Dict[str, str]:
    """local name -> dotted origin, from every import in the module."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                mapping[local] = origin
        elif isinstance(node, ast.ImportFrom):
            module = ("." * node.level) + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{module}.{alias.name}" if module else alias.name
    return mapping


def resolve_origin(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Dotted origin of an expression through the module's imports.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; ``datetime.now`` after
    ``from datetime import datetime`` resolves to ``datetime.datetime.now``.
    """
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = imports.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def subscript_root_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is ``self.X[...][...]`` to any depth."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return self_attr(node)


def class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Directly-defined methods by name (sync and async alike)."""
    methods: Dict[str, ast.FunctionDef] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = stmt  # type: ignore[assignment]
    return methods


def iter_self_mutations(
        func: ast.AST) -> Iterator[Tuple[str, ast.AST, str]]:
    """Yield ``(attr, node, how)`` for each in-place write to ``self.X``.

    Covers rebinding (``self.x = ...``, ``self.x += ...``), item writes
    (``self.x[k] = v``, ``del self.x[k]``, ``self.x[k] += v``), and calls
    to the standard mutator methods (``self.x.append(v)``), including
    through subscripts (``self.x[k].append(v)``).
    """
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                attr = self_attr(target)
                if attr is not None:
                    yield attr, node, "assign"
                    continue
                attr = subscript_root_attr(target)
                if attr is not None:
                    yield attr, node, "item-write"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = subscript_root_attr(target)
                if attr is not None and not self_attr(target):
                    yield attr, node, "item-delete"
        elif isinstance(node, ast.Call):
            func_node = node.func
            if (isinstance(func_node, ast.Attribute)
                    and func_node.attr in MUTATOR_METHODS):
                attr = self_attr(func_node.value)
                if attr is None:
                    attr = subscript_root_attr(func_node.value)
                if attr is not None:
                    yield attr, node, f".{func_node.attr}()"


def self_attr_reads(func: ast.AST) -> Set[str]:
    """Names X for every ``self.X`` appearing anywhere in ``func``."""
    return {self_attr(node) for node in ast.walk(func)
            if self_attr(node) is not None}  # type: ignore[misc]


def first_line(node: ast.AST, default: int = 1) -> int:
    return getattr(node, "lineno", default)
