"""The :class:`Finding` record every rule emits.

A finding is identified across runs by its *fingerprint* — rule, file, and
message, deliberately **not** the line number, so unrelated edits above a
baselined finding do not resurrect it. The message must therefore be stable
for a given defect (rules name the symbol, not the position, in prose).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Allowed ``Finding.severity`` values, most severe first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site.

    ``suppressed``/``baselined`` are stamped by the runner after the rule
    emits; rules themselves only fill the first five fields.
    """

    rule: str
    file: str
    line: int
    message: str
    severity: str = "error"
    suppressed: bool = False
    suppression_reason: str = ""
    baselined: bool = False

    @property
    def active(self) -> bool:
        """True when the finding gates the check (not excused anywhere)."""
        return not (self.suppressed or self.baselined)

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline."""
        return f"{self.rule}::{self.file}::{self.message}"

    def with_suppression(self, reason: str) -> "Finding":
        return replace(self, suppressed=True, suppression_reason=reason)

    def with_baseline(self) -> "Finding":
        return replace(self, baselined=True)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
            "baselined": self.baselined,
            "active": self.active,
        }

    def sort_key(self):
        return (self.file, self.line, self.rule, self.message)
