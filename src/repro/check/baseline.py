"""The committed findings baseline (``repro-fi check --write-baseline``).

The baseline is the escape hatch for *known* debt: findings listed here
still render, but do not gate. Entries carry rule, file, and message — no
line numbers — so the file only churns when a finding appears or is fixed,
never when code moves around it. Regenerate with::

    repro-fi check --write-baseline

which snapshots exactly the currently-active findings (suppressed ones
stay out: an inline ``allow`` is already a better, local excuse).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Set

from repro.check.findings import Finding
from repro.errors import CheckError

#: Schema tag of the baseline file.
BASELINE_SCHEMA = "repro-check-baseline/v1"

#: Where the baseline lives relative to the project root.
DEFAULT_BASELINE_NAME = "check_baseline.json"


def _fingerprint(rule: str, file: str, message: str) -> str:
    return f"{rule}::{file}::{message}"


def load_baseline(path: Path) -> Set[str]:
    """Return the set of baselined fingerprints (empty if ``path`` absent)."""
    path = Path(path)
    if not path.exists():
        return set()
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise CheckError(
            f"{path} is not a {BASELINE_SCHEMA} baseline "
            f"(schema={data.get('schema')!r})"
            if isinstance(data, dict) else
            f"{path} is not a {BASELINE_SCHEMA} baseline")
    fingerprints = set()
    for entry in data.get("findings", ()):
        if not isinstance(entry, dict):
            raise CheckError(f"{path}: malformed baseline entry {entry!r}")
        try:
            fingerprints.add(_fingerprint(
                entry["rule"], entry["file"], entry["message"]))
        except KeyError as exc:
            raise CheckError(
                f"{path}: baseline entry missing {exc}: {entry!r}") from exc
    return fingerprints


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns how many it holds."""
    entries = sorted(
        {(f.rule, f.file, f.message) for f in findings})
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {"rule": rule, "file": file, "message": message}
            for rule, file, message in entries
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)
