"""Parsed source files, inline suppressions, and the project model.

Suppression syntax — one comment, on the flagged line or standing alone on
the line directly above it::

    self.telemetry.emit("span", ...)  # repro: allow[telemetry-guard] -- guarded by run()

    # repro: allow[determinism] -- sidecar timestamp, never feeds records
    "ts": time.time(),

Several rules may share one comment (``allow[rule-a, rule-b]``). The reason
after ``--`` is mandatory: a suppression that does not say *why* is itself
reported (rule ``suppression-syntax``), as is one naming an unknown rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import CheckError

#: Any comment that tries to talk to the checker.
_MARKER_RE = re.compile(r"#\s*repro\s*:")
#: The one well-formed shape (hash, marker, rule list, reason).
_ALLOW_RE = re.compile(
    r"#\s*repro\s*:\s*allow\[([^\]]*)\]\s*(?:--\s*(\S.*?))?\s*$")

#: Rule-name shape (also what ``Rule.name`` must satisfy).
_RULE_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``allow`` comment."""

    line: int            # line the comment physically sits on
    applies_to: int      # line a finding must start on to be excused
    rules: Tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class SuppressionProblem:
    """A malformed ``# repro:`` comment (reported by suppression-syntax)."""

    line: int
    message: str


class SourceFile:
    """One parsed Python file: text, AST, and its suppression comments."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:  # the tier-1 suite would die first, but
            raise CheckError(f"{rel}: cannot parse: {exc}") from exc
        self.suppressions: List[Suppression] = []
        self.problems: List[SuppressionProblem] = []
        self._by_line: Dict[int, List[Suppression]] = {}
        self._parse_comments()

    # -- suppression comments -------------------------------------------------------

    def _parse_comments(self) -> None:
        reader = io.StringIO(self.text).readline
        try:
            tokens = [tok for tok in tokenize.generate_tokens(reader)
                      if tok.type == tokenize.COMMENT]
        except tokenize.TokenError:  # pragma: no cover - ast.parse passed
            tokens = []
        for tok in tokens:
            comment = tok.string
            if not _MARKER_RE.search(comment):
                continue
            lineno, column = tok.start
            match = _ALLOW_RE.search(comment)
            if match is None:
                self.problems.append(SuppressionProblem(
                    lineno,
                    "malformed checker comment "
                    "(expected '# repro: allow[rule] -- reason'): "
                    f"{comment.strip()!r}"))
                continue
            rules = tuple(name.strip() for name in match.group(1).split(",")
                          if name.strip())
            reason = (match.group(2) or "").strip()
            if not rules:
                self.problems.append(SuppressionProblem(
                    lineno, "suppression names no rules"))
                continue
            bad = [name for name in rules
                   if not _RULE_NAME_RE.match(name)]
            if bad:
                self.problems.append(SuppressionProblem(
                    lineno, f"invalid rule name(s) in suppression: {bad}"))
                continue
            if not reason:
                self.problems.append(SuppressionProblem(
                    lineno,
                    "suppression is missing its reason "
                    "(write '-- why this is safe')"))
                continue
            standalone = not self.lines[lineno - 1][:column].strip()
            applies_to = lineno + 1 if standalone else lineno
            suppression = Suppression(lineno, applies_to, rules, reason)
            self.suppressions.append(suppression)
            self._by_line.setdefault(applies_to, []).append(suppression)

    def suppression_for(self, line: int, rule: str) -> Optional[Suppression]:
        for suppression in self._by_line.get(line, ()):
            if rule in suppression.rules:
                return suppression
        return None


@dataclass
class Project:
    """Everything a rule may look at: parsed sources plus config files."""

    root: Path
    src_root: Path
    sources: List[SourceFile]
    examples_dir: Optional[Path] = None
    _by_rel: Dict[str, SourceFile] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_rel = {source.rel: source for source in self.sources}

    @classmethod
    def load(cls, root: Optional[Path] = None,
             src_root: Optional[Path] = None,
             examples_dir: Optional[Path] = None) -> "Project":
        """Load a project tree.

        With no arguments the repo that owns this installed package is
        used: ``<root>/src/repro`` for sources, ``<root>/examples`` for the
        declarative configs. Tests point ``src_root`` at fixture trees.
        """
        if root is None and src_root is None:
            root = Path(__file__).resolve().parents[3]
        if root is not None:
            root = Path(root).resolve()
            if src_root is None:
                candidate = root / "src"
                src_root = candidate if candidate.is_dir() else root
            if examples_dir is None:
                candidate = root / "examples"
                examples_dir = candidate if candidate.is_dir() else None
        src_root = Path(src_root).resolve()
        if root is None:
            root = src_root
        if not src_root.is_dir():
            raise CheckError(f"source root is not a directory: {src_root}")
        sources = []
        for path in sorted(src_root.rglob("*.py")):
            rel = path.relative_to(src_root).as_posix()
            sources.append(SourceFile(path, rel, path.read_text()))
        if not sources:
            raise CheckError(f"no Python sources under {src_root}")
        return cls(root=root, src_root=src_root, sources=sources,
                   examples_dir=examples_dir)

    def get(self, rel: str) -> Optional[SourceFile]:
        return self._by_rel.get(rel)

    def files_under(self, *prefixes: str) -> Iterator[SourceFile]:
        """Sources whose project-relative path starts with any prefix."""
        for source in self.sources:
            if any(source.rel.startswith(prefix) for prefix in prefixes):
                yield source

    def example_configs(self) -> List[Path]:
        """TOML/JSON campaign configs shipped under ``examples/``."""
        if self.examples_dir is None or not self.examples_dir.is_dir():
            return []
        return sorted(path for path in self.examples_dir.iterdir()
                      if path.suffix in (".toml", ".json"))
