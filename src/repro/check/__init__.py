"""Static contract checker for the repro codebase (``repro-fi check``).

Every multiplier this repo ships — prefix fast-forward, batched lockstep,
the multi-host fleet — rests on invariants that are invisible to the type
system: records must be byte-identical across execution strategies,
``snapshot_state`` must deep-copy every mutable field, telemetry must cost
nothing when disabled, threaded state must stay under its lock, wire-format
version strings must mean exactly one thing, and declarative configs must
resolve against the plugin registries. This package machine-checks those
contracts with nothing but :mod:`ast` — no third-party linters, no imports
of the simulator — so the gate runs anywhere the source tree does.

Layout:

* :mod:`repro.check.findings` — the :class:`Finding` record.
* :mod:`repro.check.source` — parsed source files, inline
  ``# repro: allow[rule] -- reason`` suppressions, the :class:`Project`.
* :mod:`repro.check.baseline` — the committed JSON findings baseline.
* :mod:`repro.check.rules` — one module per rule.
* :mod:`repro.check.runner` — orchestration plus text/JSON rendering.
"""

from repro.check.baseline import (BASELINE_SCHEMA, load_baseline,
                                  write_baseline)
from repro.check.findings import Finding
from repro.check.rule import Rule
from repro.check.runner import (CHECK_SCHEMA, CheckResult, available_rules,
                                render_text, run_check, to_payload)
from repro.check.source import Project, SourceFile

__all__ = [
    "BASELINE_SCHEMA",
    "CHECK_SCHEMA",
    "CheckResult",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "available_rules",
    "load_baseline",
    "render_text",
    "run_check",
    "to_payload",
    "write_baseline",
]
