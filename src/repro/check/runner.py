"""Run the rules, apply suppressions and the baseline, render the result."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.check.findings import Finding
from repro.check.rules import ALL_RULES
from repro.check.source import Project
from repro.errors import CheckError

#: Schema of the ``--format json`` report.
CHECK_SCHEMA = "repro-check/v1"

#: The framework's own rule: malformed checker comments. Not suppressible
#: (a broken excuse must not excuse itself) and always on.
SUPPRESSION_RULE = "suppression-syntax"


def available_rules() -> Dict[str, str]:
    """rule name -> one-line description (the CLI's ``--rule`` choices)."""
    rules = {name: rule.description for name, rule in sorted(
        ALL_RULES.items())}
    rules[SUPPRESSION_RULE] = (
        "every checker comment parses as '# repro: allow[rule] -- reason' "
        "and names real rules")
    return rules


@dataclass
class CheckResult:
    """Everything one check run produced."""

    findings: List[Finding]
    rule_names: List[str]
    files_checked: int
    root: str

    @property
    def active(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.active]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def ok(self) -> bool:
        return not self.active


def _suppression_findings(project: Project) -> Iterable[Finding]:
    known = set(ALL_RULES) | {SUPPRESSION_RULE}
    for source in project.sources:
        for problem in source.problems:
            yield Finding(SUPPRESSION_RULE, source.rel, problem.line,
                          problem.message)
        for suppression in source.suppressions:
            unknown = sorted(set(suppression.rules) - known)
            if unknown:
                yield Finding(
                    SUPPRESSION_RULE, source.rel, suppression.line,
                    f"suppression names unknown rule(s) {unknown}; "
                    f"known rules: {sorted(known)}")


def run_check(project: Project,
              rule_names: Optional[Iterable[str]] = None,
              baseline: Optional[Set[str]] = None) -> CheckResult:
    """Run ``rule_names`` (default: all) over ``project``.

    Suppression comments and the baseline are applied here so rules stay
    pure producers of findings.
    """
    if rule_names is None:
        selected = list(ALL_RULES)
    else:
        selected = list(dict.fromkeys(rule_names))
        unknown = [name for name in selected
                   if name not in ALL_RULES and name != SUPPRESSION_RULE]
        if unknown:
            raise CheckError(
                f"unknown rule(s) {unknown}; available: "
                f"{sorted(available_rules())}")
    baseline = baseline or set()

    raw: List[Finding] = []
    for name in selected:
        if name == SUPPRESSION_RULE:
            continue
        raw.extend(ALL_RULES[name].run(project))
    # The syntax of the excuse mechanism is always checked.
    raw.extend(_suppression_findings(project))

    findings: List[Finding] = []
    for finding in raw:
        if finding.rule != SUPPRESSION_RULE:
            source = project.get(finding.file)
            if source is not None:
                suppression = source.suppression_for(finding.line,
                                                     finding.rule)
                if suppression is not None:
                    findings.append(
                        finding.with_suppression(suppression.reason))
                    continue
            if finding.fingerprint in baseline:
                findings.append(finding.with_baseline())
                continue
        findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return CheckResult(findings=findings,
                       rule_names=selected,
                       files_checked=len(project.sources),
                       root=str(project.root))


def render_text(result: CheckResult, verbose: bool = False) -> str:
    """Human-readable report; active findings first, excused ones on -v."""
    lines: List[str] = []
    for finding in result.active:
        lines.append(f"{finding.file}:{finding.line}: "
                     f"[{finding.rule}] {finding.severity}: "
                     f"{finding.message}")
    if verbose:
        for finding in result.suppressed:
            lines.append(f"{finding.file}:{finding.line}: "
                         f"[{finding.rule}] suppressed "
                         f"({finding.suppression_reason})")
        for finding in result.baselined:
            lines.append(f"{finding.file}:{finding.line}: "
                         f"[{finding.rule}] baselined: {finding.message}")
    summary = (f"checked {result.files_checked} files, "
               f"{len(result.rule_names)} rules: "
               f"{len(result.active)} finding(s)")
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def to_payload(result: CheckResult) -> dict:
    """The ``--format json`` report (also the CI artifact)."""
    return {
        "schema": CHECK_SCHEMA,
        "root": result.root,
        "rules": result.rule_names,
        "files_checked": result.files_checked,
        "counts": {
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
        "ok": result.ok,
        "findings": [finding.to_dict() for finding in result.findings],
    }
