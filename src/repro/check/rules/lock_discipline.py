"""Rule ``lock-discipline``: guarded state never escapes its lock.

Applies to any class that creates a ``threading.Lock``/``RLock`` attribute
(the watch hub, the fleet coordinator, ...). An attribute that is touched
inside any ``with self._lock:`` block is *guarded state*; the rule then
demands:

* no in-place write to a guarded attribute outside a lock context, and
* helper methods that rely on the caller holding the lock follow the
  repo's ``*_locked`` naming convention and are only called from a lock
  context.

A *lock context* is a ``with self.<lock>:`` body, ``__init__`` (no other
thread can hold a reference yet), or the body of a ``*_locked`` method.
That makes the convention machine-checked instead of a docstring promise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.check import astutil
from repro.check.findings import Finding
from repro.check.rule import Rule
from repro.check.source import Project, SourceFile

#: Methods that may mutate freely: no concurrent reader can exist yet.
_SETUP_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes of ``cls`` assigned a threading.Lock()/RLock()."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        origin = astutil.dotted_name(node.value.func) or ""
        if origin.split(".")[-1] not in ("Lock", "RLock"):
            continue
        for target in node.targets:
            attr = astutil.self_attr(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _in_lock_block(node: ast.AST, locks: Set[str]) -> bool:
    """Is ``node`` inside a ``with self.<lock>:`` body?"""
    for ancestor in astutil.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                attr = astutil.self_attr(item.context_expr)
                if attr in locks:
                    return True
    return False


def _check_class(source: SourceFile, cls: ast.ClassDef) -> Iterator[Finding]:
    locks = _lock_attrs(cls)
    if not locks:
        return
    main_lock = "_lock" if "_lock" in locks else sorted(locks)[0]
    methods = astutil.class_methods(cls)

    # Pass 1: which attributes does the class touch under a lock?
    guarded: Set[str] = set()
    for node in ast.walk(cls):
        attr = astutil.self_attr(node)
        if attr is None or attr in locks:
            continue
        if _in_lock_block(node, locks):
            guarded.add(attr)
    # State written by *_locked helpers is guarded by convention too.
    for name, method in methods.items():
        if name.endswith("_locked"):
            for attr, _node, _how in astutil.iter_self_mutations(method):
                if attr not in locks:
                    guarded.add(attr)
    if not guarded:
        return

    # Pass 2: mutations of guarded state outside any lock context.
    for name, method in methods.items():
        if name in _SETUP_METHODS or name.endswith("_locked"):
            continue
        for attr, node, how in astutil.iter_self_mutations(method):
            if attr not in guarded:
                continue
            if _in_lock_block(node, locks):
                continue
            yield Finding(
                "lock-discipline", source.rel, node.lineno,
                f"{cls.name}.{name} mutates guarded attribute "
                f"'{attr}' ({how}) outside 'with self.{main_lock}'; "
                "take the lock or rename the helper '*_locked'")

    # Pass 3: *_locked helpers must be invoked with the lock held.
    for name, method in methods.items():
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            callee = astutil.self_attr(node.func)
            if callee is None or not callee.endswith("_locked"):
                continue
            if callee not in methods:
                continue
            if (name.endswith("_locked")
                    or name in _SETUP_METHODS
                    or _in_lock_block(node, locks)):
                continue
            yield Finding(
                "lock-discipline", source.rel, node.lineno,
                f"{cls.name}.{name} calls self.{callee}() without holding "
                f"the lock; wrap the call in 'with self.{main_lock}'")


def _iter_findings(source: SourceFile) -> Iterator[Finding]:
    astutil.attach_parents(source.tree)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            yield from _check_class(source, node)


def run(project: Project) -> Iterator[Finding]:
    for source in project.sources:
        yield from _iter_findings(source)


RULE = Rule(
    name="lock-discipline",
    description=("attributes touched under self._lock are never mutated "
                 "outside it; *_locked helpers called with the lock held"),
    run=run,
)
