"""Rule ``registry-resolve``: every part key resolves, without importing.

PR 3 made campaigns declarative: fault models, triggers, targets,
scenarios, SUTs, classifiers, guests, and workloads are looked up by key
in the :mod:`repro.core.registry` registries. A typo in the catalog, in a
CLI default, or in an ``examples/*.toml`` only explodes when somebody runs
that exact config. This rule closes the gap statically: it parses every
``@REG.register("key", ...)`` / ``REG.add_value("key", ...)`` site in
``src/`` (resolving constant-reference and enum-``.value`` aliases through
imports), then checks every literal reference — ``REG.build("lit")``
calls, ``PartRef("lit")`` catalog entries, and the part keys inside the
shipped example configs — against the collected keys.
"""

from __future__ import annotations

import ast
import difflib
import json
from typing import Dict, Iterator, List, Optional, Set, Tuple

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    tomllib = None

from repro.check import astutil
from repro.check.findings import Finding
from repro.check.rule import Rule
from repro.check.source import Project, SourceFile

#: Registry variable name -> human axis name.
REGISTRY_AXES = {
    "FAULT_MODELS": "fault model",
    "TRIGGERS": "trigger",
    "TARGETS": "target",
    "SCENARIOS": "scenario",
    "SUTS": "sut",
    "CLASSIFIERS": "classifier",
    "GUESTS": "guest",
    "WORKLOADS": "workload",
}

#: Registry methods whose literal first argument is a key lookup.
_LOOKUP_METHODS = frozenset({"build", "get", "canonical"})

#: CampaignConfig keyword -> registry its literal keys resolve against.
_CONFIG_KWARGS = {
    "targets": "TARGETS",
    "triggers": "TRIGGERS",
    "fault_models": "FAULT_MODELS",
    "scenarios": "SCENARIOS",
    "sut": "SUTS",
    "classifier": "CLASSIFIERS",
}

#: Config-file section -> registry for its ``kind`` keys.
_SECTION_REGISTRY = {
    "target": "TARGETS",
    "trigger": "TRIGGERS",
    "fault_model": "FAULT_MODELS",
}


def _module_name(rel: str) -> str:
    parts = rel[:-3].split("/")  # strip ".py"
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class _ConstantTables:
    """Module- and class-level string constants, resolvable via imports."""

    def __init__(self, project: Project) -> None:
        self.module: Dict[str, Dict[str, str]] = {}
        self.classes: Dict[str, Dict[str, str]] = {}
        for source in project.sources:
            mod = _module_name(source.rel)
            consts: Dict[str, str] = {}
            classes: Dict[str, str] = {}
            for stmt in source.tree.body:
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if (isinstance(target, ast.Name)
                            and isinstance(stmt.value, ast.Constant)
                            and isinstance(stmt.value.value, str)):
                        consts[target.id] = stmt.value.value
                elif isinstance(stmt, ast.ClassDef):
                    for sub in stmt.body:
                        if (isinstance(sub, ast.Assign)
                                and len(sub.targets) == 1
                                and isinstance(sub.targets[0], ast.Name)
                                and isinstance(sub.value, ast.Constant)
                                and isinstance(sub.value.value, str)):
                            classes[f"{stmt.name}.{sub.targets[0].id}"] = (
                                sub.value.value)
            self.module[mod] = consts
            self.classes[mod] = classes

    def _resolve_import(self, mod: str, origin: str) -> str:
        """Absolutise a possibly-relative import origin."""
        if not origin.startswith("."):
            return origin
        package = mod.rsplit(".", 1)[0]
        stripped = origin.lstrip(".")
        for _ in range(len(origin) - len(stripped) - 1):
            package = package.rsplit(".", 1)[0]
        return f"{package}.{stripped}" if stripped else package

    def resolve(self, node: ast.AST, mod: str,
                imports: Dict[str, str]) -> Optional[str]:
        """Static string value of ``node``, through one level of indirection."""
        if isinstance(node, ast.Constant):
            return node.value if isinstance(node.value, str) else None
        if isinstance(node, ast.Name):
            local = self.module.get(mod, {}).get(node.id)
            if local is not None:
                return local
            origin = imports.get(node.id)
            if origin is None:
                return None
            origin = self._resolve_import(mod, origin)
            owner, _, name = origin.rpartition(".")
            return self.module.get(owner, {}).get(name)
        dotted = astutil.dotted_name(node)
        if dotted is None:
            return None
        if dotted.endswith(".value"):
            dotted = dotted[: -len(".value")]
        head, _, rest = dotted.partition(".")
        if not rest:
            return None
        local = self.classes.get(mod, {}).get(dotted)
        if local is not None:
            return local
        origin = imports.get(head)
        if origin is None:
            return None
        origin = self._resolve_import(mod, origin)
        owner, _, cls = origin.rpartition(".")
        return self.classes.get(owner, {}).get(f"{cls}.{rest}")


def _collect_registrations(project: Project,
                           tables: _ConstantTables) -> Dict[str, Set[str]]:
    known: Dict[str, Set[str]] = {name: set() for name in REGISTRY_AXES}
    for source in project.sources:
        mod = _module_name(source.rel)
        imports = astutil.import_map(source.tree)
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in REGISTRY_AXES):
                continue
            registry = node.func.value.id
            method = node.func.attr
            if method not in ("register", "add", "add_value"):
                continue
            if not node.args:
                continue
            key = tables.resolve(node.args[0], mod, imports)
            if key is None:
                continue
            known[registry].add(key)
            alias_nodes: List[ast.AST] = []
            if method == "register":
                alias_nodes.extend(node.args[1:])
            for keyword in node.keywords:
                if keyword.arg == "aliases" and isinstance(
                        keyword.value, (ast.Tuple, ast.List, ast.Set)):
                    alias_nodes.extend(keyword.value.elts)
            for alias_node in alias_nodes:
                alias = tables.resolve(alias_node, mod, imports)
                if alias is not None:
                    known[registry].add(alias)
    return known


def _unknown(known: Dict[str, Set[str]], registry: str, key: str,
             file: str, line: int, where: str) -> Optional[Finding]:
    keys = known[registry]
    if not keys or key in keys:
        return None
    hint = ""
    close = difflib.get_close_matches(key, sorted(keys), n=1)
    if close:
        hint = f" (did you mean '{close[0]}'?)"
    return Finding(
        "registry-resolve", file, line,
        f"unknown {REGISTRY_AXES[registry]} key '{key}' in {where}; no "
        f"registration in core/registry.py matches{hint}")


def _partref_keys(node: ast.AST) -> Iterator[Tuple[str, int]]:
    """Literal first arguments of PartRef(...) calls under ``node``."""
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "PartRef"
                and sub.args
                and isinstance(sub.args[0], ast.Constant)
                and isinstance(sub.args[0].value, str)):
            yield sub.args[0].value, sub.lineno


def _string_part_keys(node: ast.AST) -> Iterator[Tuple[str, int]]:
    """Plain-string keys of a CampaignConfig keyword (str or list-of-str)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        yield node.value, node.lineno
    elif isinstance(node, (ast.List, ast.Tuple)):
        for element in node.elts:
            if (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                yield element.value, element.lineno


def _check_python_refs(project: Project, known: Dict[str, Set[str]],
                       tables: _ConstantTables) -> Iterator[Finding]:
    # A PartRef seen outside a CampaignConfig keyword could name any part
    # axis (classifier defaults, helper construction), so accept a key
    # known to any registry.
    union_keys = set().union(*known.values())
    for source in project.sources:
        astutil.attach_parents(source.tree)
        # PartRef nodes already validated against a specific axis; filled
        # in by the CampaignConfig branch, which ast.walk visits before
        # the nested calls themselves.
        contextual: Set[int] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = astutil.dotted_name(node.func) or ""
            # CampaignConfig(...): each part keyword names its axis.
            if func_name.split(".")[-1] == "CampaignConfig":
                for keyword in node.keywords:
                    registry = _CONFIG_KWARGS.get(keyword.arg or "")
                    if registry is None:
                        continue
                    for sub in ast.walk(keyword.value):
                        if (isinstance(sub, ast.Call)
                                and isinstance(sub.func, ast.Name)
                                and sub.func.id == "PartRef"):
                            contextual.add(id(sub))
                    for key, line in _partref_keys(keyword.value):
                        finding = _unknown(known, registry, key,
                                           source.rel, line,
                                           "the campaign catalog")
                        if finding:
                            yield finding
                    if registry in ("SCENARIOS", "SUTS", "CLASSIFIERS"):
                        for key, line in _string_part_keys(keyword.value):
                            finding = _unknown(known, registry, key,
                                               source.rel, line,
                                               "the campaign catalog")
                            if finding:
                                yield finding
            # Direct registry lookups with a literal key.
            elif (isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in REGISTRY_AXES
                    and node.func.attr in _LOOKUP_METHODS
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                finding = _unknown(known, node.func.value.id,
                                   node.args[0].value, source.rel,
                                   node.lineno,
                                   f"a .{node.func.attr}() call")
                if finding:
                    yield finding
            elif (isinstance(node.func, ast.Name)
                    and node.func.id == "RegistrySutFactory"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                finding = _unknown(known, "SUTS", node.args[0].value,
                                   source.rel, node.lineno,
                                   "a RegistrySutFactory")
                if finding:
                    yield finding
            elif (isinstance(node.func, ast.Name)
                    and node.func.id == "PartRef"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                # A PartRef outside any CampaignConfig keyword: accept a
                # key known to any part registry.
                key = node.args[0].value
                if id(node) in contextual or not union_keys:
                    continue
                if key in union_keys:
                    continue
                close = difflib.get_close_matches(key, sorted(union_keys),
                                                  n=1)
                hint = f" (did you mean '{close[0]}'?)" if close else ""
                yield Finding(
                    "registry-resolve", source.rel, node.lineno,
                    f"unknown part key '{key}' in a PartRef; no "
                    f"registration in core/registry.py matches{hint}")


def _load_config(path) -> Tuple[Optional[dict], Optional[str]]:
    try:
        if path.suffix == ".json":
            return json.loads(path.read_text()), None
        if tomllib is None:  # pragma: no cover - 3.10 fallback
            return None, None
        with open(path, "rb") as handle:
            return tomllib.load(handle), None
    except (OSError, ValueError) as exc:
        return None, str(exc)


def _check_examples(project: Project,
                    known: Dict[str, Set[str]]) -> Iterator[Finding]:
    for path in project.example_configs():
        try:
            rel = path.relative_to(project.root).as_posix()
        except ValueError:  # pragma: no cover - examples outside root
            rel = path.as_posix()
        data, error = _load_config(path)
        if error is not None:
            yield Finding("registry-resolve", rel, 1,
                          f"unparseable campaign config: {error}")
            continue
        if not isinstance(data, dict):
            continue
        campaign = data.get("campaign")
        campaign = campaign if isinstance(campaign, dict) else {}
        for config_key, registry in (("scenario", "SCENARIOS"),
                                     ("sut", "SUTS"),
                                     ("classifier", "CLASSIFIERS")):
            value = campaign.get(config_key)
            values = value if isinstance(value, list) else [value]
            for item in values:
                if isinstance(item, str):
                    finding = _unknown(known, registry, item, rel, 1,
                                       f"[campaign] {config_key}")
                    if finding:
                        yield finding
        for section, registry in _SECTION_REGISTRY.items():
            entries = data.get(section)
            if isinstance(entries, dict):
                entries = [entries]
            if not isinstance(entries, list):
                continue
            for entry in entries:
                kind = entry.get("kind") if isinstance(entry, dict) else None
                if isinstance(kind, str):
                    finding = _unknown(known, registry, kind, rel, 1,
                                       f"[[{section}]] kind")
                    if finding:
                        yield finding


def run(project: Project) -> Iterator[Finding]:
    tables = _ConstantTables(project)
    known = _collect_registrations(project, tables)
    yield from _check_python_refs(project, known, tables)
    yield from _check_examples(project, known)


RULE = Rule(
    name="registry-resolve",
    description=("catalog names, CLI references, and examples/* part keys "
                 "resolve against statically-parsed registrations"),
    run=run,
)
