"""Rule ``telemetry-guard``: emitting must stay free when telemetry is off.

The PR-6 contract: a campaign run without ``--telemetry`` must not pay for
event construction. ``Telemetry.emit`` returns early when inactive, but the
*payload kwargs are evaluated at the call site* — so every ``.emit(`` site
outside ``obs/`` must be dominated by a check of its bus: an enclosing
``if telemetry:`` / ``if bus.active:``-style conditional, or an earlier
``if <bus> is None: return`` early-out in the same function. Sites whose
guard lives in a caller (cross-function domination is invisible to a
per-function analysis) carry an inline suppression naming that caller.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.check import astutil
from repro.check.findings import Finding
from repro.check.rule import Rule
from repro.check.source import Project, SourceFile

#: The bus lives here; its own internals are exempt.
EXEMPT = ("repro/obs/", "repro/check/")


def _enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    for ancestor in astutil.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def _guarded_by_ancestor_if(call: ast.Call, receiver: str) -> bool:
    """An enclosing if/while whose test mentions the bus expression."""
    for ancestor in astutil.ancestors(call):
        if isinstance(ancestor, (ast.If, ast.While, ast.IfExp)):
            if astutil.mentions(ancestor.test, receiver):
                return True
        elif isinstance(ancestor, ast.Assert):
            if astutil.mentions(ancestor.test, receiver):
                return True
    return False


def _guarded_by_early_out(call: ast.Call, receiver: str) -> bool:
    """An earlier ``if <bus>...: return/raise/continue`` in the function."""
    function = _enclosing_function(call)
    if function is None:
        return False
    for node in ast.walk(function):
        if not isinstance(node, ast.If):
            continue
        if node.lineno >= call.lineno:
            continue
        if not astutil.mentions(node.test, receiver):
            continue
        if any(isinstance(stmt, (ast.Return, ast.Raise, ast.Continue))
               for stmt in node.body):
            return True
    return False


def _iter_findings(source: SourceFile) -> Iterator[Finding]:
    astutil.attach_parents(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            continue
        receiver = astutil.dotted_name(func.value)
        if receiver is None:
            yield Finding(
                "telemetry-guard", source.rel, node.lineno,
                "emit() on a computed expression cannot be proven guarded; "
                "bind the bus to a name and check it first")
            continue
        if (_guarded_by_ancestor_if(node, receiver)
                or _guarded_by_early_out(node, receiver)):
            continue
        yield Finding(
            "telemetry-guard", source.rel, node.lineno,
            f"{receiver}.emit(...) is not dominated by a bus-active check; "
            f"wrap it in 'if {receiver}:' (payload kwargs are evaluated "
            "even when the bus is off)")


def run(project: Project) -> Iterator[Finding]:
    for source in project.sources:
        if any(source.rel.startswith(prefix) for prefix in EXEMPT):
            continue
        yield from _iter_findings(source)


RULE = Rule(
    name="telemetry-guard",
    description="every .emit( outside obs/ is dominated by a bus-active check",
    run=run,
)
