"""The contract rules, keyed by name.

Adding a rule is one module exporting a ``RULE`` plus a line here — the
runner, the CLI ``--rule`` filter, and the suppression validator all read
:data:`ALL_RULES`.
"""

from __future__ import annotations

from typing import Dict

from repro.check.rule import Rule
from repro.check.rules import (determinism, lock_discipline,
                               registry_resolve, schema_literal,
                               snapshot_complete, telemetry_guard)

ALL_RULES: Dict[str, Rule] = {
    rule.name: rule
    for rule in (
        determinism.RULE,
        snapshot_complete.RULE,
        telemetry_guard.RULE,
        lock_discipline.RULE,
        schema_literal.RULE,
        registry_resolve.RULE,
    )
}

__all__ = ["ALL_RULES"]
