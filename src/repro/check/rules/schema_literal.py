"""Rule ``schema-literal``: one wire format, one defining constant.

Every versioned wire-format tag (``repro-telemetry/v1``,
``repro-fleet/v1``, ...) must be spelled out exactly once, as a
module-level ``UPPER_CASE = "repro-.../vN"`` constant, and referenced by
name everywhere else. Duplicated literals are how schema bumps go wrong:
one site gets the ``v2`` edit, the validator three files over keeps
accepting ``v1``. Docstrings and help text may mention schemas freely —
only standalone string literals in code count.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set, Tuple

from repro.check.findings import Finding
from repro.check.rule import Rule
from repro.check.source import Project, SourceFile

#: A whole-string wire-format tag.
SCHEMA_RE = re.compile(r"^repro-[a-z0-9-]+/v\d+$")

_UPPER_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")


def _docstring_nodes(tree: ast.AST) -> Set[int]:
    """ids of Constant nodes that are doc/first-statement strings."""
    nodes: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef,
                             ast.FunctionDef, ast.AsyncFunctionDef)):
            body = node.body
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                nodes.add(id(body[0].value))
    return nodes


def _module_definitions(
        source: SourceFile) -> Iterator[Tuple[str, str, int, ast.AST]]:
    """(literal, constant name, line, value node) per defining assignment."""
    for stmt in source.tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name) and _UPPER_RE.match(target.id)):
            continue
        value = stmt.value
        if (isinstance(value, ast.Constant) and isinstance(value.value, str)
                and SCHEMA_RE.match(value.value)):
            yield value.value, target.id, stmt.lineno, value


def run(project: Project) -> Iterator[Finding]:
    # literal -> [(file, constant name, line)]
    definitions: Dict[str, List[Tuple[str, str, int]]] = {}
    # literal -> [(file, line)] for every non-defining occurrence
    occurrences: Dict[str, List[Tuple[str, int]]] = {}

    for source in project.sources:
        defined_nodes: Set[int] = set()
        for literal, name, line, node in _module_definitions(source):
            definitions.setdefault(literal, []).append(
                (source.rel, name, line))
            defined_nodes.add(id(node))
        docstrings = _docstring_nodes(source.tree)
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and SCHEMA_RE.match(node.value)):
                continue
            if id(node) in defined_nodes or id(node) in docstrings:
                continue
            occurrences.setdefault(node.value, []).append(
                (source.rel, node.lineno))

    for literal in sorted(set(definitions) | set(occurrences)):
        defs = sorted(definitions.get(literal, []))
        sites = sorted(occurrences.get(literal, []))
        if not defs:
            for file, line in sites:
                yield Finding(
                    "schema-literal", file, line,
                    f"wire-format string '{literal}' has no module-level "
                    "defining constant; hoist it to an UPPER_CASE = "
                    "assignment and reference that")
            continue
        if len(defs) > 1:
            where = ", ".join(f"{file}:{name}" for file, name, _line in defs)
            for file, name, line in defs:
                yield Finding(
                    "schema-literal", file, line,
                    f"wire-format string '{literal}' is defined more than "
                    f"once ({where}); keep a single constant and import it")
        def_file, def_name, _def_line = defs[0]
        for file, line in sites:
            yield Finding(
                "schema-literal", file, line,
                f"inline duplicate of '{literal}'; reference "
                f"{def_name} from {def_file} instead")


RULE = Rule(
    name="schema-literal",
    description=("each repro-*/vN wire-format string has exactly one "
                 "module-level defining constant"),
    run=run,
)
