"""Rule ``determinism``: record-producing code must be replayable.

Byte-identical records across execution strategies (serial, ``--jobs``,
``--prefix-cache``, ``--batch``, the fleet) are the repo's core guarantee —
every chaos and parity suite asserts it. Inside the packages that produce
records or identities (``hw/``, ``hypervisor/``, ``guests/``, ``core/``,
``engine/``) this rule forbids the ambient-entropy APIs (wall clocks,
``os.urandom``, the module-level ``random.*`` global RNG, v1/v4 UUIDs) and
the classic silent killer: iterating a ``set`` into anything
order-sensitive. Seeded generators (``numpy.random.default_rng(seed)``,
``random.Random(seed)``) are fine and are the suggested replacement.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.check import astutil
from repro.check.findings import Finding
from repro.check.rule import Rule
from repro.check.source import Project, SourceFile

#: Packages whose code feeds records or spec identities.
SCOPE = (
    "repro/hw/",
    "repro/hypervisor/",
    "repro/guests/",
    "repro/core/",
    "repro/engine/",
)

#: Exact call origins that read ambient entropy or wall-clock time.
BANNED_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "random UUID",
}

#: Module prefixes banned outright (shared global RNG / OS entropy).
BANNED_PREFIXES = {
    "random.": "the module-level random.* global RNG",
    "secrets.": "OS entropy",
}

#: ``random.Random(seed)`` instances are the sanctioned stdlib escape.
ALLOWED_ORIGINS = frozenset({"random.Random"})

#: Constructors whose result is an unordered set.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Order-sensitive constructors: feeding them a set leaks hash order.
_ORDER_SENSITIVE_CONSTRUCTORS = frozenset({"list", "tuple"})


def _set_typed_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes of ``cls`` statically known to hold a set."""
    attrs: Set[str] = set()
    for method in astutil.class_methods(cls).values():
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                value = node.value
                annotation = getattr(node, "annotation", None)
                for target in targets:
                    attr = astutil.self_attr(target)
                    if attr is None:
                        continue
                    if _is_set_expr(value, attrs):
                        attrs.add(attr)
                    elif annotation is not None and "Set" in ast.dump(annotation):
                        attrs.add(attr)
    return attrs


def _is_set_expr(node: Optional[ast.AST], set_attrs: Set[str]) -> bool:
    """Is this expression statically a set?"""
    if node is None:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_CONSTRUCTORS
    attr = astutil.self_attr(node)
    return attr is not None and attr in set_attrs


def _enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    for ancestor in astutil.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def _iter_findings(source: SourceFile) -> Iterator[Finding]:
    astutil.attach_parents(source.tree)
    imports = astutil.import_map(source.tree)
    set_attr_cache = {}

    def set_attrs_for(node: ast.AST) -> Set[str]:
        cls = _enclosing_class(node)
        if cls is None:
            return set()
        if cls not in set_attr_cache:
            set_attr_cache[cls] = _set_typed_attrs(cls)
        return set_attr_cache[cls]

    def describe(expr: ast.AST) -> str:
        name = astutil.dotted_name(expr)
        if name is not None:
            return name
        return type(expr).__name__.lower()

    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            origin = astutil.resolve_origin(node.func, imports)
            if origin is not None and origin not in ALLOWED_ORIGINS:
                if origin in BANNED_CALLS:
                    yield Finding(
                        "determinism", source.rel, node.lineno,
                        f"call to {origin} ({BANNED_CALLS[origin]}) in "
                        "record-producing code; thread a seeded source "
                        "through instead")
                else:
                    for prefix, why in BANNED_PREFIXES.items():
                        if origin.startswith(prefix):
                            yield Finding(
                                "determinism", source.rel, node.lineno,
                                f"call to {origin} uses {why}; use a "
                                "seeded random.Random / "
                                "numpy.random.default_rng(seed)")
                            break
            # list(set_expr) / tuple(set_expr): hash order becomes element
            # order of an ordered container.
            if (isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_CONSTRUCTORS
                    and node.args
                    and _is_set_expr(node.args[0], set_attrs_for(node))):
                yield Finding(
                    "determinism", source.rel, node.lineno,
                    f"{node.func.id}() over the unordered set "
                    f"'{describe(node.args[0])}' leaks hash order; wrap "
                    "it in sorted(...)")
        elif isinstance(node, ast.For):
            if _is_set_expr(node.iter, set_attrs_for(node)):
                yield Finding(
                    "determinism", source.rel, node.lineno,
                    "for-loop iterates the unordered set "
                    f"'{describe(node.iter)}'; iterate sorted(...) so "
                    "side effects are ordered")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for comp in node.generators:
                if _is_set_expr(comp.iter, set_attrs_for(node)):
                    yield Finding(
                        "determinism", source.rel, node.lineno,
                        "comprehension builds an ordered result from the "
                        f"unordered set '{describe(comp.iter)}'; iterate "
                        "sorted(...)")


def run(project: Project) -> Iterator[Finding]:
    for source in project.files_under(*SCOPE):
        yield from _iter_findings(source)


RULE = Rule(
    name="determinism",
    description=("no ambient entropy or unordered-set iteration in "
                 "record-producing packages"),
    run=run,
)
