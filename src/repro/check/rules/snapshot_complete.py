"""Rule ``snapshot-complete``: ``snapshot_state`` covers what mutates.

Prefix fast-forward, pooling, and batched lockstep all fork simulations
from snapshots; a mutable field that is missing from — or *aliased into* —
a snapshot corrupts every fork sharing it (the PR-8 ``ParkRecord`` bug).
For every class implementing ``snapshot_state`` this rule cross-checks the
attributes assigned in ``__init__`` against the snapshot body:

* an attribute mutated anywhere after construction (including by
  ``restore_state``) must be *read* by ``snapshot_state``;
* a container-typed attribute may not appear in the snapshot bare — it
  must pass through a copying call (``dict(...)``, ``set(...)``,
  ``sorted(...)``, ``.copy()``, ...) so the snapshot owns its storage.

Deliberately-excluded fields (caches rebuilt lazily, shared immutables)
carry an inline suppression on their ``__init__`` assignment.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.check import astutil
from repro.check.findings import Finding
from repro.check.rule import Rule
from repro.check.source import Project, SourceFile

#: Expressions that initialise a mutable container.
_CONTAINER_CALLS = frozenset({
    "list", "dict", "set", "deque", "defaultdict", "OrderedDict",
    "Counter", "bytearray",
})

_SETUP_METHODS = frozenset({"__init__", "__post_init__"})


def _is_container_init(node: Optional[ast.AST]) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = astutil.dotted_name(node.func) or ""
        return name.split(".")[-1] in _CONTAINER_CALLS
    return False


def _init_attrs(init: ast.AST) -> Dict[str, Tuple[int, bool]]:
    """attr -> (assignment line, is-mutable-container) from ``__init__``."""
    attrs: Dict[str, Tuple[int, bool]] = {}
    for node in ast.walk(init):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                attr = astutil.self_attr(target)
                if attr is not None and attr not in attrs:
                    attrs[attr] = (node.lineno,
                                   _is_container_init(node.value))
    return attrs


def _alias_sites(snapshot: ast.AST,
                 container_attrs: Set[str]) -> Iterator[Tuple[str, int]]:
    """Bare uses of mutable ``self.X`` that end up inside the snapshot."""
    for node in ast.walk(snapshot):
        attr = astutil.self_attr(node)
        if attr is None or attr not in container_attrs:
            continue
        if not isinstance(getattr(node, "ctx", None), ast.Load):
            continue
        parent = astutil.parent(node)
        if isinstance(parent, (ast.Dict, ast.Tuple, ast.List, ast.Return)):
            yield attr, node.lineno
        elif isinstance(parent, (ast.Assign, ast.AnnAssign)):
            # Storing the bare reference into a structure leaks it; binding
            # it to a local name (a speed alias) does not.
            targets = (parent.targets if isinstance(parent, ast.Assign)
                       else [parent.target])
            if node is parent.value and any(
                    not isinstance(target, ast.Name) for target in targets):
                yield attr, node.lineno
        elif isinstance(parent, (ast.Call, ast.keyword)):
            call = parent if isinstance(parent, ast.Call) else (
                astutil.parent(parent))
            if not isinstance(call, ast.Call):
                continue
            if isinstance(call.func, ast.Attribute) and call.func.value is node:
                continue  # self.X.copy() and friends: X is the receiver
            name = (astutil.dotted_name(call.func) or "").split(".")[-1]
            if name in astutil.COPYING_CALLS:
                continue
            # Uppercase callee = a constructor that will store the
            # reference (the ParkRecord shape); helpers get the benefit
            # of the doubt.
            if name[:1].isupper():
                yield attr, node.lineno


def _check_class(source: SourceFile, cls: ast.ClassDef) -> Iterator[Finding]:
    methods = astutil.class_methods(cls)
    snapshot = methods.get("snapshot_state")
    init = methods.get("__init__")
    if snapshot is None or init is None:
        return
    attrs = _init_attrs(init)
    snapshot_reads = astutil.self_attr_reads(snapshot)

    mutated_by: Dict[str, str] = {}
    for name, method in methods.items():
        if name in _SETUP_METHODS or name == "snapshot_state":
            continue
        for attr, _node, _how in astutil.iter_self_mutations(method):
            mutated_by.setdefault(attr, name)

    for attr, (line, _is_container) in sorted(attrs.items()):
        if attr in mutated_by and attr not in snapshot_reads:
            yield Finding(
                "snapshot-complete", source.rel, line,
                f"{cls.name}.{attr} is mutated by {mutated_by[attr]}() but "
                "never captured in snapshot_state; restored forks will "
                "share stale state")

    container_attrs = {attr for attr, (_line, mutable) in attrs.items()
                       if mutable}
    seen: Set[str] = set()
    for attr, line in _alias_sites(snapshot, container_attrs):
        if attr in seen:
            continue
        seen.add(attr)
        yield Finding(
            "snapshot-complete", source.rel, line,
            f"{cls.name}.{attr} is aliased into the snapshot without a "
            "copy; mutate-after-snapshot corrupts every fork (wrap in "
            "dict()/list()/set())")


def _iter_findings(source: SourceFile) -> Iterator[Finding]:
    astutil.attach_parents(source.tree)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            yield from _check_class(source, node)


def run(project: Project) -> Iterator[Finding]:
    for source in project.sources:
        yield from _iter_findings(source)


RULE = Rule(
    name="snapshot-complete",
    description=("mutable attributes assigned in __init__ are captured — "
                 "and copied, not aliased — by snapshot_state"),
    run=run,
)
