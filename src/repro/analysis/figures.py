"""ASCII rendering of figures.

The benchmarks regenerate the paper's figure as text: a labelled bar chart
(and a one-line "pie" summary) that can be printed by pytest-benchmark runs
and diffed between revisions.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from repro.errors import AnalysisError

DEFAULT_WIDTH = 50


def ascii_bar_chart(data: Mapping[str, float], *, width: int = DEFAULT_WIDTH,
                    title: str = "", unit: str = "%") -> str:
    """Render a mapping of label -> fraction (0..1) as a horizontal bar chart."""
    if width <= 0:
        raise AnalysisError("chart width must be positive")
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if not data:
        lines.append("(no data)")
        return "\n".join(lines)
    label_width = max(len(label) for label in data)
    for label, fraction in data.items():
        clamped = max(0.0, min(1.0, float(fraction)))
        filled = int(round(clamped * width))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{label:<{label_width}} |{bar}| {clamped * 100:5.1f}{unit}")
    return "\n".join(lines)


def ascii_pie_summary(data: Mapping[str, float]) -> str:
    """One-line share summary, largest first (a textual pie chart)."""
    if not data:
        return "(no data)"
    parts = sorted(data.items(), key=lambda item: -item[1])
    return " | ".join(f"{label} {fraction * 100:.1f}%" for label, fraction in parts)


#: Eight-level block ramp used by :func:`ascii_sparkline`.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def ascii_sparkline(values: Sequence[float], *, width: int = 0) -> str:
    """Render a numeric series as a one-line block-character sparkline.

    Values are scaled to the series' own min..max (a flat series renders as
    a low bar, not a blank). ``width`` > 0 downsamples to that many columns
    by bucketing (each column shows its bucket's mean), so an arbitrarily
    long throughput history fits a fixed dashboard slot.
    """
    values = [float(value) for value in values]
    if not values:
        return "(no data)"
    if width > 0 and len(values) > width:
        bucket = len(values) / width
        values = [
            sum(chunk) / len(chunk)
            for chunk in (
                values[int(column * bucket):max(int((column + 1) * bucket),
                                                int(column * bucket) + 1)]
                for column in range(width)
            )
        ]
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int(round((value - low) / span * top))]
        for value in values
    )


def ascii_series_table(rows: Sequence[Tuple[object, ...]],
                       headers: Sequence[str]) -> str:
    """Render a small table (used by sweep benches)."""
    if not headers:
        raise AnalysisError("a table needs headers")
    widths = [len(header) for header in headers]
    text_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError("row width does not match headers")
        text_row = [
            f"{value:.3f}" if isinstance(value, float) else str(value)
            for value in row
        ]
        widths = [max(width, len(text)) for width, text in zip(widths, text_row)]
        text_rows.append(text_row)
    header_line = "  ".join(f"{header:<{width}}" for header, width in zip(headers, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(f"{text:<{width}}" for text, width in zip(row, widths))
        for row in text_rows
    ]
    return "\n".join([header_line, separator] + body)
