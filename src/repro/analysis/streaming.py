"""Single-pass streaming analysis of experiment records.

The paper's methodology collects every test into a log "which is further
analyzed to understand how the hypervisor reacted to injected faults"; at
production scale those logs are million-record JSON-Lines stores, so this
module analyzes them as *streams*.

**O(1)-memory contract:** every accumulator here consumes an
``Iterator[ExperimentRecord]`` one record at a time and keeps only
fixed-size rolling state — per-outcome counters, management counters,
per-register-class totals, one such block per *distinct group value* when
grouping, and one ``(n, fraction, ci)`` point per convergence checkpoint.
Peak memory is therefore proportional to the number of outcome classes,
groups, and checkpoints, and **independent of the number of records**
(``benchmarks/bench_analyze_stream.py`` gates this on a 200k-record store).
No function in this module may build a list of records.

The counting cores (:class:`~repro.core.analysis.OutcomeTally`,
:class:`~repro.core.analysis.ManagementTally`, re-exported here) are shared
with the engine's :class:`~repro.engine.aggregate.LiveAggregator`, and every
summary object is built through
:func:`~repro.core.analysis.distribution_from_counts` /
:func:`~repro.core.analysis.availability_from_counts` — the same
constructors the batch functions in :mod:`repro.core.analysis` use — so
live, offline-batch, and offline-streaming numbers can never drift.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Schema of the ``repro analyze --format json`` export.
ANALYZE_SCHEMA = "repro-analyze/v1"

#: Schema of the ``repro compare --format json`` export.
COMPARE_SCHEMA = "repro-compare/v1"

from repro.analysis.stats import proportion_confidence_interval
from repro.core.analysis import (
    DistributionSummary,
    ManagementSummary,
    ManagementTally,
    OutcomeTally,
    require_record_field,
)
from repro.core.outcomes import Outcome
from repro.core.recording import ExperimentRecord
from repro.errors import AnalysisError

#: Shares reported by the paper's Figure 3 (read off the chart) — the
#: reference the ``repro compare`` side-by-side prints next to measured
#: campaigns.
PAPER_FIGURE3_REFERENCE: Dict[str, float] = {
    "correct": 0.63,
    "panic_park": 0.30,
    "cpu_park": 0.07,
}


class StreamingAnalyzer:
    """Accumulates every per-campaign summary in one pass over a stream."""

    def __init__(self) -> None:
        self.tally = OutcomeTally()
        self.management = ManagementTally()
        self._register_class_totals: Dict[str, int] = defaultdict(int)

    def add(self, record: ExperimentRecord) -> None:
        self.tally.add(record.outcome_enum, injections=record.injections)
        self.management.add(record)
        for register_class, count in record.register_class_counts.items():
            self._register_class_totals[register_class] += count

    def extend(self, records: Iterable[ExperimentRecord]) -> "StreamingAnalyzer":
        for record in records:
            self.add(record)
        return self

    @property
    def total(self) -> int:
        return self.tally.completed

    def distribution(self) -> DistributionSummary:
        return self.tally.distribution()

    def availability(self) -> Dict[str, float]:
        return self.tally.availability()

    def mean_injections(self) -> float:
        return self.tally.mean_injections()

    def management_summary(self) -> ManagementSummary:
        return self.management.summary()

    def register_class_totals(self) -> Dict[str, int]:
        return dict(self._register_class_totals)

    def to_dict(self) -> dict:
        """JSON-serializable summary (the ``--format json`` payload body)."""
        distribution = self.distribution()
        management = self.management_summary()
        return {
            "total": self.total,
            "outcomes": {
                outcome.value: {
                    "count": distribution.count(outcome),
                    "fraction": distribution.fraction(outcome),
                    "ci_low": (distribution.shares[outcome].ci_low
                               if outcome in distribution.shares else 0.0),
                    "ci_high": (distribution.shares[outcome].ci_high
                                if outcome in distribution.shares else 0.0),
                }
                for outcome in Outcome
            },
            "availability": self.availability(),
            "management": {
                "total": management.total,
                "create_attempts": management.create_attempts,
                "create_rejections": management.create_rejections,
                "rejection_rate": management.rejection_rate,
                "inconsistent_states": management.inconsistent_states,
                "panics": management.panics,
            },
            "register_class_totals": self.register_class_totals(),
            "mean_injections_per_test": self.mean_injections(),
        }


class GroupedStreamingAnalyzer:
    """One :class:`StreamingAnalyzer` per distinct value of a record field.

    ``key`` is validated against ``ExperimentRecord.__dataclass_fields__``
    up front (even before any record arrives), so a typo'd key fails fast
    instead of silently producing an empty grouping.
    """

    def __init__(self, key: str) -> None:
        self.key = require_record_field(key)
        self.groups: Dict[str, StreamingAnalyzer] = {}

    def add(self, record: ExperimentRecord) -> None:
        group = str(getattr(record, self.key))
        analyzer = self.groups.get(group)
        if analyzer is None:
            analyzer = self.groups[group] = StreamingAnalyzer()
        analyzer.add(record)

    def extend(self,
               records: Iterable[ExperimentRecord]) -> "GroupedStreamingAnalyzer":
        for record in records:
            self.add(record)
        return self

    def distributions(self) -> Dict[str, DistributionSummary]:
        return {group: analyzer.distribution()
                for group, analyzer in self.groups.items()}

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "groups": {group: analyzer.to_dict()
                       for group, analyzer in sorted(self.groups.items())},
        }


class StreamingConvergence:
    """Single-pass convergence curve: outcome share after the first N records.

    Produces exactly the points of
    :func:`repro.core.analysis.convergence_curve` — one ``(n, fraction,
    ci_low, ci_high)`` tuple per requested checkpoint, where checkpoints past
    the end of the stream clamp to the final count — while storing only one
    snapshot per checkpoint instead of the whole outcome list.
    """

    def __init__(self, outcome: Outcome, checkpoints: Sequence[int]) -> None:
        self.outcome = outcome
        self.checkpoints = list(checkpoints)
        self._pending = sorted({cp for cp in self.checkpoints if cp > 0})
        self._next_index = 0
        self._seen = 0
        self._hits = 0
        self._snapshots: Dict[int, Tuple[float, float, float]] = {}

    def add(self, record: ExperimentRecord) -> None:
        self._seen += 1
        if record.outcome_enum is self.outcome:
            self._hits += 1
        if (self._next_index < len(self._pending)
                and self._seen == self._pending[self._next_index]):
            self._snapshots[self._seen] = self._point(self._hits, self._seen)
            self._next_index += 1

    @staticmethod
    def _point(hits: int, n: int) -> Tuple[float, float, float]:
        low, high = proportion_confidence_interval(hits, n)
        return (hits / n, low, high)

    def curve(self) -> List[Tuple[int, float, float, float]]:
        points: List[Tuple[int, float, float, float]] = []
        for checkpoint in self.checkpoints:
            n = min(checkpoint, self._seen)
            if n <= 0:
                points.append((0, 0.0, 0.0, 0.0))
                continue
            snapshot = self._snapshots.get(n)
            if snapshot is None:
                # Checkpoint past the end of the stream: clamp to the final
                # count, whose statistics are the rolling totals.
                snapshot = self._point(self._hits, self._seen)
            points.append((n, *snapshot))
        return points


def default_checkpoints(limit: int = 10_000_000) -> List[int]:
    """The 1-2-5 ladder used by ``repro analyze --convergence``.

    The streaming accumulator needs its checkpoints before the record count
    is known, so the CLI registers the whole ladder up front; ladder rungs
    past the end of the store clamp to the final count and are de-duplicated
    at rendering time.
    """
    ladder: List[int] = []
    decade = 10
    while decade <= limit:
        for multiplier in (1, 2, 5):
            value = decade * multiplier
            if value <= limit:
                ladder.append(value)
        decade *= 10
    return ladder


@dataclass
class StreamAnalysis:
    """Everything ``repro analyze`` accumulated in its single pass."""

    analyzer: StreamingAnalyzer
    grouped: Optional[GroupedStreamingAnalyzer] = None
    convergence: Optional[StreamingConvergence] = None
    source: Optional[str] = None

    @property
    def total(self) -> int:
        return self.analyzer.total

    def convergence_points(self) -> List[Tuple[int, float, float, float]]:
        """The convergence curve with clamped duplicate tail points removed."""
        if self.convergence is None:
            return []
        points: List[Tuple[int, float, float, float]] = []
        for point in self.convergence.curve():
            if points and point[0] <= points[-1][0]:
                continue
            points.append(point)
        return points

    def to_dict(self) -> dict:
        payload = {
            "schema": ANALYZE_SCHEMA,
            **self.analyzer.to_dict(),
        }
        if self.source is not None:
            payload["source"] = self.source
        if self.grouped is not None:
            payload["group_by"] = self.grouped.to_dict()
        if self.convergence is not None:
            payload["convergence"] = {
                "outcome": self.convergence.outcome.value,
                "points": [
                    {"n": n, "fraction": fraction,
                     "ci_low": low, "ci_high": high}
                    for n, fraction, low, high in self.convergence_points()
                ],
            }
        return payload


def analyze_records(records: Iterable[ExperimentRecord], *,
                    group_key: Optional[str] = None,
                    convergence_outcome: Optional[Outcome] = None,
                    checkpoints: Optional[Sequence[int]] = None,
                    source: Optional[str] = None) -> StreamAnalysis:
    """Run every requested accumulator over ``records`` in one pass."""
    analyzer = StreamingAnalyzer()
    grouped = GroupedStreamingAnalyzer(group_key) if group_key else None
    convergence = None
    if convergence_outcome is not None:
        convergence = StreamingConvergence(
            convergence_outcome,
            checkpoints if checkpoints is not None else default_checkpoints(),
        )
    for record in records:
        analyzer.add(record)
        if grouped is not None:
            grouped.add(record)
        if convergence is not None:
            convergence.add(record)
    return StreamAnalysis(analyzer=analyzer, grouped=grouped,
                          convergence=convergence, source=source)


def outcome_deltas(baseline: DistributionSummary,
                   other: DistributionSummary) -> Dict[str, float]:
    """Per-outcome fraction deltas (``other`` minus ``baseline``)."""
    return {
        outcome.value: other.fraction(outcome) - baseline.fraction(outcome)
        for outcome in Outcome
    }


def compare_to_dict(analyses: "Mapping[str, StreamingAnalyzer]", *,
                    paper_reference: Optional[Mapping[str, float]] = None) -> dict:
    """JSON-serializable payload for ``repro compare --format json``.

    Deltas are computed against the first campaign in (insertion) order.
    """
    if not analyses:
        raise AnalysisError("at least one campaign is required to compare")
    names = list(analyses)
    baseline_name = names[0]
    baseline = analyses[baseline_name].distribution()
    payload: dict = {
        "schema": COMPARE_SCHEMA,
        "baseline": baseline_name,
        "campaigns": {name: analyzer.to_dict()
                      for name, analyzer in analyses.items()},
        "deltas": {
            name: outcome_deltas(baseline, analyses[name].distribution())
            for name in names[1:]
        },
    }
    if paper_reference is not None:
        payload["paper_figure3_reference"] = dict(paper_reference)
    return payload
