"""Statistical helpers and figure rendering shared by benches and reports."""

from repro.analysis.stats import (
    proportion_confidence_interval,
    required_sample_size,
    summarize_proportion,
)
from repro.analysis.figures import ascii_bar_chart, ascii_pie_summary

__all__ = [
    "ascii_bar_chart",
    "ascii_pie_summary",
    "proportion_confidence_interval",
    "required_sample_size",
    "summarize_proportion",
]
