"""Statistical helpers, figure rendering, and streaming record analysis."""

from repro.analysis.stats import (
    proportion_confidence_interval,
    required_sample_size,
    summarize_proportion,
)
from repro.analysis.figures import ascii_bar_chart, ascii_pie_summary

#: Streaming-analysis names re-exported lazily (PEP 562):
#: ``repro.analysis.streaming`` imports ``repro.core.analysis``, which in
#: turn imports ``repro.analysis.stats`` (and hence this package), so an
#: eager import here would be a cycle.
_STREAMING_EXPORTS = frozenset({
    "GroupedStreamingAnalyzer",
    "OutcomeTally",
    "PAPER_FIGURE3_REFERENCE",
    "StreamAnalysis",
    "StreamingAnalyzer",
    "StreamingConvergence",
    "analyze_records",
    "compare_to_dict",
    "default_checkpoints",
    "outcome_deltas",
})


def __getattr__(name):
    if name in _STREAMING_EXPORTS:
        from repro.analysis import streaming
        return getattr(streaming, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = sorted(_STREAMING_EXPORTS | {
    "ascii_bar_chart",
    "ascii_pie_summary",
    "proportion_confidence_interval",
    "required_sample_size",
    "summarize_proportion",
})
