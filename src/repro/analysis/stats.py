"""Statistics for fault-injection campaigns.

Fault-injection outcomes are Bernoulli observations, so everything the
reports need reduces to proportions and their confidence intervals. Wilson
score intervals are used because campaign sizes are modest (tens to a few
hundred tests) and several outcome classes are rare, where the normal
approximation misbehaves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import AnalysisError

#: z value for a 95% two-sided interval.
Z_95 = 1.959963984540054


def proportion_confidence_interval(successes: int, total: int,
                                   *, z: float = Z_95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if total < 0 or successes < 0:
        raise AnalysisError("counts must be non-negative")
    if successes > total:
        raise AnalysisError(f"successes ({successes}) exceed total ({total})")
    if total == 0:
        return (0.0, 0.0)
    p = successes / total
    denominator = 1.0 + z * z / total
    centre = (p + z * z / (2 * total)) / denominator
    margin = (z / denominator) * math.sqrt(
        p * (1.0 - p) / total + z * z / (4.0 * total * total)
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


@dataclass(frozen=True)
class ProportionSummary:
    """A proportion with its confidence interval."""

    successes: int
    total: int
    fraction: float
    ci_low: float
    ci_high: float

    @property
    def ci_width(self) -> float:
        return self.ci_high - self.ci_low

    def describe(self) -> str:
        return (
            f"{self.successes}/{self.total} = {self.fraction * 100:.1f}% "
            f"[{self.ci_low * 100:.1f}%, {self.ci_high * 100:.1f}%]"
        )


def summarize_proportion(successes: int, total: int) -> ProportionSummary:
    """Build a :class:`ProportionSummary` with a 95% Wilson interval."""
    low, high = proportion_confidence_interval(successes, total)
    fraction = successes / total if total else 0.0
    return ProportionSummary(
        successes=successes, total=total, fraction=fraction,
        ci_low=low, ci_high=high,
    )


def required_sample_size(expected_fraction: float, margin: float,
                         *, z: float = Z_95) -> int:
    """Sample size needed to estimate a proportion within ``margin``.

    Useful for sizing campaigns: the paper's Figure 3 reports a ~30% panic
    share; estimating it within ±5 points needs roughly 320 tests.
    """
    if not 0.0 < expected_fraction < 1.0:
        raise AnalysisError("expected_fraction must be strictly between 0 and 1")
    if margin <= 0:
        raise AnalysisError("margin must be positive")
    n = (z * z * expected_fraction * (1.0 - expected_fraction)) / (margin * margin)
    return int(math.ceil(n))
