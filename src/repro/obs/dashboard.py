"""The watch dashboard: one self-contained HTML page + a terminal rendering.

``render_dashboard_html`` returns a single file with inline CSS/JS and no
external dependencies (the watch server must work on an air-gapped test
bench). The page polls ``/metrics.json`` once a second and tails ``/events``
over SSE; everything it shows is derived in :mod:`repro.obs.rollup`.

``render_text_dashboard`` renders the same metrics payload for a terminal —
the ``watch --once`` path and the tests use it, and it reuses the ascii
charts from :mod:`repro.analysis.figures` embedded in the payload.

Colors follow the outcome *class*, fixed per outcome name (never assigned by
rank, so a filtered distribution keeps its hues), with the count and share
always printed beside each bar — color never carries the meaning alone.
Light and dark values are separate steps of the same hues, selected for
their surfaces, and the bars render in the fixed :data:`OUTCOME_ORDER` —
the ordering was chosen so every adjacent pair clears the colorblind and
normal-vision separation gates in both modes (a count-sorted order would
make adjacency dynamic and unverifiable, and would shuffle rows mid-run).
"""

from __future__ import annotations

import json

#: Fixed outcome-class → hue assignment (light, dark). ``correct`` wears the
#: mode-invariant green; the failure classes take categorical slots in a
#: fixed assignment keyed by outcome name. Unknown outcome names fall back
#: to violet so a new classifier class is visible, not invisible.
OUTCOME_COLORS = {
    "correct": ("#008300", "#008300"),
    "panic_park": ("#2a78d6", "#3987e5"),
    "cpu_park": ("#eb6834", "#d95926"),
    "invalid_arguments": ("#1baf7a", "#199e70"),
    "inconsistent_state": ("#eda100", "#c98500"),
    "silent_failure": ("#e34948", "#e66767"),
    # Infrastructure verdicts (quarantined specs): harness greys, visually
    # apart from every SUT-behaviour hue — they mean "no answer obtained",
    # not a paper outcome class.
    "infra_timeout": ("#6b6a64", "#9a9891"),
    "infra_crash": ("#3d3c38", "#c6c4bb"),
}

#: Fixed display order of the outcome bars (validated adjacent-pair
#: separation in both modes); outcomes not listed here append at the end.
#: The infra verdicts sit last: rare by design, and harness-grey between
#: two saturated hues keeps the adjacency separation comfortable.
OUTCOME_ORDER = (
    "correct",
    "silent_failure",
    "panic_park",
    "cpu_park",
    "invalid_arguments",
    "inconsistent_state",
    "infra_timeout",
    "infra_crash",
)

_FALLBACK_COLOR = ("#4a3aa7", "#9085e9")

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
  :root {
    color-scheme: light dark;
    --surface-1: #fcfcfb; --page: #f9f9f7;
    --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
    --grid: #e1e0d9; --baseline: #c3c2b7;
    --border: rgba(11, 11, 11, 0.10);
    --series-1: #2a78d6;
    --good: #0ca30c; --critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      --surface-1: #1a1a19; --page: #0d0d0d;
      --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
      --grid: #2c2c2a; --baseline: #383835;
      --border: rgba(255, 255, 255, 0.10);
      --series-1: #3987e5;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 20px; background: var(--page); color: var(--ink-1);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 18px; font-weight: 600; margin: 0 0 4px; }
  .sub { color: var(--ink-2); margin: 0 0 16px; }
  .grid { display: grid; gap: 12px;
          grid-template-columns: repeat(auto-fit, minmax(300px, 1fr)); }
  .card {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 14px 16px;
  }
  .card h2 {
    font-size: 12px; font-weight: 600; letter-spacing: 0.04em;
    text-transform: uppercase; color: var(--ink-muted); margin: 0 0 10px;
  }
  .tiles { display: grid; grid-template-columns: repeat(4, 1fr); gap: 12px; }
  .tile .v { font-size: 26px; font-weight: 600; }
  .tile .l { color: var(--ink-2); font-size: 12px; }
  .bar-row { display: grid; grid-template-columns: 140px 1fr 110px;
             gap: 8px; align-items: center; margin: 6px 0; }
  .bar-label { color: var(--ink-2); overflow: hidden;
               text-overflow: ellipsis; white-space: nowrap; }
  .bar-track { background: none; border-left: 2px solid var(--baseline);
               height: 14px; }
  .bar-fill { height: 100%; border-radius: 0 4px 4px 0; min-width: 2px; }
  .bar-value { color: var(--ink-1); text-align: right;
               font-variant-numeric: tabular-nums; }
  table { border-collapse: collapse; width: 100%; }
  th { text-align: left; color: var(--ink-muted); font-weight: 500;
       font-size: 12px; border-bottom: 1px solid var(--grid);
       padding: 4px 8px 6px 0; }
  td { padding: 5px 8px 5px 0; border-bottom: 1px solid var(--grid);
       font-variant-numeric: tabular-nums; }
  svg text { fill: var(--ink-muted); font-size: 11px; }
  #events {
    margin: 0; max-height: 240px; overflow-y: auto; font-size: 12px;
    font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
    color: var(--ink-2); white-space: pre-wrap; word-break: break-all;
  }
  #state[data-state="done"] { color: var(--good); }
  #state[data-state="stale"] { color: var(--critical); }
  .wide { grid-column: 1 / -1; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<p class="sub"><span id="campaign">waiting for campaign…</span>
 · <span id="state" data-state="waiting">waiting</span></p>

<div class="grid">
  <div class="card wide">
    <div class="tiles">
      <div class="tile"><div class="v" id="t-progress">–</div>
        <div class="l">experiments completed</div></div>
      <div class="tile"><div class="v" id="t-failrate">–</div>
        <div class="l">failure rate</div></div>
      <div class="tile"><div class="v" id="t-throughput">–</div>
        <div class="l">tests / second</div></div>
      <div class="tile"><div class="v" id="t-ciwidth">–</div>
        <div class="l">95% CI width (<span id="t-cioutcome">correct</span> share)</div></div>
    </div>
  </div>

  <div class="card">
    <h2>Outcome distribution</h2>
    <div id="outcomes"><p class="bar-label">no completions yet</p></div>
  </div>

  <div class="card">
    <h2>Throughput (tests/s over the run)</h2>
    <svg id="spark" viewBox="0 0 600 120" preserveAspectRatio="none"
         width="100%" height="120" role="img"
         aria-label="throughput sparkline"></svg>
    <p class="bar-label" id="spark-note"></p>
  </div>

  <div class="card">
    <h2>Workers</h2>
    <table>
      <thead><tr><th>worker</th><th>completed</th><th>busy s</th>
        <th>prefix s</th><th>share</th></tr></thead>
      <tbody id="workers"><tr><td colspan="5">no workers yet</td></tr></tbody>
    </table>
  </div>

  <div class="card">
    <h2>Timing split</h2>
    <div id="timing"><p class="bar-label">no timed experiments yet</p></div>
  </div>

  <div class="card">
    <h2>Fault tolerance</h2>
    <table>
      <thead><tr><th>crashes</th><th>respawns</th><th>retries</th>
        <th>timeouts</th><th>quarantined</th></tr></thead>
      <tbody><tr id="fault-tolerance">
        <td>0</td><td>0</td><td>0</td><td>0</td><td>0</td>
      </tr></tbody>
    </table>
    <p class="bar-label" id="fault-note">no supervision events</p>
  </div>

  <div class="card">
    <h2>Batching</h2>
    <table>
      <thead><tr><th>batches</th><th>lanes</th><th>evictions</th>
        <th>occupancy</th></tr></thead>
      <tbody><tr id="batching">
        <td>0</td><td>0</td><td>0</td><td>–</td>
      </tr></tbody>
    </table>
    <p class="bar-label" id="batch-note">batched lockstep core inactive</p>
  </div>

  <div class="card">
    <h2>Fleet</h2>
    <table>
      <thead><tr><th>hosts</th><th>lost</th><th>leases</th><th>expired</th>
        <th>stolen</th><th>merged</th><th>dupes</th></tr></thead>
      <tbody><tr id="fleet">
        <td>0</td><td>0</td><td>0</td><td>0</td><td>0</td><td>0</td><td>0</td>
      </tr></tbody>
    </table>
    <p class="bar-label" id="fleet-note">fleet coordinator inactive</p>
  </div>

  <div class="card wide">
    <h2>Event stream (/events)</h2>
    <pre id="events"></pre>
  </div>
</div>

<script>
"use strict";
const OUTCOME_COLORS = __OUTCOME_COLORS__;
const OUTCOME_ORDER = __OUTCOME_ORDER__;
const FALLBACK = __FALLBACK_COLOR__;
const dark = window.matchMedia
  && window.matchMedia("(prefers-color-scheme: dark)").matches;
const colorOf = name => (OUTCOME_COLORS[name] || FALLBACK)[dark ? 1 : 0];
const fmt = (x, d = 1) => x == null ? "–" : Number(x).toFixed(d);
const pct = x => x == null ? "–" : (100 * x).toFixed(1) + "%";

function renderBars(el, rows) {
  // rows: [{label, fraction, value, color}] — label + value always printed,
  // so the hue never carries the meaning alone.
  if (!rows.length) {
    el.innerHTML = '<p class="bar-label">no completions yet</p>';
    return;
  }
  el.innerHTML = rows.map(r => `
    <div class="bar-row">
      <span class="bar-label" title="${r.label}">${r.label}</span>
      <div class="bar-track"><div class="bar-fill"
        style="width:${Math.max(0, Math.min(100, 100 * r.fraction))}%;
               background:${r.color}"></div></div>
      <span class="bar-value">${r.value}</span>
    </div>`).join("");
}

function renderSpark(series) {
  const svg = document.getElementById("spark");
  if (!series.length) { svg.innerHTML = ""; return; }
  const w = 600, h = 120, pad = 6;
  const xs = series.map(p => p.elapsed_s), ys = series.map(p => p.per_s);
  const x0 = Math.min(...xs), x1 = Math.max(...xs, x0 + 1e-9);
  const yMax = Math.max(...ys, 1e-9);
  const X = x => pad + (w - 2 * pad) * (x - x0) / (x1 - x0);
  const Y = y => h - pad - (h - 2 * pad) * y / yMax;
  const pts = series.map(p => `${X(p.elapsed_s).toFixed(1)},${Y(p.per_s).toFixed(1)}`);
  const last = series[series.length - 1];
  svg.innerHTML =
    `<line x1="${pad}" y1="${h - pad}" x2="${w - pad}" y2="${h - pad}"
       stroke="var(--baseline)" stroke-width="1"/>` +
    `<polyline points="${pts.join(" ")}" fill="none"
       stroke="var(--series-1)" stroke-width="2"
       stroke-linejoin="round" stroke-linecap="round"/>` +
    `<circle cx="${X(last.elapsed_s)}" cy="${Y(last.per_s)}" r="3.5"
       fill="var(--series-1)" stroke="var(--surface-1)" stroke-width="2"/>`;
  document.getElementById("spark-note").textContent =
    `now ${fmt(last.per_s)} /s · peak ${fmt(yMax)} /s`;
}

function render(m) {
  const snap = m.snapshot || {};
  const campaign = m.campaign || {};
  document.getElementById("campaign").textContent = campaign.name
    ? `campaign ${campaign.name}` : "waiting for campaign…";
  const stale = m.updated_ts && (m.ts - m.updated_ts) > 10 && m.state === "running";
  const state = stale ? "stale" : m.state;
  const stateEl = document.getElementById("state");
  stateEl.textContent = state;
  stateEl.dataset.state = state;

  const total = snap.total || campaign.total;
  document.getElementById("t-progress").textContent =
    snap.completed == null ? "–"
      : total ? `${snap.completed} / ${total}` : `${snap.completed}`;
  document.getElementById("t-failrate").textContent = pct(snap.failure_rate);
  document.getElementById("t-throughput").textContent =
    fmt(m.throughput && m.throughput.current_per_s);
  const conv = m.convergence || {};
  document.getElementById("t-ciwidth").textContent =
    conv.n ? pct(conv.ci_width) : "–";
  document.getElementById("t-cioutcome").textContent = conv.outcome || "correct";

  const counts = snap.outcome_counts || {};
  const completed = snap.completed || 0;
  // Fixed display order: adjacency is static, so the validated palette
  // separation holds, and rows never shuffle under a live update.
  const rank = name => {
    const i = OUTCOME_ORDER.indexOf(name);
    return i < 0 ? OUTCOME_ORDER.length : i;
  };
  renderBars(document.getElementById("outcomes"),
    Object.entries(counts)
      .sort((a, b) => rank(a[0]) - rank(b[0]) || a[0].localeCompare(b[0]))
      .map(([name, count]) => ({
        label: name, fraction: completed ? count / completed : 0,
        value: `${count} · ${pct(completed ? count / completed : 0)}`,
        color: colorOf(name),
      })));

  renderSpark((m.throughput && m.throughput.series) || []);

  const workers = m.workers || [];
  const body = document.getElementById("workers");
  if (workers.length) {
    const done = workers.reduce((a, w) => a + w.completed, 0) || 1;
    body.innerHTML = workers.map(w => `<tr>
      <td>${w.worker}</td><td>${w.completed}</td>
      <td>${fmt(w.busy_s, 2)}</td><td>${fmt(w.prefix_s, 2)}</td>
      <td>${pct(w.completed / done)}</td></tr>`).join("");
  }

  const ft = m.fault_tolerance || {};
  const ftRow = document.getElementById("fault-tolerance");
  ftRow.innerHTML = ["worker_crashes", "worker_respawns", "retries",
                     "timeouts", "quarantined"]
    .map(key => `<td>${ft[key] || 0}</td>`).join("");
  const ftTotal = Object.values(ft).reduce((a, b) => a + (b || 0), 0);
  document.getElementById("fault-note").textContent = ftTotal
    ? "supervision intervened — see the event stream"
    : "no supervision events";

  const batching = m.batching || {};
  document.getElementById("batching").innerHTML =
    `<td>${batching.batches || 0}</td><td>${batching.lanes || 0}</td>` +
    `<td>${batching.lane_evictions || 0}</td>` +
    `<td>${batching.batches ? fmt(batching.mean_occupancy) : "–"}</td>`;
  document.getElementById("batch-note").textContent = batching.batches
    ? `${pct(batching.lanes
             ? 1 - (batching.lane_evictions || 0) / batching.lanes : 0)}`
      + " of lanes completed in lockstep"
    : "batched lockstep core inactive";

  const fleet = m.fleet || {};
  document.getElementById("fleet").innerHTML =
    ["hosts_joined", "hosts_lost", "leases_granted", "leases_expired",
     "shards_stolen", "records_merged", "duplicates"]
      .map(key => `<td>${fleet[key] || 0}</td>`).join("");
  const fleetCampaigns = fleet.campaigns || [];
  document.getElementById("fleet-note").textContent = fleet.active
    ? (fleetCampaigns.map(c => `${c.campaign}: ${c.merged}/${c.total}`)
         .join(" · ") || "fleet active — no results merged yet")
    : "fleet coordinator inactive";

  const t = m.timing || {};
  const timed = t.timed_experiments || 0;
  if (timed) {
    const totalWall = t.prefix_wall_s_total + t.post_injection_wall_s_total;
    renderBars(document.getElementById("timing"), [
      { label: "pre-injection (prefix)",
        fraction: totalWall ? t.prefix_wall_s_total / totalWall : 0,
        value: `${fmt(t.prefix_wall_s_total, 2)} s`,
        color: "var(--series-1)" },
      { label: "post-injection",
        fraction: totalWall ? t.post_injection_wall_s_total / totalWall : 0,
        value: `${fmt(t.post_injection_wall_s_total, 2)} s`,
        color: dark ? "#d95926" : "#eb6834" },
    ]);
  }
}

async function poll() {
  try {
    const response = await fetch("metrics.json", { cache: "no-store" });
    render(await response.json());
  } catch (err) { /* server going away is normal at campaign end */ }
}
poll();
setInterval(poll, 1000);

const events = document.getElementById("events");
try {
  const source = new EventSource("events");
  source.onmessage = message => {
    const atBottom =
      events.scrollTop + events.clientHeight >= events.scrollHeight - 4;
    events.textContent += message.data + "\\n";
    const lines = events.textContent.split("\\n");
    if (lines.length > 200) {
      events.textContent = lines.slice(lines.length - 200).join("\\n");
    }
    if (atBottom) events.scrollTop = events.scrollHeight;
  };
} catch (err) { events.textContent = "(event stream unavailable)"; }
</script>
</body>
</html>
"""


def render_dashboard_html(title: str = "repro-fi campaign") -> str:
    """The single-file dashboard page served at ``/``."""
    return (
        _PAGE
        .replace("__OUTCOME_COLORS__", json.dumps(OUTCOME_COLORS))
        .replace("__OUTCOME_ORDER__", json.dumps(list(OUTCOME_ORDER)))
        .replace("__FALLBACK_COLOR__", json.dumps(_FALLBACK_COLOR))
        .replace("__TITLE__", title)
    )


def render_text_dashboard(metrics: dict) -> str:
    """Terminal rendering of one ``/metrics.json`` payload."""
    campaign = metrics.get("campaign") or {}
    snapshot = metrics.get("snapshot") or {}
    ascii_charts = metrics.get("ascii") or {}
    convergence = metrics.get("convergence") or {}
    lines = [
        f"campaign {campaign.get('name', '?')} [{metrics.get('state', '?')}]",
        f"  completed : {snapshot.get('completed', 0)}"
        f"/{snapshot.get('total') or campaign.get('total', '?')}",
        f"  failures  : {snapshot.get('failures', 0)} "
        f"({snapshot.get('failure_rate', 0.0):.1%})",
        f"  throughput: {snapshot.get('throughput_per_s', 0.0):.1f} tests/s",
    ]
    if convergence.get("n"):
        lines.append(
            f"  {convergence['outcome']} share "
            f"{convergence['fraction']:.1%} "
            f"(95% CI width {convergence['ci_width']:.1%} "
            f"after {convergence['n']} tests)"
        )
    outcome_bars = ascii_charts.get("outcome_bars")
    if outcome_bars:
        lines += ["", outcome_bars]
    sparkline = ascii_charts.get("throughput_sparkline")
    if sparkline:
        lines += ["", f"throughput: {sparkline}"]
    fault_tolerance = metrics.get("fault_tolerance") or {}
    if any(fault_tolerance.values()):
        lines += ["", "fault tolerance:"]
        lines.append(
            f"  crashes {fault_tolerance.get('worker_crashes', 0)}  "
            f"respawns {fault_tolerance.get('worker_respawns', 0)}  "
            f"retries {fault_tolerance.get('retries', 0)}  "
            f"timeouts {fault_tolerance.get('timeouts', 0)}  "
            f"quarantined {fault_tolerance.get('quarantined', 0)}"
        )
    batching = metrics.get("batching") or {}
    if batching.get("batches"):
        lanes = batching.get("lanes", 0)
        evictions = batching.get("lane_evictions", 0)
        lockstep = 1 - evictions / lanes if lanes else 0.0
        lines += ["", "batching:"]
        lines.append(
            f"  batches {batching['batches']}  lanes {lanes}  "
            f"evictions {evictions}  "
            f"occupancy {batching.get('mean_occupancy', 0.0):.1f}  "
            f"lockstep {lockstep:.1%}"
        )
    fleet = metrics.get("fleet") or {}
    if fleet.get("active"):
        lines += ["", "fleet:"]
        lines.append(
            f"  hosts {fleet.get('hosts_joined', 0)} joined / "
            f"{fleet.get('hosts_lost', 0)} lost  "
            f"leases {fleet.get('leases_granted', 0)} granted / "
            f"{fleet.get('leases_expired', 0)} expired / "
            f"{fleet.get('shards_stolen', 0)} stolen"
        )
        lines.append(
            f"  records {fleet.get('records_merged', 0)} merged  "
            f"duplicates {fleet.get('duplicates', 0)}"
        )
        for campaign in fleet.get("campaigns") or []:
            lines.append(
                f"  {campaign['campaign']}: "
                f"{campaign['merged']}/{campaign['total']} merged"
            )
    workers = metrics.get("workers") or []
    if workers:
        lines += ["", "workers:"]
        for stats in workers:
            lines.append(
                f"  {stats['worker']:<10} {stats['completed']:>5} done  "
                f"{stats['busy_s']:8.2f} s busy  "
                f"{stats['prefix_s']:8.2f} s prefix"
            )
    return "\n".join(lines)
