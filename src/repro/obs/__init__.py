"""Live campaign observability.

A running campaign used to be a black box until its records hit disk; this
package gives it eyes, in three layers:

* :mod:`repro.obs.telemetry` — a lightweight event bus with per-experiment
  timing, worker utilization, queue depth, checkpoint flushes, and the
  prefix-cache counters, persisted as structured JSONL
  (``events.jsonl``, schema ``repro-telemetry/v1``);
* :mod:`repro.obs.rollup` + :mod:`repro.obs.server` +
  :mod:`repro.obs.dashboard` — ``repro-fi watch`` / ``--watch``: a stdlib
  HTTP server exposing ``/metrics.json``, an ``/events`` SSE tail, and a
  single-file HTML dashboard over the live aggregates;
* :mod:`repro.obs.bench_history` — ``repro-fi bench-history``: the committed
  ``BENCH_*.json`` perf trajectory across git history, so regressions are
  visible between PRs, not just gated in CI.

Everything is import-light (stdlib only) and lazy, mirroring
:mod:`repro.analysis`: importing :mod:`repro.obs` must not pull the HTTP
server or git plumbing into engine workers.
"""

from __future__ import annotations

_EXPORTS = {
    "TELEMETRY_SCHEMA": "repro.obs.telemetry",
    "Telemetry": "repro.obs.telemetry",
    "TelemetryEvent": "repro.obs.telemetry",
    "validate_event_dict": "repro.obs.telemetry",
    "validate_events_file": "repro.obs.telemetry",
    "TelemetryHub": "repro.obs.rollup",
    "WatchServer": "repro.obs.server",
    "render_dashboard_html": "repro.obs.dashboard",
    "render_text_dashboard": "repro.obs.dashboard",
    "BenchHistory": "repro.obs.bench_history",
    "collect_bench_history": "repro.obs.bench_history",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
