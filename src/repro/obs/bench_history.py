"""Perf trajectory across PRs: the committed ``BENCH_*.json`` history.

Every perf PR commits its full-scale benchmark report (``BENCH_hotpath.json``
and friends) at the repo root, and CI gates each new run against a baseline —
but a gate only sees one step. This module reads the *whole* trajectory:
every committed version of every ``BENCH_*.json`` (via ``git log``/``git
show``) plus the current worktree copy, flattens the numeric metrics into
dotted keys, and renders a per-metric table so a slow drift across five PRs
is as visible as a 2x cliff in one.

Benchmark reports written since the ``machine`` block landed carry the host
fingerprint (:func:`benchmarks._common.machine_info`); entries recorded on
different hosts are flagged in the output, because absolute numbers are only
comparable within one machine (the calibrated CI gates already normalise
this out — the trajectory view must at least say so). Old committed reports
without the block are tolerated and show as ``unknown`` hosts.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.figures import ascii_series_table, ascii_sparkline
from repro.errors import ObservabilityError

#: Schema of the ``--format json`` payload.
BENCH_HISTORY_SCHEMA = "repro-bench-history/v1"

#: Top-level keys that never become trajectory metrics: identities,
#: references frozen at write time, and gate configuration.
_NON_METRIC_KEYS = frozenset({
    "schema", "scale", "created_unix", "machine", "gates",
    "pre_pr_reference", "paper_reference",
})


def flatten_metrics(data: dict, *, prefix: str = "",
                    _top: bool = True) -> Dict[str, float]:
    """Numeric leaves of a benchmark report as dotted keys.

    ``{"metrics": {"memory": {"read4_per_s": 2e6}}}`` becomes
    ``{"metrics.memory.read4_per_s": 2000000.0}``. Non-numeric leaves and
    the non-metric top-level keys (schema, machine, gates, frozen
    references) are skipped; booleans are not numbers.
    """
    flat: Dict[str, float] = {}
    for key, value in data.items():
        if _top and key in _NON_METRIC_KEYS:
            continue
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=f"{dotted}.",
                                        _top=False))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[dotted] = float(value)
    return flat


@dataclass
class BenchEntry:
    """One version of one benchmark report."""

    bench: str                       #: file name, e.g. ``BENCH_hotpath.json``
    commit: str                      #: short sha, or ``worktree``
    commit_time: Optional[int]       #: unix time of the commit, if known
    subject: str                     #: first line of the commit message
    scale: Optional[str]             #: the report's ``scale`` field
    machine: Optional[dict]          #: the report's ``machine`` block
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def machine_key(self) -> str:
        """Stable fingerprint used to flag cross-host comparisons."""
        if not self.machine:
            return "unknown"
        return "/".join(str(self.machine.get(key, "?"))
                        for key in ("platform", "machine", "cpu_count",
                                    "python"))


@dataclass
class BenchHistory:
    """The trajectory of every ``BENCH_*.json``, oldest entry first."""

    root: Path
    entries_by_bench: Dict[str, List[BenchEntry]] = field(default_factory=dict)

    @property
    def benches(self) -> List[str]:
        return sorted(self.entries_by_bench)

    def cross_host(self, bench: str) -> bool:
        """Whether this bench's trajectory spans more than one machine.

        Entries without a ``machine`` block (reports committed before the
        block existed) count as one shared ``unknown`` host — absence is
        tolerated, never treated as a distinct machine per entry.
        """
        keys = {entry.machine_key for entry in self.entries_by_bench[bench]}
        return len(keys) > 1

    def to_dict(self) -> dict:
        return {
            "schema": BENCH_HISTORY_SCHEMA,
            "root": str(self.root),
            "benches": {
                bench: {
                    "cross_host": self.cross_host(bench),
                    "entries": [
                        {
                            "commit": entry.commit,
                            "commit_time": entry.commit_time,
                            "subject": entry.subject,
                            "scale": entry.scale,
                            "machine": entry.machine,
                            "metrics": entry.metrics,
                        }
                        for entry in entries
                    ],
                }
                for bench, entries in sorted(self.entries_by_bench.items())
            },
        }


def _git(root: Path, *args: str) -> Optional[str]:
    """Run one git command; ``None`` when git or the repo is unavailable."""
    try:
        completed = subprocess.run(
            ["git", "-C", str(root), *args],
            capture_output=True, text=True, timeout=30, check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


def _parse_report(raw: str, *, context: str) -> Optional[dict]:
    try:
        data = json.loads(raw)
    except json.JSONDecodeError:
        return None                  # a torn historical blob is not an error
    return data if isinstance(data, dict) else None


def _entry_from_report(bench: str, data: dict, *, commit: str,
                       commit_time: Optional[int], subject: str) -> BenchEntry:
    return BenchEntry(
        bench=bench,
        commit=commit,
        commit_time=commit_time,
        subject=subject,
        scale=data.get("scale"),
        machine=data.get("machine"),
        metrics=flatten_metrics(data),
    )


def collect_bench_history(root: "str | Path" = ".", *,
                          pattern: str = "BENCH_*.json",
                          include_git: bool = True) -> BenchHistory:
    """Gather every version of every benchmark report under ``root``.

    Worktree copies are always read; with ``include_git`` each file's
    committed history is added via ``git log``/``git show`` (oldest first).
    The worktree copy is appended only when it differs from the newest
    committed version, so a clean checkout shows one entry per commit.
    Outside a git repository (or with git missing) the worktree copies
    alone are returned rather than failing — the trajectory degrades to a
    single point, it does not disappear.
    """
    root = Path(root)
    if not root.exists():
        raise ObservabilityError(f"bench-history root does not exist: {root}")
    names = {path.name for path in root.glob(pattern) if path.is_file()}
    if include_git:
        listed = _git(root, "log", "--format=", "--name-only",
                      "--", pattern)
        if listed:
            for line in listed.splitlines():
                line = line.strip()
                # Only repo-root reports participate; committed files under
                # subdirectories (e.g. baselines) are different artifacts.
                if line and "/" not in line:
                    names.add(line)
    history = BenchHistory(root=root)
    for bench in sorted(names):
        entries: List[BenchEntry] = []
        if include_git:
            log = _git(root, "log", "--follow", "--format=%h %ct %s",
                       "--", bench)
            for line in reversed((log or "").splitlines()):
                parts = line.strip().split(" ", 2)
                if len(parts) < 2:
                    continue
                sha, commit_time = parts[0], int(parts[1])
                subject = parts[2] if len(parts) > 2 else ""
                raw = _git(root, "show", f"{sha}:{bench}")
                if raw is None:
                    continue        # commit deleted the file; not a version
                data = _parse_report(raw, context=f"{sha}:{bench}")
                if data is None:
                    continue
                entries.append(_entry_from_report(
                    bench, data, commit=sha, commit_time=commit_time,
                    subject=subject))
        worktree_path = root / bench
        if worktree_path.exists():
            data = _parse_report(
                worktree_path.read_text(encoding="utf-8"),
                context=str(worktree_path))
            if data is None:
                raise ObservabilityError(
                    f"unreadable benchmark report: {worktree_path}")
            entry = _entry_from_report(bench, data, commit="worktree",
                                       commit_time=None,
                                       subject="(uncommitted)")
            if not entries or entries[-1].metrics != entry.metrics:
                entries.append(entry)
        if entries:
            history.entries_by_bench[bench] = entries
    if not history.entries_by_bench:
        raise ObservabilityError(
            f"no benchmark reports matching {pattern!r} under {root} "
            f"(worktree or git history)")
    return history


def _metric_rows(entries: Sequence[BenchEntry],
                 metric_filter: Optional[str]) -> List[str]:
    metrics: List[str] = []
    for entry in entries:
        for name in entry.metrics:
            if name not in metrics:
                metrics.append(name)
    if metric_filter:
        metrics = [name for name in metrics if metric_filter in name]
    return metrics


def format_history_text(history: BenchHistory, *,
                        metric_filter: Optional[str] = None) -> str:
    """Per-bench tables: one row per metric, one column per commit."""
    blocks: List[str] = []
    for bench in history.benches:
        entries = history.entries_by_bench[bench]
        metrics = _metric_rows(entries, metric_filter)
        if not metrics:
            continue
        title = f"{bench} ({len(entries)} version(s))"
        if history.cross_host(bench):
            title += "  [!] entries span multiple machines"
        rows = []
        for name in metrics:
            values = [entry.metrics.get(name) for entry in entries]
            present = [value for value in values if value is not None]
            cells = [f"{value:,.4g}" if value is not None else "-"
                     for value in values]
            spark = (ascii_sparkline(present, width=16)
                     if len(present) > 1 else "")
            rows.append((name, *cells, spark))
        headers = ["metric"] + [entry.commit for entry in entries] + ["trend"]
        blocks.append("\n".join([
            title, "=" * len(title),
            ascii_series_table(rows, headers),
        ]))
    if not blocks:
        raise ObservabilityError(
            f"no metrics match filter {metric_filter!r}")
    return "\n\n".join(blocks)


def format_history_markdown(history: BenchHistory, *,
                            metric_filter: Optional[str] = None) -> str:
    lines: List[str] = ["# Benchmark trajectory", ""]
    emitted = False
    for bench in history.benches:
        entries = history.entries_by_bench[bench]
        metrics = _metric_rows(entries, metric_filter)
        if not metrics:
            continue
        emitted = True
        lines.append(f"## {bench}")
        if history.cross_host(bench):
            lines.append(
                "> **Note:** entries span multiple machines — absolute "
                "numbers are not directly comparable.")
        lines.append("")
        header = ["metric"] + [entry.commit for entry in entries]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for name in metrics:
            cells = [
                f"{entry.metrics[name]:,.4g}" if name in entry.metrics
                else "–"
                for entry in entries
            ]
            lines.append("| `" + name + "` | " + " | ".join(cells) + " |")
        lines.append("")
    if not emitted:
        raise ObservabilityError(
            f"no metrics match filter {metric_filter!r}")
    return "\n".join(lines).rstrip() + "\n"
